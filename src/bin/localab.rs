//! `localab` — run any algorithm of the laboratory on any generated
//! workload, count LOCAL rounds, and validate the output.
//!
//! ```text
//! localab <algorithm> <family> <n> [--delta D] [--seed S]
//!
//! algorithms: linial | delta1 | cv | rand-greedy | be-tree | theorem10
//!             | theorem11 | luby | det-mis | ghaffari | ii-matching
//!             | det-matching | ec-matching | edge-color | sinkless
//! families:   path | cycle | star | tree | complete-tree | regular
//!             | gnp | caterpillar
//! ```
//!
//! Examples:
//!
//! ```text
//! localab theorem10 complete-tree 100000 --delta 16
//! localab luby regular 4096 --delta 4 --seed 7
//! localab cv cycle 1000000
//! ```

use exp_separation::algorithms::color::{
    be_forest_coloring, cole_vishkin::cv_color_cycle, edge_color_distributed, linial_color,
    linial_then_reduce, rand_greedy_color,
};
use exp_separation::algorithms::matching::{
    det_matching, israeli_itai_matching, matching_by_edge_color,
};
use exp_separation::algorithms::mis::ghaffari::GhaffariConfig;
use exp_separation::algorithms::mis::{det_mis, ghaffari_mis, luby_mis};
use exp_separation::algorithms::orientation::sinkless_orientation;
use exp_separation::algorithms::tree::{theorem10_color, theorem11_color, Theorem10Config};
use exp_separation::graphs::{gen, Graph};
use exp_separation::lcl::problems::{
    EdgeKColoring, MaximalMatching, Mis, SinklessOrientation, VertexColoring,
};
use exp_separation::lcl::{Labeling, LclProblem};
use exp_separation::model::IdAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Args {
    algorithm: String,
    family: String,
    n: usize,
    delta: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 3 {
        return Err("usage: localab <algorithm> <family> <n> [--delta D] [--seed S]".into());
    }
    let mut args = Args {
        algorithm: argv[0].clone(),
        family: argv[1].clone(),
        n: argv[2]
            .parse()
            .map_err(|_| format!("n must be a number, got '{}'", argv[2]))?,
        delta: 16,
        seed: 1,
    };
    let mut i = 3;
    while i < argv.len() {
        match argv[i].as_str() {
            "--delta" => {
                args.delta = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--delta needs a number")?;
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
                i += 2;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn build_graph(args: &Args) -> Result<Graph, String> {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xFEED);
    Ok(match args.family.as_str() {
        "path" => gen::path(args.n),
        "cycle" => gen::cycle(args.n),
        "star" => gen::star(args.n),
        "tree" => gen::random_tree_max_degree(args.n, args.delta, &mut rng),
        "complete-tree" => gen::complete_dary_tree(args.n, args.delta),
        "regular" => {
            gen::random_regular(args.n, args.delta, &mut rng).map_err(|e| e.to_string())?
        }
        "gnp" => gen::gnp(args.n, args.delta as f64 / args.n as f64, &mut rng),
        "caterpillar" => gen::caterpillar(args.n, args.delta.saturating_sub(2)),
        other => return Err(format!("unknown family '{other}'")),
    })
}

fn validate<P>(problem: &P, g: &Graph, labels: &Labeling<P::Label>) -> &'static str
where
    P: LclProblem + Sync,
    P::Label: Clone + Send + Sync,
{
    match problem.validate(g, labels) {
        Ok(()) => "valid",
        Err(_) => "INVALID",
    }
}

fn run(args: &Args) -> Result<(), String> {
    let g = build_graph(args)?;
    println!("workload: {} ({})", g, args.family);
    let (rounds, verdict): (u32, String) = match args.algorithm.as_str() {
        "linial" => {
            let out = linial_color(&g, &IdAssignment::Shuffled { seed: args.seed });
            let v = validate(&VertexColoring::new(out.palette), &g, &out.labels);
            (out.rounds, format!("{} colors, {v}", out.palette))
        }
        "delta1" => {
            let out = linial_then_reduce(&g, g.max_degree() + 1, args.seed);
            let v = validate(&VertexColoring::new(out.palette), &g, &out.labels);
            (out.rounds, format!("{} colors, {v}", out.palette))
        }
        "cv" => {
            let out = cv_color_cycle(&g, &IdAssignment::Shuffled { seed: args.seed });
            let v = validate(&VertexColoring::new(3), &g, &out.labels);
            (out.rounds, format!("3 colors, {v}"))
        }
        "rand-greedy" => {
            let out = rand_greedy_color(&g, g.max_degree() + 1, args.seed, 100_000)
                .map_err(|e| e.to_string())?;
            let v = validate(&VertexColoring::new(out.palette), &g, &out.labels);
            (out.rounds, format!("{} colors, {v}", out.palette))
        }
        "be-tree" => {
            let ids: Vec<u64> = (0..g.n() as u64).collect();
            let out = be_forest_coloring(&g, args.delta.max(3), &ids, None, 0);
            let v = validate(&VertexColoring::new(out.palette), &g, &out.labels);
            (out.rounds, format!("{} colors, {v}", out.palette))
        }
        "theorem10" => {
            let out = theorem10_color(&g, args.delta, args.seed, Theorem10Config::default())
                .map_err(|e| e.to_string())?;
            let v = validate(&VertexColoring::new(args.delta), &g, &out.coloring.labels);
            (
                out.coloring.rounds,
                format!(
                    "{} colors, {v} (bad: {}, largest comp {})",
                    args.delta, out.stats.bad_vertices, out.stats.largest_bad_component
                ),
            )
        }
        "theorem11" => {
            let out = theorem11_color(&g, args.delta, args.seed).map_err(|e| e.to_string())?;
            let v = validate(&VertexColoring::new(args.delta), &g, &out.coloring.labels);
            (out.coloring.rounds, format!("{} colors, {v}", args.delta))
        }
        "luby" => {
            let out = luby_mis(&g, args.seed, 100_000).map_err(|e| e.to_string())?;
            let v = validate(&Mis::new(), &g, &out.in_set.clone().into());
            (out.rounds, format!("MIS, {v}"))
        }
        "det-mis" => {
            let out = det_mis(&g, &IdAssignment::Shuffled { seed: args.seed });
            let v = validate(&Mis::new(), &g, &out.in_set.clone().into());
            (out.rounds, format!("MIS, {v}"))
        }
        "ghaffari" => {
            let out = ghaffari_mis(&g, args.seed, GhaffariConfig::default())
                .map_err(|e| e.to_string())?;
            let v = validate(&Mis::new(), &g, &out.in_set.clone().into());
            (out.rounds, format!("MIS, {v}"))
        }
        "ii-matching" => {
            let out = israeli_itai_matching(&g, args.seed, 100_000).map_err(|e| e.to_string())?;
            let labels = MaximalMatching::labels_from_edges(&g, &out.matched_edges);
            let v = validate(&MaximalMatching::new(), &g, &labels);
            (out.rounds, format!("matching, {v}"))
        }
        "det-matching" => {
            let out = det_matching(&g, &IdAssignment::Shuffled { seed: args.seed });
            let labels = MaximalMatching::labels_from_edges(&g, &out.matched_edges);
            let v = validate(&MaximalMatching::new(), &g, &labels);
            (out.rounds, format!("matching, {v}"))
        }
        "ec-matching" => {
            let out = matching_by_edge_color(&g, args.seed);
            let labels = MaximalMatching::labels_from_edges(&g, &out.matched_edges);
            let v = validate(&MaximalMatching::new(), &g, &labels);
            (out.rounds, format!("matching, {v}"))
        }
        "edge-color" => {
            let out = edge_color_distributed(&g, args.seed);
            let labels = EdgeKColoring::labels_from_edge_colors(&g, &out.colors);
            let v = validate(&EdgeKColoring::new(out.palette), &g, &labels);
            (out.rounds, format!("{} edge colors, {v}", out.palette))
        }
        "sinkless" => {
            let out = sinkless_orientation(&g, args.seed, 40).map_err(|e| e.to_string())?;
            let verdict = if out.sinks == 0 {
                validate(&SinklessOrientation::new(g.max_degree()), &g, &out.labels).to_owned()
            } else {
                format!("{} sinks remain", out.sinks)
            };
            (out.rounds, format!("orientation, {verdict}"))
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    println!("rounds:   {rounds}");
    println!("result:   {verdict}");
    Ok(())
}

fn main() -> ExitCode {
    // Library preconditions (Δ floors, family shapes, n ≥ 1) surface as
    // panics; turn them into CLI errors instead of backtraces.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = parse_args().and_then(|args| {
        std::panic::catch_unwind(|| run(&args)).unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "algorithm precondition violated".to_owned());
            Err(msg)
        })
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage: localab <algorithm> <family> <n> [--delta D] [--seed S]");
            eprintln!("  algorithms: linial delta1 cv rand-greedy be-tree theorem10 theorem11");
            eprintln!("              luby det-mis ghaffari ii-matching det-matching ec-matching");
            eprintln!("              edge-color sinkless");
            eprintln!("  families:   path cycle star tree complete-tree regular gnp caterpillar");
            ExitCode::FAILURE
        }
    }
}
