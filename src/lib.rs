//! # exp-separation
//!
//! A laboratory for Linial's LOCAL model reproducing the results of
//! Chang, Kopelowitz & Pettie, *An Exponential Separation Between Randomized
//! and Deterministic Complexity in the LOCAL Model* (PODC/FOCS 2016).
//!
//! This facade crate re-exports the workspace crates so downstream users can
//! depend on one package:
//!
//! * [`graphs`] — graph representation, generators, girth, edge coloring.
//! * [`model`] — the synchronous DetLOCAL / RandLOCAL round engine.
//! * [`lcl`] — locally checkable labeling problems and verifiers.
//! * [`algorithms`] — the distributed algorithms the paper states or uses.
//! * [`separation`] — the paper's contribution: derandomization (Theorem 3),
//!   speedup transforms (Theorems 6/8), graph shattering, lower-bound
//!   experiments, and complexity measurement.
//!
//! # Quickstart
//!
//! ```
//! use exp_separation::graphs::gen;
//! use exp_separation::lcl::problems::VertexColoring;
//! use exp_separation::lcl::LclProblem;
//! use exp_separation::algorithms::color;
//!
//! // Δ-color a random tree with the paper's randomized algorithm and verify
//! // the result with the LCL checker.
//! let mut rng = rand::thread_rng();
//! let tree = gen::random_tree_max_degree(200, 8, &mut rng);
//! let outcome = color::linial_then_reduce(&tree, 9, 0xC0FFEE);
//! let problem = VertexColoring::new(9);
//! assert!(problem.validate(&tree, &outcome.labels).is_ok());
//! ```

#![forbid(unsafe_code)]

pub use local_algorithms as algorithms;
pub use local_graphs as graphs;
pub use local_lcl as lcl;
pub use local_model as model;
pub use local_separation as separation;
