//! Theorem 3, live: `Det_P(n, Δ) ≤ Rand_P(2^(n²), Δ)`.
//!
//! Enumerates every graph on 4 vertices with Δ ≤ 3 under every injective
//! 3-bit ID assignment, then executes the paper's proof: sample the
//! ID-to-randomness table φ as the union bound prescribes and exhaustively
//! verify that the hard-wired deterministic MIS algorithm errs on *no*
//! instance.
//!
//! Run with `cargo run --example derandomization`.

use exp_separation::separation::derand::derandomize_priority_mis;

fn main() {
    let (n, delta, id_bits) = (4, 3, 3);
    println!("derandomizing priority MIS over the full instance space 𝒢({n}, {delta})");
    println!(
        "(IDs from a {id_bits}-bit space; claimed size N = 2^(n²) = 2^{})",
        n * n
    );
    println!();
    let report = derandomize_priority_mis(n, delta, id_bits, 0xC0FFEE, 64)
        .expect("union bound guarantees a good φ at this scale");
    println!("instances exhaustively verified : {}", report.instances);
    println!("claimed N                       : {}", report.claimed_n);
    println!("φ samples until success         : {}", report.phis_tried);
    println!();
    println!("the good φ (id → hard-wired priority):");
    for (id, p) in report.phi.iter().enumerate() {
        println!("  φ({id}) = {p}");
    }
    println!();
    println!("Take-away: the randomized algorithm run at size N = 2^(n²) encodes");
    println!("a deterministic algorithm for size n — graph shattering must reduce");
    println!("to deterministic complexity on small instances (Theorem 3).");
}
