//! The headline result in one screen: sweep `n` and watch deterministic
//! tree Δ-coloring grow like `log_Δ n` while the randomized algorithm stays
//! nearly flat — the exponential separation of the paper's title.
//!
//! Run with `cargo run --release --example separation_sweep`.

use exp_separation::algorithms::color::be_forest_coloring;
use exp_separation::algorithms::tree::{theorem10_color, Theorem10Config};
use exp_separation::graphs::gen;
use exp_separation::lcl::problems::VertexColoring;
use exp_separation::lcl::LclProblem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let delta = 16;
    println!("tree Δ-coloring, Δ = {delta}:");
    println!(
        "{:>8} | {:>16} | {:>16} | {:>7}",
        "n", "Det (Thm 9)", "Rand (Thm 10)", "ratio"
    );
    println!("{}", "-".repeat(58));
    for exp in [8u32, 10, 12, 14, 16] {
        let n = 1usize << exp;
        let mut rng = StdRng::seed_from_u64(u64::from(exp));
        let tree = gen::random_tree_max_degree(n, delta, &mut rng);
        let ids: Vec<u64> = (0..n as u64).collect();

        let det = be_forest_coloring(&tree, delta, &ids, None, 0);
        let rand = theorem10_color(&tree, delta, 3, Theorem10Config::default())
            .expect("simulation completes");
        for labels in [&det.labels, &rand.coloring.labels] {
            VertexColoring::new(delta)
                .validate(&tree, labels)
                .expect("both outputs are proper Δ-colorings");
        }
        println!(
            "{:>8} | {:>16} | {:>16} | {:>7.2}",
            n,
            det.rounds,
            rand.coloring.rounds,
            f64::from(det.rounds) / f64::from(rand.coloring.rounds),
        );
    }
    println!();
    println!("Det grows with log n; Rand is governed by log log n — and by");
    println!("Theorems 3 and 5 this gap is necessary, not an artifact.");
}
