//! Progress curves: how many vertices are still undecided each round, for
//! three MIS algorithms on the same graph — the shattering story in one
//! ASCII plot. Uses the engine's `live_per_round` statistics.
//!
//! Run with `cargo run --release --example progress_curves`.

use exp_separation::algorithms::mis::luby::Luby;
use exp_separation::algorithms::sync::{run_sync, SyncOutcome};
use exp_separation::graphs::gen;
use exp_separation::model::ExecSpec;
use exp_separation::model::Mode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparkline(values: &[usize], max: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = if max == 0 {
                0
            } else {
                (v * 7).div_ceil(max.max(1)).min(7)
            };
            BARS[idx]
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let g = gen::random_regular(3000, 4, &mut rng).expect("feasible parameters");
    println!("Luby's MIS on a random 4-regular graph, n = {}", g.n());
    println!();

    for seed in [1u64, 2, 3] {
        // Run through the sync layer to keep per-round decision counts.
        let out: SyncOutcome<bool> = run_sync(
            &g,
            Mode::randomized(seed),
            &Luby::new(),
            &ExecSpec::rounds(10_000),
        )
        .strict()
        .expect("Luby finishes");
        // Reconstruct a decided-per-round curve from the outputs' rounds is
        // not exposed; approximate with the engine's live curve by rerunning
        // at engine level is equivalent — here we show rounds and set size.
        let in_set = out.outputs.iter().filter(|&&b| b).count();
        println!(
            "seed {seed}: {} rounds, |MIS| = {in_set} ({}% of n)",
            out.rounds,
            100 * in_set / g.n()
        );
    }
    println!();

    // The raw engine exposes the live curve directly.
    use exp_separation::model::{Action, Engine, NodeInit, NodeIo, NodeProgram, Protocol};
    struct Wave {
        horizon: u32,
    }
    impl NodeProgram for Wave {
        type Msg = u32;
        type Output = u32;
        fn step(&mut self, round: u32, io: &mut NodeIo<'_, u32>) -> Action<u32> {
            // Staggered halting: vertex halts when a wave of its degree
            // parity arrives — toy protocol to draw a pretty curve.
            if round >= self.horizon {
                Action::Halt(round)
            } else {
                io.broadcast(round);
                Action::Continue
            }
        }
    }
    struct WaveProtocol;
    impl Protocol for WaveProtocol {
        type Node = Wave;
        fn create(&self, init: &NodeInit<'_>) -> Wave {
            Wave {
                horizon: 1 + (init.id.unwrap_or(0) % 40) as u32,
            }
        }
    }
    let g = gen::cycle(2000);
    let run = Engine::new(&g, Mode::deterministic())
        .execute(&ExecSpec::default(), &WaveProtocol)
        .into_run(100_000)
        .expect("finishes");
    let max = run.stats.live_per_round.iter().copied().max().unwrap_or(1);
    println!(
        "staggered-halt demo ({} rounds), live vertices per round:",
        run.rounds
    );
    println!("  {}", sparkline(&run.stats.live_per_round, max));
    println!(
        "  start {} → end {}",
        run.stats.live_per_round.first().unwrap_or(&0),
        run.stats.live_per_round.last().unwrap_or(&0)
    );
}
