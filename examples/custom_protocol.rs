//! Writing your own LOCAL protocol against the engine: a two-phase
//! "leader ring segmentation" toy — each vertex of a cycle finds the nearest
//! local-maximum ID within its radius-3 ball and reports its distance to it.
//!
//! Demonstrates the raw [`NodeProgram`] API (per-port messages, typed state,
//! halting) as opposed to the higher-level `SyncAlgorithm` layer most
//! built-in algorithms use.
//!
//! Run with `cargo run --example custom_protocol`.

use exp_separation::graphs::gen;
use exp_separation::model::{
    Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol,
};

/// Each round, forward the largest (id, hops) pair heard so far.
struct NearestPeak {
    best: (u64, u32), // (id, hops to it)
    horizon: u32,
}

impl NodeProgram for NearestPeak {
    type Msg = (u64, u32);
    type Output = u32;

    fn step(&mut self, round: u32, io: &mut NodeIo<'_, (u64, u32)>) -> Action<u32> {
        if round > 0 {
            for (_, &(id, hops)) in io.received() {
                let candidate = (id, hops + 1);
                // Prefer larger ids, then fewer hops.
                if candidate.0 > self.best.0
                    || (candidate.0 == self.best.0 && candidate.1 < self.best.1)
                {
                    self.best = candidate;
                }
            }
        }
        if round >= self.horizon {
            return Action::Halt(self.best.1);
        }
        io.broadcast(self.best);
        Action::Continue
    }
}

struct NearestPeakProtocol {
    horizon: u32,
}

impl Protocol for NearestPeakProtocol {
    type Node = NearestPeak;
    fn create(&self, init: &NodeInit<'_>) -> NearestPeak {
        let id = init.id.expect("DetLOCAL run provides IDs");
        NearestPeak {
            best: (id, 0),
            horizon: self.horizon,
        }
    }
}

fn main() {
    let g = gen::cycle(24);
    let run = Engine::new(&g, Mode::deterministic())
        .execute(&ExecSpec::default(), &NearestPeakProtocol { horizon: 3 })
        .into_run(100_000)
        .expect("fixed-horizon protocol always halts");

    println!("cycle of 24, radius-3 nearest-peak distances:");
    for (v, hops) in run.outputs.iter().enumerate() {
        print!("{hops} ");
        let _ = v;
    }
    println!();
    println!(
        "rounds: {} (exactly the horizon), messages: {}",
        run.rounds, run.stats.messages_sent
    );
    // Every vertex within distance 3 of the global maximum (id 23) sees it.
    assert_eq!(run.outputs[23], 0);
    assert_eq!(run.outputs[22], 1);
    assert_eq!(run.outputs[20], 3);
}
