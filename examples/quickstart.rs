//! Quickstart: Δ-color a tree with the paper's randomized algorithm and
//! verify the result, both centrally and with the distributed verifier.
//!
//! Run with `cargo run --example quickstart`.

use exp_separation::algorithms::tree::{theorem10_color, Theorem10Config};
use exp_separation::graphs::gen;
use exp_separation::lcl::problems::VertexColoring;
use exp_separation::lcl::{verifier, LclProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A random tree with maximum degree Δ = 16 on 4096 vertices.
    let delta = 16;
    let mut rng = StdRng::seed_from_u64(42);
    let tree = gen::random_tree_max_degree(4096, delta, &mut rng);
    println!("workload: {tree} (a tree, Δ ≤ {delta})");

    // The paper's Theorem-10 algorithm: RandLOCAL, O(log_Δ log n + log* n).
    let out =
        theorem10_color(&tree, delta, 7, Theorem10Config::default()).expect("simulation completes");
    println!(
        "Theorem 10: Δ-colored in {} rounds ({} in the bidding phase, {} finishing {} bad vertices in components of size ≤ {})",
        out.coloring.rounds,
        out.phase1_rounds,
        out.phase2_rounds,
        out.stats.bad_vertices,
        out.stats.largest_bad_component,
    );

    // Verify: once centrally, once inside the LOCAL engine (1 exchange).
    let problem = VertexColoring::new(delta);
    problem
        .validate(&tree, &out.coloring.labels)
        .expect("proper Δ-coloring");
    verifier::check_distributed(&problem, &tree, &out.coloring.labels)
        .expect("the distributed verifier agrees");
    println!("verified: proper {delta}-coloring (centralized + distributed checkers agree)");
}
