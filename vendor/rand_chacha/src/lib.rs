//! Offline vendored `ChaCha8Rng`: a real ChaCha8 keystream over the
//! workspace's [`rand`] subset.
//!
//! Implements the ChaCha quarter-round construction with 8 double-rounds,
//! keyed by a 256-bit seed. Deterministic and platform-independent; stream
//! positions are advanced one 64-byte block at a time. Not guaranteed
//! bit-compatible with upstream `rand_chacha` (nothing in this workspace
//! relies on that — only on seeded reproducibility).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_span_blocks() {
        // Drawing more than one 64-byte block must keep producing fresh
        // values (the counter advances).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 60, "keystream should not repeat");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
