//! Sequence helpers mirroring `rand::seq`.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = SampleRange::sample_from(0..=i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = SampleRange::sample_from(0..self.len(), rng);
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [1u8, 2, 3];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
    }
}
