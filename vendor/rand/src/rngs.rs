//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++ over a 256-bit state.
///
/// Deterministic given its seed; not upstream-bit-compatible (see crate
/// docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
