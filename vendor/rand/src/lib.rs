//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`]. All
//! generators are deterministic given their seed (there is no OS entropy
//! source), which is exactly what a reproducible simulator wants. Streams
//! are **not** bit-compatible with upstream `rand`; every consumer in this
//! workspace only relies on seeded reproducibility, never on specific
//! values.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly at random ("the standard
/// distribution" in upstream terms).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply bounded sampling (Lemire); the tiny
                // residual bias is irrelevant at simulator scales.
                let wide = u128::from(rng.next_u64());
                self.start + ((wide.wrapping_mul(span)) >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample_standard(rng);
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}
impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = (0..span).sample_from(rng);
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}
macro_rules! impl_int_range_inclusive {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                if span == <$u>::MAX {
                    return <$u>::sample_standard(rng) as $t;
                }
                let off = (0..=span).sample_from(rng);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_int_range!(i32 => u32, i64 => u64, isize => usize);
impl_int_range_inclusive!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`] mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A convenience generator mirroring `rand::thread_rng()`.
///
/// There is no OS entropy source in this offline environment, so streams
/// are seeded from a process-global counter: distinct calls get distinct,
/// process-deterministic streams.
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_CAFE);
    SeedableRng::seed_from_u64(COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 like upstream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
