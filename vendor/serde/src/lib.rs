//! Offline vendored subset of `serde`.
//!
//! No crates.io access is available, so the workspace vendors a small
//! value-tree serialization framework under serde's names: [`Serialize`]
//! converts to a [`Value`], [`Deserialize`] reads back out of one, and the
//! re-exported derive macros cover the struct/enum shapes the workspace
//! uses. `serde_json` (also vendored) renders [`Value`] as JSON text.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters and sizes).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up `name` in an object.
    ///
    /// # Errors
    ///
    /// [`DeError`] if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Look up element `i` in an array.
    ///
    /// # Errors
    ///
    /// [`DeError`] if `self` is not an array or is too short.
    pub fn index(&self, i: usize) -> Result<&Value, DeError> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| DeError(format!("missing array element {i}"))),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }

    /// View as a string.
    ///
    /// # Errors
    ///
    /// [`DeError`] if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }

    /// Optional object lookup: `None` for a missing field (or non-object).
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for an enum string not matching any variant.
    pub fn unknown_variant(name: &str) -> Self {
        DeError(format!("unknown enum variant `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range"))),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    other => Err(DeError(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::try_from(*self).expect("signed fits i64");
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range"))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range"))),
                    other => Err(DeError(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers cap at u64 here; larger values go through strings.
        match u64::try_from(*self) {
            Ok(x) => Value::U64(x),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(DeError(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($t::from_value(v.index($i)?)?,)+))
            }
        }
    )*};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
        let pair = (3usize, 4usize);
        assert_eq!(
            <(usize, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::U64(1));
        assert!(v.field("b").unwrap_err().0.contains("missing field `b`"));
        assert!(Value::Null.field("a").is_err());
    }
}
