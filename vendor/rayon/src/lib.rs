//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of rayon it uses: `par_iter` / `par_iter_mut` / `into_par_iter`
//! with `enumerate`, `map`, `for_each`, and `collect`. Work is executed on
//! real OS threads via [`std::thread::scope`], statically chunked across
//! [`std::thread::available_parallelism`] workers. Every combinator
//! preserves item order and touches each item exactly once, so parallel
//! results are bit-identical to sequential ones for pure per-item work —
//! the determinism contract the round engine relies on.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn chunk_size(len: usize) -> usize {
    let threads = current_num_threads();
    len.div_ceil(threads).max(1)
}

/// Run `f(index, &mut item)` for every item, in parallel chunks.
fn for_each_mut_indexed<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if items.is_empty() {
        return;
    }
    let chunk = chunk_size(items.len());
    std::thread::scope(|scope| {
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in chunk_items.iter_mut().enumerate() {
                    f(ci * chunk + off, item);
                }
            });
        }
    });
}

/// Map `f(index, &item)` over every item, in parallel chunks, preserving
/// order.
fn map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = chunk_size(items.len());
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for ((ci, chunk_items), chunk_out) in
            items.chunks(chunk).enumerate().zip(out.chunks_mut(chunk))
        {
            let f = &f;
            scope.spawn(move || {
                for ((off, item), slot) in chunk_items.iter().enumerate().zip(chunk_out) {
                    *slot = Some(f(ci * chunk + off, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk slot filled"))
        .collect()
}

/// Map `f(index, item)` over owned items, in parallel chunks, preserving
/// order.
fn map_owned_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = chunk_size(items.len());
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items.into_iter();
    loop {
        let part: Vec<T> = items.by_ref().take(chunk).collect();
        if part.is_empty() {
            break;
        }
        chunks.push(part);
    }
    let mut out: Vec<Option<Vec<R>>> = Vec::new();
    out.resize_with(chunks.len(), || None);
    std::thread::scope(|scope| {
        for ((ci, part), slot) in chunks.into_iter().enumerate().zip(out.iter_mut()) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(
                    part.into_iter()
                        .enumerate()
                        .map(|(off, item)| f(ci * chunk + off, item))
                        .collect(),
                );
            });
        }
    });
    out.into_iter()
        .flat_map(|slot| slot.expect("every chunk produced"))
        .collect()
}

/// `.par_iter()` on slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Sync + 'a;
    /// A parallel iterator borrowing `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.par_iter_mut()` on slices (and anything derefing to one).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// A parallel iterator mutably borrowing `self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The owning parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map preserving order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync,
    {
        let _ = map_indexed(self.items, |_, item| f(item));
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Gather results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        let items: &'a [T] = self.items;
        map_indexed(items, |i, _| f(&items[i]))
            .into_iter()
            .collect()
    }
}

/// Mutably borrowing parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { items: self.items }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        for_each_mut_indexed(self.items, |_, item| f(item));
    }
}

/// Result of [`ParIterMut::enumerate`].
pub struct ParEnumerateMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    /// Run `f((index, &mut item))` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        for_each_mut_indexed(self.items, |i, item| f((i, item)));
    }
}

/// Owning parallel iterator.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Parallel map preserving order.
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = map_owned_indexed(self.items, |_, item| f(item));
    }
}

/// Result of [`IntoParIter::map`].
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> IntoParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Gather results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        map_owned_indexed(self.items, |_, item| f(item))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_enumerate_for_each_visits_all_once() {
        let mut xs = vec![0u64; 10_000];
        xs.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x += i as u64 + 1);
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..5000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..5000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owned_map() {
        let xs: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
        assert_eq!(lens.len(), 100);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        empty.par_iter_mut().enumerate().for_each(|(_, _)| {});
        let mapped: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(mapped.is_empty());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
    }
}
