//! Offline vendored subset of the `proptest` API.
//!
//! Provides the [`proptest!`] macro, [`Strategy`] (ranges, tuples,
//! `prop_map`, [`collection::vec`]), and the `prop_assert*` macros over the
//! workspace's vendored `rand`. Cases are generated from a seed derived
//! deterministically from the test name, so failures reproduce across runs.
//! There is no shrinking: a failing case panics with the panic message of
//! the underlying assertion (plus the case index from [`proptest!`]).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

pub use rand::SeedableRng as __SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run-level configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// A strategy always yielding a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy choosing uniformly among same-valued alternatives; the
/// result of [`prop_oneof!`]. The real proptest supports per-arm weights;
/// this subset picks each arm with equal probability.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; used by [`prop_oneof!`].
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.options.len());
        self.options[arm].generate(rng)
    }
}

/// Choose uniformly among the listed strategies (`proptest::prop_oneof!`,
/// minus per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, Union,
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    __base.wrapping_add(u64::from(__case)),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                    panic!(
                        "property `{}` failed at case {} (base seed {:#x})",
                        stringify!($name), __case, __base
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose(v in (1u32..4, 0u64..9).prop_map(|(a, b)| u64::from(a) + b)) {
            prop_assert!((1..13).contains(&v));
        }

        #[test]
        fn vec_strategy_has_exact_len(xs in crate::collection::vec(0usize..4, 7)) {
            prop_assert_eq!(xs.len(), 7);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn oneof_draws_from_every_arm(x in prop_oneof![0u32..10, 100u32..110, Just(7u32)]) {
            prop_assert!((0u32..10).contains(&x) || (100u32..110).contains(&x));
        }
    }

    #[test]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u32..2) {
                prop_assert!(false, "intentional");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("failed at case"), "got: {msg}");
    }
}
