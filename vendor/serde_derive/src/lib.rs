//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! exactly the shapes this workspace derives on:
//!
//! * structs with named fields (possibly generic over plain type params),
//! * tuple structs (newtypes serialize as their inner value, larger tuples
//!   as arrays),
//! * enums whose variants are all unit variants (serialized as their name).
//!
//! Anything else fails the build with a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, name: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == name)
}

/// Advance past attributes (`#[...]`) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() && is_punct(&tokens[i], '#') {
        i += 2; // '#' + bracket group
    }
    i
}

/// Advance past a visibility qualifier starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1; // pub(crate) etc.
                }
            }
        }
    }
    i
}

fn parse_input(item: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let is_enum = match tokens.get(i) {
        Some(tt) if is_ident(tt, "struct") => false,
        Some(tt) if is_ident(tt, "enum") => true,
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    // Generic parameters: collect the first ident of each comma-separated
    // segment between the outermost < >.
    let mut generics = Vec::new();
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        i += 1;
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            let tt = tokens
                .get(i)
                .ok_or_else(|| "unbalanced generics".to_string())?;
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth -= 1;
            } else if depth == 1 && is_punct(tt, ',') {
                at_param_start = true;
            } else if depth == 1 && at_param_start {
                if let TokenTree::Ident(id) = tt {
                    let s = id.to_string();
                    if s == "const" {
                        return Err("const generics are not supported".into());
                    }
                    generics.push(s);
                    at_param_start = false;
                } else if is_punct(tt, '\'') {
                    return Err("lifetime parameters are not supported".into());
                }
            }
            i += 1;
        }
    }
    let shape = if is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        Shape::UnitEnum(parse_unit_variants(body)?)
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };
    Ok(Input {
        name,
        generics,
        shape,
    })
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other}")),
        };
        i += 1;
        if !tokens.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!("expected ':' after field `{name}`"));
        }
        i += 1;
        // Consume the type: everything until a comma outside angle brackets.
        let mut depth = 0usize;
        while i < tokens.len() {
            let tt = &tokens[i];
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && is_punct(tt, ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in body {
        if is_punct(&tt, '<') {
            depth += 1;
        } else if is_punct(&tt, '>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && is_punct(&tt, ',') {
            count += 1;
            saw_any = false;
            continue;
        }
        saw_any = true;
    }
    count + usize::from(saw_any)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(tt) if is_punct(tt, ',') => {
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{name}` carries data; only unit-variant enums are supported"
                ));
            }
            Some(tt) if is_punct(tt, '=') => {
                return Err(format!("variant `{name}` has a discriminant; unsupported"));
            }
            Some(other) => return Err(format!("unexpected token after variant: {other}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn impl_header(trait_name: &str, input: &Input) -> String {
    let Input { name, generics, .. } = input;
    if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name}")
    } else {
        let bounded: Vec<String> = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {name}<{}>",
            bounded.join(", "),
            generics.join(", ")
        )
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!(
        "compile_error!({:?});",
        format!("serde_derive (vendored): {msg}")
    )
    .parse()
    .expect("valid compile_error")
}

/// Derive the workspace `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = match parse_input(item) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let body = match &input.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(k) => {
            let entries: Vec<String> = (0..*k)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?}))",
                        name = input.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let header = impl_header("Serialize", &input);
    format!("{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}")
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the workspace `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = match parse_input(item) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", entries.join(", "))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(k) => {
            let entries: Vec<String> = (0..*k)
                .map(|i| format!("::serde::Deserialize::from_value(__v.index({i})?)?"))
                .collect();
            format!("Ok({name}({}))", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "match __v.as_str()? {{ {}, other => \
                 Err(::serde::DeError::unknown_variant(other)) }}",
                arms.join(", ")
            )
        }
    };
    let header = impl_header("Deserialize", &input);
    format!(
        "{header} {{ fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
