//! Offline vendored subset of the `criterion` API.
//!
//! Measures wall-clock time of benchmark closures with warmup + fixed
//! sample counts and prints mean / min / max per benchmark. No plots, no
//! statistical regression — enough to compare implementations by eye and
//! by the machine-readable `BENCH <name> mean_ns=<x>` lines it emits.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<S: fmt::Display, P: fmt::Display>(name: S, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_owned(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Run a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{id}: no samples", self.group);
            return;
        }
        let ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let min = *ns.iter().min().expect("nonempty");
        let max = *ns.iter().max().expect("nonempty");
        println!(
            "  {group}/{id}: mean {mean_h} min {min_h} max {max_h} ({k} samples)",
            group = self.group,
            mean_h = human(mean),
            min_h = human(min),
            max_h = human(max),
            k = ns.len(),
        );
        // Machine-readable line for scripts comparing runs.
        println!("BENCH {group}/{id} mean_ns={mean}", group = self.group);
    }
}

fn human(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times one closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, running one warmup iteration then `sample_size` timed ones.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declare a function bundling several benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("det", 64).to_string(), "det/64");
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
    }
}
