//! Offline vendored subset of `serde_json`: render the vendored
//! [`serde::Value`] tree as JSON text and parse it back.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Render `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render `value` as human-indented JSON.
///
/// # Errors
///
/// Never fails for the vendored value model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 1e15 {
            // Keep integral floats readable ("3.0" not "3").
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // JSON has no Infinity/NaN; encode as null like upstream's default.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected ',' or ']', found {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!("expected ',' or '}}', found {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("n".into(), Value::U64(3)),
            ("rate".into(), Value::F64(0.5)),
            (
                "xs".into(),
                Value::Array(vec![Value::U64(1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"n":3,"rate":0.5,"xs":[1,null,true]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"n\": 3"));
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": "hi\nthere", "d": null}}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("42 tail").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::F64(3.0);
        assert_eq!(to_string(&v).unwrap(), "3.0");
    }
}
