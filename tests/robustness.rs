//! Robustness under adversarial port numbering and ID assignments.
//!
//! A correct LOCAL algorithm may read port numbers and IDs, but its
//! *correctness* must survive any assignment of either. These tests rerun
//! the key pipelines on port-shuffled copies of the same graphs and under
//! hostile ID orders, validating every output.

use exp_separation::algorithms::color::{linial_then_reduce, rand_greedy_color};
use exp_separation::algorithms::matching::matching_by_edge_color;
use exp_separation::algorithms::mis::{det_mis, luby_mis};
use exp_separation::algorithms::tree::{theorem10_color, Theorem10Config};
use exp_separation::graphs::gen;
use exp_separation::lcl::problems::{MaximalMatching, Mis, VertexColoring};
use exp_separation::lcl::{Labeling, LclProblem};
use exp_separation::model::IdAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn coloring_pipelines_survive_port_shuffles() {
    let mut rng = StdRng::seed_from_u64(300);
    let base = gen::gnp(50, 0.12, &mut rng);
    for shuffle_seed in 0..4 {
        let g = base.shuffle_ports(shuffle_seed);
        let palette = g.max_degree() + 1;
        let det = linial_then_reduce(&g, palette, 1);
        VertexColoring::new(palette)
            .validate(&g, &det.labels)
            .unwrap_or_else(|v| panic!("shuffle {shuffle_seed}: {v}"));
        let rand = rand_greedy_color(&g, palette, 1, 2000).unwrap();
        VertexColoring::new(palette)
            .validate(&g, &rand.labels)
            .unwrap_or_else(|v| panic!("shuffle {shuffle_seed}: {v}"));
    }
}

#[test]
fn mis_survives_port_shuffles() {
    let mut rng = StdRng::seed_from_u64(301);
    let base = gen::random_regular(48, 4, &mut rng).unwrap();
    for shuffle_seed in 0..4 {
        let g = base.shuffle_ports(shuffle_seed);
        for out in [
            luby_mis(&g, 5, 10_000).unwrap().in_set,
            det_mis(&g, &IdAssignment::Shuffled { seed: 5 }).in_set,
        ] {
            let labels: Labeling<bool> = out.into();
            Mis::new()
                .validate(&g, &labels)
                .unwrap_or_else(|v| panic!("shuffle {shuffle_seed}: {v}"));
        }
    }
}

#[test]
fn matching_survives_port_shuffles() {
    let mut rng = StdRng::seed_from_u64(302);
    let base = gen::gnp(40, 0.15, &mut rng);
    for shuffle_seed in 0..4 {
        let g = base.shuffle_ports(shuffle_seed);
        let out = matching_by_edge_color(&g, 3);
        let labels = MaximalMatching::labels_from_edges(&g, &out.matched_edges);
        MaximalMatching::new()
            .validate(&g, &labels)
            .unwrap_or_else(|v| panic!("shuffle {shuffle_seed}: {v}"));
    }
}

#[test]
fn theorem10_survives_port_shuffles_and_hostile_ids() {
    let mut rng = StdRng::seed_from_u64(303);
    let base = gen::random_tree_max_degree(400, 16, &mut rng);
    for shuffle_seed in 0..3 {
        let g = base.shuffle_ports(shuffle_seed);
        let out = theorem10_color(&g, 16, 7, Theorem10Config::default()).unwrap();
        VertexColoring::new(16)
            .validate(&g, &out.coloring.labels)
            .unwrap_or_else(|v| panic!("shuffle {shuffle_seed}: {v}"));
    }
}

#[test]
fn det_pipelines_survive_adversarial_id_orders() {
    // Reverse, shuffled, and wide-random IDs must all produce valid outputs
    // (round counts may differ — that is the adversary's prerogative).
    let mut rng = StdRng::seed_from_u64(304);
    let g = gen::gnp(60, 0.1, &mut rng);
    let palette = g.max_degree() + 1;
    let assignments = [
        IdAssignment::Sequential,
        IdAssignment::Custom((0..g.n() as u64).rev().collect()),
        IdAssignment::Shuffled { seed: 9 },
        IdAssignment::RandomBits { seed: 9, bits: 32 },
    ];
    for (i, ids) in assignments.iter().enumerate() {
        let out = exp_separation::algorithms::color::linial_color(&g, ids);
        VertexColoring::new(out.palette)
            .validate(&g, &out.labels)
            .unwrap_or_else(|v| panic!("assignment {i}: {v}"));
        let mis = det_mis(&g, ids);
        let labels: Labeling<bool> = mis.in_set.into();
        Mis::new()
            .validate(&g, &labels)
            .unwrap_or_else(|v| panic!("assignment {i}: {v}"));
        let _ = palette;
    }
}
