//! Cross-crate integration: full algorithm pipelines on assorted workloads,
//! every output validated by the LCL checkers — and the centralized and
//! distributed verifiers must agree on every labeling they see.

use exp_separation::algorithms::color::{
    be_forest_coloring, linial_then_reduce, rand_greedy_color,
};
use exp_separation::algorithms::matching::{det_matching, israeli_itai_matching};
use exp_separation::algorithms::mis::ghaffari::GhaffariConfig;
use exp_separation::algorithms::mis::{det_mis, ghaffari_mis, luby_mis};
use exp_separation::algorithms::orientation::sinkless_orientation;
use exp_separation::algorithms::tree::{theorem10_color, theorem11_color, Theorem10Config};
use exp_separation::graphs::{analysis, gen};
use exp_separation::lcl::problems::{MaximalMatching, Mis, SinklessOrientation, VertexColoring};
use exp_separation::lcl::{verifier, Labeling, LclProblem};
use exp_separation::model::IdAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Validate with both checkers and assert agreement.
fn check_both<P>(problem: &P, g: &exp_separation::graphs::Graph, labels: &Labeling<P::Label>)
where
    P: LclProblem + Sync,
    P::Label: Clone + Send + Sync,
{
    let central = problem.validate(g, labels);
    let distributed = verifier::check_distributed(problem, g, labels);
    match (central, distributed) {
        (Ok(()), Ok(())) => {}
        (Err(a), Err(b)) => panic!("both verifiers reject ({a}; {b}) — pipeline bug"),
        (a, b) => panic!("verifier disagreement: central {a:?} vs distributed {b:?}"),
    }
}

#[test]
fn coloring_pipelines_across_workloads() {
    let mut rng = StdRng::seed_from_u64(100);
    let workloads: Vec<exp_separation::graphs::Graph> = vec![
        gen::cycle(40),
        gen::grid(8, 5),
        gen::gnp(60, 0.1, &mut rng),
        gen::random_tree_max_degree(150, 6, &mut rng),
        gen::random_regular(48, 4, &mut rng).unwrap(),
    ];
    for (i, g) in workloads.iter().enumerate() {
        let palette = g.max_degree() + 1;
        let det = linial_then_reduce(g, palette, i as u64);
        check_both(&VertexColoring::new(palette), g, &det.labels);
        let rand = rand_greedy_color(g, palette, i as u64, 2000).unwrap();
        check_both(&VertexColoring::new(palette), g, &rand.labels);
    }
}

#[test]
fn tree_coloring_theorems_agree_on_palette() {
    let mut rng = StdRng::seed_from_u64(101);
    for delta in [9usize, 12, 16] {
        let g = gen::random_tree_max_degree(300, delta, &mut rng);
        let t10 = theorem10_color(&g, delta, 5, Theorem10Config::default()).unwrap();
        check_both(&VertexColoring::new(delta), &g, &t10.coloring.labels);
        let t11 = theorem11_color(&g, delta, 5).unwrap();
        check_both(&VertexColoring::new(delta), &g, &t11.coloring.labels);
        // Theorem 9 with the same palette.
        let ids: Vec<u64> = (0..g.n() as u64).collect();
        let t9 = be_forest_coloring(&g, delta, &ids, None, 0);
        check_both(&VertexColoring::new(delta), &g, &t9.labels);
    }
}

#[test]
fn mis_pipelines_across_workloads() {
    let mut rng = StdRng::seed_from_u64(102);
    let workloads = [
        gen::cycle(33),
        gen::star(20),
        gen::gnp(70, 0.08, &mut rng),
        gen::random_regular(40, 5, &mut rng).unwrap(),
    ];
    for (i, g) in workloads.iter().enumerate() {
        let seed = i as u64;
        let l = luby_mis(g, seed, 10_000).unwrap();
        check_both(&Mis::new(), g, &l.in_set.clone().into());
        let d = det_mis(g, &IdAssignment::Shuffled { seed });
        check_both(&Mis::new(), g, &d.in_set.clone().into());
        let gh = ghaffari_mis(g, seed, GhaffariConfig::default()).unwrap();
        check_both(&Mis::new(), g, &gh.in_set.clone().into());
    }
}

#[test]
fn matching_pipelines_across_workloads() {
    let mut rng = StdRng::seed_from_u64(103);
    let workloads = [gen::path(31), gen::cycle(18), gen::gnp(40, 0.15, &mut rng)];
    for (i, g) in workloads.iter().enumerate() {
        let seed = i as u64;
        let r = israeli_itai_matching(g, seed, 5000).unwrap();
        let labels = MaximalMatching::labels_from_edges(g, &r.matched_edges);
        check_both(&MaximalMatching::new(), g, &labels);
        let d = det_matching(g, &IdAssignment::Shuffled { seed });
        let labels = MaximalMatching::labels_from_edges(g, &d.matched_edges);
        check_both(&MaximalMatching::new(), g, &labels);
    }
}

#[test]
fn sinkless_orientation_end_to_end() {
    let mut rng = StdRng::seed_from_u64(104);
    let g = gen::random_regular(60, 3, &mut rng).unwrap();
    // Enough repair phases to succeed w.h.p.; validated through the LCL.
    for seed in 0..5 {
        let out = sinkless_orientation(&g, seed, 40).unwrap();
        if out.sinks == 0 {
            check_both(&SinklessOrientation::new(3), &g, &out.labels);
            return;
        }
    }
    panic!("40 repair phases failed 5 times in a row — astronomically unlikely");
}

#[test]
fn randomized_and_deterministic_rounds_separate_on_big_cycles() {
    // The intro's summary in one test: deterministic Δ+1 coloring is
    // log*-flat in n, Luby's MIS grows; both valid.
    let small = gen::cycle(1 << 8);
    let large = gen::cycle(1 << 13);
    let det_small = linial_then_reduce(&small, 3, 1).rounds;
    let det_large = linial_then_reduce(&large, 3, 1).rounds;
    assert!(det_large <= det_small + 3, "{det_small} vs {det_large}");
    let luby_small = luby_mis(&small, 1, 10_000).unwrap().rounds;
    let luby_large = luby_mis(&large, 1, 10_000).unwrap().rounds;
    assert!(
        luby_large >= luby_small,
        "Luby should not shrink with n: {luby_small} vs {luby_large}"
    );
}

#[test]
fn power_graph_simulation_identity() {
    // Simulating G^k costs a factor k: verify the structural identity the
    // speedup theorems rely on — a G²-neighborhood equals a radius-2 ball.
    let mut rng = StdRng::seed_from_u64(105);
    let g = gen::random_tree_max_degree(60, 4, &mut rng);
    let g2 = analysis::power_graph(&g, 2);
    for v in g.vertices() {
        let dist = analysis::bfs_distances(&g, v);
        for u in g.vertices() {
            let adjacent = g2.has_edge(v, u);
            let within2 = u != v && dist[u] <= 2;
            assert_eq!(adjacent, within2, "G² edge ({v},{u})");
        }
    }
}
