//! End-to-end tests of the `localab` CLI binary.

use std::process::Command;

fn localab(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_localab"))
        .args(args)
        .output()
        .expect("binary runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn cv_on_cycle() {
    let (ok, text) = localab(&["cv", "cycle", "1000"]);
    assert!(ok, "{text}");
    assert!(text.contains("3 colors, valid"), "{text}");
}

#[test]
fn theorem10_on_complete_tree() {
    let (ok, text) = localab(&["theorem10", "complete-tree", "2000", "--delta", "16"]);
    assert!(ok, "{text}");
    assert!(text.contains("16 colors, valid"), "{text}");
    assert!(text.contains("rounds:"), "{text}");
}

#[test]
fn luby_on_regular() {
    let (ok, text) = localab(&["luby", "regular", "256", "--delta", "4", "--seed", "9"]);
    assert!(ok, "{text}");
    assert!(text.contains("MIS, valid"), "{text}");
}

#[test]
fn matching_family() {
    for algo in ["ii-matching", "det-matching", "ec-matching"] {
        let (ok, text) = localab(&[algo, "gnp", "60", "--delta", "5"]);
        assert!(ok, "{algo}: {text}");
        assert!(text.contains("matching, valid"), "{algo}: {text}");
    }
}

#[test]
fn edge_color_and_delta1() {
    let (ok, text) = localab(&["edge-color", "cycle", "100"]);
    assert!(ok, "{text}");
    assert!(text.contains("edge colors, valid"), "{text}");
    let (ok, text) = localab(&["delta1", "tree", "300", "--delta", "6"]);
    assert!(ok, "{text}");
    assert!(text.contains("valid"), "{text}");
}

#[test]
fn unknown_algorithm_fails_with_usage() {
    let (ok, text) = localab(&["frobnicate", "path", "5"]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");
}

#[test]
fn missing_args_fail_with_usage() {
    let (ok, text) = localab(&[]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");
}
