//! Property-based tests (proptest) on the core invariants, across crates.

use exp_separation::algorithms::color::linial_then_reduce;
use exp_separation::algorithms::mis::luby_mis;
use exp_separation::graphs::{analysis, edge_coloring, gen, GraphBuilder};
use exp_separation::lcl::problems::{Mis, VertexColoring};
use exp_separation::lcl::{verifier, Labeling, LclProblem};
use exp_separation::model::ball;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random simple graph from an edge-probability seed.
fn arb_gnp() -> impl Strategy<Value = exp_separation::graphs::Graph> {
    (4usize..40, 0u64..1000, 1u32..30).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

/// Strategy: a random tree with a degree cap.
fn arb_tree() -> impl Strategy<Value = exp_separation::graphs::Graph> {
    (2usize..120, 3usize..8, 0u64..1000).prop_map(|(n, delta, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::random_tree_max_degree(n, delta, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn handshake_and_ports_always_consistent(g in arb_gnp()) {
        prop_assert!(g.handshake_holds());
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                let back = g.neighbor(nb.node, nb.back_port);
                prop_assert_eq!(back.node, v);
                prop_assert_eq!(back.back_port, p);
            }
        }
    }

    #[test]
    fn trees_are_trees(g in arb_tree()) {
        prop_assert!(analysis::is_tree(&g));
        prop_assert_eq!(analysis::girth(&g), None);
    }

    #[test]
    fn misra_gries_always_proper(g in arb_gnp()) {
        let col = edge_coloring::misra_gries(&g);
        prop_assert!(col.is_proper(&g));
        prop_assert!(col.num_colors() <= g.max_degree() + 1);
    }

    #[test]
    fn coloring_pipeline_always_proper(g in arb_gnp()) {
        let palette = g.max_degree() + 1;
        let out = linial_then_reduce(&g, palette, 7);
        prop_assert!(VertexColoring::new(palette).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn luby_always_valid(g in arb_gnp(), seed in 0u64..50) {
        let out = luby_mis(&g, seed, 10_000).unwrap();
        let labels: Labeling<bool> = out.in_set.into();
        prop_assert!(Mis::new().validate(&g, &labels).is_ok());
    }

    #[test]
    fn verifiers_agree_on_arbitrary_labelings(
        g in arb_gnp(),
        colors in proptest::collection::vec(0usize..4, 40),
    ) {
        // Arbitrary (usually invalid) labelings: both verifiers must return
        // the same verdict — and when rejecting, the same first violation.
        let labels: Labeling<usize> = colors.into_iter().take(g.n())
            .chain(std::iter::repeat(0)).take(g.n()).collect();
        let p = VertexColoring::new(4);
        let central = p.validate(&g, &labels);
        let distributed = verifier::check_distributed(&p, &g, &labels);
        match (central, distributed) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.vertex, b.vertex);
                prop_assert_eq!(a.reason, b.reason);
            }
            (a, b) => prop_assert!(false, "disagreement: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn girth_matches_bruteforce_on_small_graphs(
        n in 3usize..9,
        mask in 0u64..(1 << 20),
    ) {
        // Build the graph selected by `mask` over all pairs; compare the
        // optimized girth against a brute-force shortest-cycle search.
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let mut b = GraphBuilder::new(n);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let fast = analysis::girth(&g);
        // Brute force: try all cycle lengths from 3..=n via DFS paths.
        let brute = brute_force_girth(&g);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn ball_encoding_equality_is_isomorphism_invariant_on_cycles(
        n in 6usize..20,
        t in 1usize..3,
    ) {
        // All interior-symmetric vertices of a cycle share encodings when the
        // asymmetric vertex 0 is outside their ball.
        let g = gen::cycle(n);
        let views = ball::encode_all(&g, t, None, None);
        for v in (t + 1)..(n - t).saturating_sub(1) {
            let w = v + 1;
            if w < n - t - 1 {
                prop_assert_eq!(&views[v], &views[w], "vertices {} and {}", v, w);
            }
        }
    }
}

/// Exhaustive shortest-cycle search for tiny graphs.
fn brute_force_girth(g: &exp_separation::graphs::Graph) -> Option<usize> {
    let n = g.n();
    let mut best: Option<usize> = None;
    // DFS enumerating simple paths from each start; close a cycle when the
    // start reappears.
    fn dfs(
        g: &exp_separation::graphs::Graph,
        start: usize,
        current: usize,
        visited: &mut Vec<bool>,
        depth: usize,
        best: &mut Option<usize>,
    ) {
        for nb in g.neighbors(current) {
            if nb.node == start && depth >= 3 {
                if best.is_none_or(|b| depth < b) {
                    *best = Some(depth);
                }
            } else if !visited[nb.node] && nb.node > start {
                visited[nb.node] = true;
                dfs(g, start, nb.node, visited, depth + 1, best);
                visited[nb.node] = false;
            }
        }
    }
    for start in 0..n {
        let mut visited = vec![false; n];
        visited[start] = true;
        dfs(g, start, start, &mut visited, 1, &mut best);
    }
    best
}
