//! Theorem-level integration tests: each of the paper's results, exercised
//! end-to-end at test scale.

use exp_separation::algorithms::color::be_forest_coloring;
use exp_separation::algorithms::orientation::zero_round::best_zero_round_failure;
use exp_separation::algorithms::tree::{theorem10_color, Theorem10Config};
use exp_separation::graphs::{analysis, edge_coloring, gen};
use exp_separation::lcl::problems::{SinklessColoring, VertexColoring};
use exp_separation::lcl::LclProblem;
use exp_separation::model::ball;
use exp_separation::separation::derand::derandomize_priority_mis;
use exp_separation::separation::shatter::shatter_profile;
use exp_separation::separation::speedup::theorem6_demo;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3 at toy scale: the derandomized algorithm is *verified over the
/// entire instance space*, which is the strongest executable statement of
/// `Det(n) ≤ Rand(2^(n²))`.
#[test]
fn theorem3_derandomization_verified_exhaustively() {
    let report = derandomize_priority_mis(3, 2, 2, 99, 64).expect("union bound");
    assert_eq!(report.claimed_n, 512); // 2^(3²)
    assert!(report.instances >= 8 * 24);
    assert!(report.phis_tried <= 8, "the union bound predicts ~1 try");
}

/// Theorem 4's indistinguishability precondition: interior tree vertices
/// and high-girth-graph vertices have identical radius-t views, so any
/// t-round algorithm treats them identically — which is why tree lower
/// bounds transfer to high-girth graphs and back.
#[test]
fn theorem4_indistinguishability_on_lower_bound_instances() {
    let mut rng = StdRng::seed_from_u64(200);
    let g = gen::high_girth_regular(128, 3, 8, &mut rng).unwrap();
    let girth = analysis::girth(&g).unwrap();
    assert!(girth >= 8);
    let t = (girth - 1) / 2 - 1; // strictly inside the indistinguishability horizon
    let tree = gen::complete_dary_tree(3 * (1 << (t + 3)), 3);
    let interior = tree
        .vertices()
        .find(|&v| {
            let dist = analysis::bfs_distances(&tree, v);
            tree.vertices()
                .filter(|&u| dist[u] <= t)
                .all(|u| tree.degree(u) == 3)
        })
        .expect("interior vertex");
    let tree_view = ball::encode(&tree, interior, t, None, None);
    let graph_view = ball::encode(&g, 0, t, None, None);
    assert_eq!(tree_view, graph_view);
}

/// Theorem 4's base case, exactly: on Δ-regular edge-colored instances the
/// optimal zero-round failure is 1/Δ² per edge — so the *whole run* fails
/// with overwhelming probability on large instances.
#[test]
fn theorem4_zero_round_failure_floor() {
    for delta in [3usize, 5, 8] {
        let floor = best_zero_round_failure(delta);
        assert!((floor - 1.0 / (delta * delta) as f64).abs() < 1e-12);
    }
}

/// Theorem 5's workload sanity: the hard instances exist — Δ-regular,
/// Δ-edge-colorable, girth ≥ target — and a proper Δ-coloring of them is a
/// valid sinkless coloring (the reduction the proof rides on).
#[test]
fn theorem5_hard_instances_and_the_coloring_reduction() {
    let mut rng = StdRng::seed_from_u64(201);
    let g = gen::high_girth_regular(64, 3, 6, &mut rng).unwrap();
    assert!(g.is_regular(3));
    assert!(analysis::girth(&g).unwrap() >= 6);
    let psi = edge_coloring::konig(&g).unwrap();
    assert_eq!(psi.num_colors(), 3);
    // A proper 3-coloring (exists: bipartite graphs are 2-colorable, use 2
    // of the 3 colors) is automatically sinkless.
    let side = analysis::bipartition(&g).unwrap();
    let labels: exp_separation::lcl::Labeling<usize> = side.iter().map(|&s| s as usize).collect();
    assert!(VertexColoring::new(3).validate(&g, &labels).is_ok());
    let sinkless = SinklessColoring::new(3, psi);
    assert!(sinkless.validate(&g, &labels).is_ok());
}

/// Theorem 6: the black-box speedup turns a Θ(n) algorithm into one whose
/// total rounds are orders of magnitude smaller, on the same instance, with
/// a verified-proper output.
#[test]
fn theorem6_speedup_end_to_end() {
    let n = 2048;
    let g = gen::path(n);
    let report = theorem6_demo(&g, (0..n as u64).collect());
    assert!(report.slow_rounds as usize >= n - 1);
    assert!(report.transformed_total() < 200);
}

/// Theorem 7's Δ = 2 side: 3-coloring cycles is O(log* n) (Cole–Vishkin),
/// and 2-coloring them (odd n) is impossible — the LCL checker knows.
#[test]
fn theorem7_delta2_dichotomy() {
    use exp_separation::algorithms::color::cole_vishkin::cv_color_cycle;
    use exp_separation::model::IdAssignment;
    let fast = cv_color_cycle(&gen::cycle(4096), &IdAssignment::Sequential);
    assert!(
        fast.rounds <= 12,
        "log* n + O(1) rounds, got {}",
        fast.rounds
    );
    assert!(VertexColoring::new(3)
        .validate(&gen::cycle(4096), &fast.labels)
        .is_ok());
    // 2-coloring an odd cycle is globally infeasible: every labeling fails.
    let g = gen::cycle(5);
    let p = VertexColoring::new(2);
    for mask in 0u32..32 {
        let labels: exp_separation::lcl::Labeling<usize> =
            (0..5).map(|v| ((mask >> v) & 1) as usize).collect();
        assert!(
            p.validate(&g, &labels).is_err(),
            "mask {mask} cannot be proper"
        );
    }
}

/// Theorems 9 + 10 on the same instance: both produce proper Δ-colorings;
/// the deterministic round count exceeds the randomized one on large
/// instances (the separation), and the shattered components obey the
/// Δ⁴ log n bound.
#[test]
fn theorems_9_10_separation_and_shattering() {
    let delta = 16;
    let n = 1 << 14;
    let mut rng = StdRng::seed_from_u64(202);
    let g = gen::random_tree_max_degree(n, delta, &mut rng);
    let ids: Vec<u64> = (0..n as u64).collect();

    let det = be_forest_coloring(&g, delta, &ids, None, 0);
    assert!(VertexColoring::new(delta).validate(&g, &det.labels).is_ok());

    let rand = theorem10_color(&g, delta, 1, Theorem10Config::default()).unwrap();
    assert!(VertexColoring::new(delta)
        .validate(&g, &rand.coloring.labels)
        .is_ok());

    assert!(
        det.rounds > rand.coloring.rounds,
        "separation: det {} must exceed rand {}",
        det.rounds,
        rand.coloring.rounds
    );

    let bound = (delta as f64).powi(4) * (n as f64).log2();
    assert!(
        (rand.stats.largest_bad_component as f64) <= bound,
        "shattering bound violated: {} > {bound}",
        rand.stats.largest_bad_component
    );
}

/// The shattering profile of ANY randomized phase is measurable through the
/// generic combinator; statistics agree with the algorithm's own report.
#[test]
fn shatter_profile_agrees_with_theorem10_stats() {
    use exp_separation::algorithms::tree::theorem10::theorem10_phase1;
    let mut rng = StdRng::seed_from_u64(203);
    let g = gen::random_tree_max_degree(4000, 16, &mut rng);
    let (status, _) = theorem10_phase1(&g, 16, 3, Theorem10Config::default()).unwrap();
    let bad: Vec<bool> = status.iter().map(Option::is_none).collect();
    let profile = shatter_profile(&g, &bad);
    let out = theorem10_color(&g, 16, 3, Theorem10Config::default()).unwrap();
    assert_eq!(profile.undecided, out.stats.bad_vertices);
    assert_eq!(profile.largest(), out.stats.largest_bad_component);
    assert_eq!(profile.components(), out.stats.bad_components);
}
