//! Wall-clock benchmarks of the round engine itself: message throughput on
//! a broadcast-heavy protocol, sequential vs rayon-parallel regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use local_graphs::gen;
use local_model::{
    Action, Engine, ExecSpec, FaultPlan, Mode, NodeInit, NodeIo, NodeProgram, Protocol,
};
use local_obs::Trace;

/// Floods for a fixed number of rounds, then halts — pure engine overhead.
struct Flood {
    horizon: u32,
    value: u64,
}
impl NodeProgram for Flood {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        for (_, &m) in io.received() {
            self.value = self.value.max(m);
        }
        if round >= self.horizon {
            Action::Halt(self.value)
        } else {
            io.broadcast(self.value);
            Action::Continue
        }
    }
}
struct FloodProtocol {
    horizon: u32,
}
impl Protocol for FloodProtocol {
    type Node = Flood;
    fn create(&self, init: &NodeInit<'_>) -> Flood {
        Flood {
            horizon: self.horizon,
            value: init.id.unwrap_or(0),
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood_20_rounds");
    group.sample_size(10);
    // 1k is below the rayon threshold, 16k above — both regimes measured.
    for &n in &[1usize << 10, 1 << 14] {
        let g = gen::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                Engine::new(g, Mode::deterministic())
                    .execute(&ExecSpec::default(), &FloodProtocol { horizon: 20 })
                    .into_run(100_000)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The same flood with a [`Trace`] attached: measures what per-round event
/// buffering costs when observability is *on*. The `engine_flood_20_rounds`
/// group above is the tracing-disabled baseline (its `Option<&Trace>` is
/// `None`), so the pair bounds the overhead from both sides.
fn bench_engine_traced(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood_20_rounds_traced");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 14] {
        let g = gen::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let trace = Trace::new(0);
                let plan = FaultPlan::none();
                let spec = ExecSpec::default().with_faults(&plan).with_trace(&trace);
                let run = Engine::new(g, Mode::deterministic())
                    .execute(&spec, &FloodProtocol { horizon: 20 });
                (run.stats.messages_sent, trace.into_events().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_engine_traced);
criterion_main!(benches);
