//! Wall-clock benchmarks of the E1 workload: deterministic (Theorem 9) vs
//! randomized (Theorems 10/11) tree Δ-coloring in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use local_algorithms::color::be_forest_coloring;
use local_algorithms::tree::{theorem10_color, theorem11_color, Theorem10Config};
use local_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tree_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_delta_coloring");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 12] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::random_tree_max_degree(n, 16, &mut rng);
        let ids: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("theorem9_det", n), &g, |b, g| {
            b.iter(|| be_forest_coloring(g, 16, &ids, None, 0))
        });
        group.bench_with_input(BenchmarkId::new("theorem10_rand", n), &g, |b, g| {
            b.iter(|| theorem10_color(g, 16, 7, Theorem10Config::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("theorem11_rand", n), &g, |b, g| {
            b.iter(|| theorem11_color(g, 16, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_coloring);
criterion_main!(benches);
