//! Wall-clock benchmarks of the E9 MIS workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use local_algorithms::mis::ghaffari::GhaffariConfig;
use local_algorithms::mis::{det_mis, ghaffari_mis, luby_mis};
use local_graphs::gen;
use local_model::IdAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 12] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_regular(n, 4, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            b.iter(|| luby_mis(g, 5, 10_000).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("det_by_color", n), &g, |b, g| {
            b.iter(|| det_mis(g, &IdAssignment::Sequential))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari_shattering", n), &g, |b, g| {
            b.iter(|| ghaffari_mis(g, 5, GhaffariConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
