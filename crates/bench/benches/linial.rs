//! Wall-clock benchmarks of Linial's algorithm (E8 workload) and the
//! cover-free recoloring primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use local_algorithms::color::{linial_color, PolyFamily};
use local_graphs::gen;
use local_model::IdAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_linial(c: &mut Criterion) {
    let mut group = c.benchmark_group("linial");
    group.sample_size(10);
    for &n in &[1usize << 10, 1 << 14] {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::random_tree_max_degree(n, 8, &mut rng);
        group.bench_with_input(BenchmarkId::new("o_log_star_coloring", n), &g, |b, g| {
            b.iter(|| linial_color(g, &IdAssignment::Sequential))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cover_free_recolor");
    let fam = PolyFamily::new(1 << 40, 16);
    let neighbors: Vec<u64> = (0..16).map(|i| i * 1_234_567 + 1).collect();
    group.bench_function("single_recolor_2pow40_delta16", |b| {
        b.iter(|| fam.recolor(987_654_321, &neighbors))
    });
    group.finish();
}

criterion_group!(benches, bench_linial);
criterion_main!(benches);
