//! The experiment registry: one trait, one driver, fifteen entries.
//!
//! Every `exp_*` binary is a one-line shim over [`main_for`]. The shared
//! driver owns everything the binaries used to copy-paste: CLI parsing,
//! capability checks (with the rejection text and exit status 2 emitted in
//! exactly one place, [`check_flags`]), the banner, trace-sink plumbing,
//! and the choice between the human tables and the JSON envelope. An
//! [`Experiment`] implementation only declares what it *is* — id, claim,
//! capabilities, resolved configuration — and how to produce rows.
//!
//! Experiments with `caps().fabric` additionally expose a [`FabricJob`]:
//! the sweep decomposition the crash-tolerant fabric shards across worker
//! processes (`--workers N`; see [`local_separation::fabric`]). The driver
//! then runs one of three paths: the serial sweep (no fabric flags), the
//! fabric coordinator (`--workers`), or a fabric worker (`--fabric-worker`,
//! appended by the coordinator when spawning).

use crate::Cli;
use local_obs::{MetricsRegistry, ResourceSample, TraceSink};
use local_separation::checkpoint::Checkpoint;
use local_separation::fabric::{
    journal_scope, run_fabric, worker_serve, FabricConfig, Sweep, UnitMap, WorkerCommand, WorkerEnv,
};
use serde::{Serialize, Value};
use std::path::PathBuf;

/// Which optional planes an experiment's run path supports.
///
/// Declared once on the [`Experiment`] impl; the driver turns an
/// unsupported `--trace`/`--checkpoint`/`--workers` into the uniform
/// exit-2 rejection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Caps {
    /// `--trace PATH` streams JSON-lines trace events.
    pub trace: bool,
    /// `--checkpoint PATH` makes the sweep resumable.
    pub checkpoint: bool,
    /// `--workers N` runs the sweep through the crash-tolerant fabric.
    pub fabric: bool,
}

impl Caps {
    /// The common shape: traced, but with no resumable trial loop.
    pub const TRACE_ONLY: Caps = Caps {
        trace: true,
        checkpoint: false,
        fabric: false,
    };
    /// Traced, resumable, and fabric-shardable (E12/E13/E14).
    pub const TRACE_AND_CHECKPOINT: Caps = Caps {
        trace: true,
        checkpoint: true,
        fabric: true,
    };
}

/// What a run produced: the rows for the JSON envelope and the already
/// formatted human report (tables plus any fit/summary lines, newline
/// terminated — the driver prints it verbatim).
pub struct ExperimentOutput {
    /// The measured rows, exactly as the envelope's `rows` field.
    pub rows: serde::Value,
    /// The human-readable report.
    pub human: String,
    /// The run's merged metrics registry, written to `--metrics PATH` as a
    /// canonical `metrics/v1` document. Experiments without metering leave
    /// it empty (the document then carries an empty `metrics` object).
    pub metrics: MetricsRegistry,
}

/// An experiment's fabric decomposition: the sweep the workers execute
/// unit-by-unit and the fold that turns the merged unit values back into
/// the experiment's output. The fold must reproduce the serial run's rows
/// byte-for-byte — that is the fabric's whole contract.
pub trait FabricJob {
    /// The sweep: grid points (scopes + trial counts) and the unit
    /// executor.
    fn sweep(&self) -> &dyn Sweep;

    /// Fold merged per-point unit values (see
    /// [`local_separation::fabric::UnitMap::group`]) into the final output.
    fn fold(&self, per_point: Vec<Vec<serde::Value>>) -> ExperimentOutput;
}

/// One registered experiment.
pub trait Experiment: Sync {
    /// Identifier (`"E1"`, …, `"A1"`), as printed in banners and envelopes.
    fn id(&self) -> &'static str;

    /// The one-line claim under test, printed in the banner.
    fn claim(&self) -> &'static str;

    /// Which optional planes [`Experiment::run`] honours.
    fn caps(&self) -> Caps {
        Caps::TRACE_ONLY
    }

    /// The resolved configuration for this command line (`--full`,
    /// `--trials`, `--seed` applied), as a value tree for inspection.
    fn default_config(&self, cli: &Cli) -> serde::Value;

    /// Run the sweep. `sink` is `Some` exactly when `--trace` was given
    /// (the driver has already opened the file and checked capabilities).
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput;

    /// The experiment's fabric decomposition, present exactly when
    /// `caps().fabric`. The driver uses it for both the coordinator and
    /// worker paths.
    fn fabric(&self, cli: &Cli) -> Option<Box<dyn FabricJob>> {
        let _ = cli;
        None
    }
}

/// The uniform capability check: THE one place that produces rejection
/// text. Pure, so the messages are unit-testable; the driver adds the
/// `error:` prefix and the exit status 2.
///
/// # Errors
///
/// A human-readable message when the command line asks for a plane the
/// experiment does not support, combines planes that exclude each other
/// (`--trace`/`--checkpoint`, `--workers`/`--checkpoint`), or misuses the
/// fabric flags (`--workers 0`, worker flags without their prerequisites).
pub fn check_flags(cli: &Cli, id: &str, caps: Caps) -> Result<(), String> {
    if cli.trace.is_some() && !caps.trace {
        return Err(format!(
            "{id} does not support --trace (no traced run path)"
        ));
    }
    if cli.checkpoint.is_some() && !caps.checkpoint {
        return Err(format!(
            "{id} does not support --checkpoint (no resumable trial loop)"
        ));
    }
    if cli.trace.is_some() && cli.checkpoint.is_some() {
        return Err(format!(
            "--trace and --checkpoint are mutually exclusive on {id}"
        ));
    }
    if (cli.workers.is_some() || cli.fabric_worker.is_some()) && !caps.fabric {
        return Err(format!(
            "{id} does not support --workers (no fabric sweep decomposition)"
        ));
    }
    if cli.workers == Some(0) {
        return Err("--workers needs at least one worker".to_string());
    }
    if cli.workers.is_some() && cli.checkpoint.is_some() {
        return Err(format!(
            "--workers and --checkpoint are mutually exclusive on {id} \
             (the fabric journals per worker)"
        ));
    }
    if cli.workers.is_some() && cli.fabric_worker.is_some() {
        return Err("--workers and --fabric-worker are mutually exclusive".to_string());
    }
    if cli.fabric_worker.is_some() {
        if cli.fabric_dir.is_none() {
            return Err("--fabric-worker requires --fabric-dir".to_string());
        }
        if cli.json || cli.trace.is_some() || cli.checkpoint.is_some() || cli.metrics.is_some() {
            return Err(
                "--fabric-worker is a fabric-internal mode and takes no output flags".to_string(),
            );
        }
    }
    if cli.fabric_dir.is_some() && cli.workers.is_none() && cli.fabric_worker.is_none() {
        return Err("--fabric-dir requires --workers or --fabric-worker".to_string());
    }
    if cli.fabric_attempt != 0 && cli.fabric_worker.is_none() {
        return Err("--fabric-attempt requires --fabric-worker".to_string());
    }
    Ok(())
}

/// Run `experiment` under `cli`: capability check, banner, trace plumbing,
/// then either the JSON envelope (stdout) or the human report.
pub fn run_with(experiment: &dyn Experiment, cli: &Cli) {
    run_with_prefix(experiment, cli, &[]);
}

/// [`run_with`], with the extra argv prefix fabric workers need when the
/// binary is a multiplexer (e.g. `sweep_fabric E13 …` re-spawns itself with
/// the experiment id in front of the flags). Single-experiment shims pass
/// an empty prefix.
pub fn run_with_prefix(experiment: &dyn Experiment, cli: &Cli, spawn_prefix: &[String]) {
    if let Err(msg) = check_flags(cli, experiment.id(), experiment.caps()) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    if let Some(slot) = cli.fabric_worker {
        worker_main(experiment, cli, slot);
        return;
    }
    if let Some(workers) = cli.workers {
        coordinator_main(experiment, cli, workers, spawn_prefix);
        return;
    }
    cli.banner(experiment.id(), experiment.claim());
    // A resumable sweep must fail loudly — not silently recompute — when
    // the checkpoint on disk was written by a different configuration or
    // seed: validate its scopes against the experiment's own before the
    // run opens it for real.
    if let (Some(path), Some(job)) = (cli.checkpoint.as_deref(), experiment.fabric(cli)) {
        if std::path::Path::new(path).exists() {
            let expected: Vec<String> = job
                .sweep()
                .points()
                .iter()
                .map(|p| p.scope.clone())
                .collect();
            let checked = Checkpoint::open(path).and_then(|ckpt| ckpt.check_scope(&expected));
            if let Err(err) = checked {
                cli.fail(experiment.id(), err.kind(), &err.to_string());
            }
        }
    }
    let mut sink = cli.open_trace();
    let out = experiment.run(cli, sink.as_mut().map(|s| s as &mut dyn TraceSink));
    cli.emit_metrics(experiment.id(), &out.metrics, resource_telemetry());
    if cli.json {
        cli.emit_json(experiment.id(), &out.rows);
    } else {
        print!("{}", out.human);
    }
}

/// The telemetry fields every run records alongside its metrics document:
/// the process resource sample (peak/current RSS), or `null` where
/// `/proc/self/status` is unavailable.
fn resource_telemetry() -> Vec<(String, Value)> {
    let resource = ResourceSample::capture().map_or(Value::Null, |r| r.to_value());
    vec![("resource".to_string(), resource)]
}

/// The fabric coordinator path: shard the sweep into leases, drive the
/// worker pool, merge the journals, fold, report.
fn coordinator_main(experiment: &dyn Experiment, cli: &Cli, workers: u64, spawn_prefix: &[String]) {
    let job = experiment
        .fabric(cli)
        .expect("caps().fabric implies a FabricJob");
    cli.banner(experiment.id(), experiment.claim());
    let points = job.sweep().points();
    let map = UnitMap::new(points);
    let scope = journal_scope(points);

    let (dir, ephemeral) = match &cli.fabric_dir {
        Some(d) => (PathBuf::from(d), false),
        None => {
            let mut d = std::env::temp_dir();
            d.push(format!(
                "local-fabric-{}-{}",
                experiment.id().to_lowercase(),
                std::process::id()
            ));
            (d, true)
        }
    };

    let mut cfg = FabricConfig::from_env(workers);
    cfg.verbose = !cli.quiet;
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(err) => {
            cli.fail(
                experiment.id(),
                "io",
                &format!("cannot locate own executable: {err}"),
            );
        }
    };
    let mut args: Vec<String> = spawn_prefix.to_vec();
    args.extend(cli.worker_args());
    args.push(format!("--fabric-dir={}", dir.display()));
    let cmd = WorkerCommand { program, args };

    let mut sink = cli.open_trace();
    let result = run_fabric(
        map.total(),
        &cmd,
        &dir,
        &scope,
        &cfg,
        sink.as_mut().map(|s| s as &mut dyn TraceSink),
    );
    match result {
        Ok(report) => {
            cli.progress(&report.summary(workers));
            let census = Value::Array(report.workers.iter().map(Serialize::to_value).collect());
            let out = job.fold(map.group(report.values));
            let mut telemetry = resource_telemetry();
            telemetry.push(("workers".to_string(), census));
            cli.emit_metrics(experiment.id(), &out.metrics, telemetry);
            if cli.json {
                cli.emit_json(experiment.id(), &out.rows);
            } else {
                print!("{}", out.human);
            }
            if ephemeral {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        Err(err) => {
            cli.fail(experiment.id(), err.kind(), &err.to_string());
        }
    }
}

/// The fabric worker path: serve leases from stdin, journal every unit,
/// exit when told to. Exit status 3 (not the flag-rejection 2) on runtime
/// failure, so the coordinator's exit census distinguishes the two.
fn worker_main(experiment: &dyn Experiment, cli: &Cli, slot: u64) {
    let job = experiment
        .fabric(cli)
        .expect("caps().fabric implies a FabricJob");
    let dir = cli
        .fabric_dir
        .as_deref()
        .expect("check_flags: --fabric-worker requires --fabric-dir");
    let points = job.sweep().points();
    let map = UnitMap::new(points);
    let scope = journal_scope(points);
    let env = WorkerEnv {
        dir: PathBuf::from(dir),
        worker: slot,
        attempt: cli.fabric_attempt,
    };
    let sweep = job.sweep();
    if let Err(err) = worker_serve(&env, &scope, |unit| {
        let (point, index) = map.locate(unit);
        sweep.run_unit(point, index)
    }) {
        eprintln!("error: fabric worker {slot}: {err}");
        std::process::exit(3);
    }
}

/// Look up a registered experiment by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    crate::experiments::all()
        .iter()
        .copied()
        .find(|e| e.id() == id)
}

/// The whole `main` of an `exp_*` binary: parse the command line and run
/// the registered experiment. Panics on an unregistered id — that is a
/// build error in the shim, not a user mistake.
pub fn main_for(id: &str) {
    let experiment = find(id).unwrap_or_else(|| panic!("experiment `{id}` is not registered"));
    let cli = Cli::parse();
    run_with(experiment, &cli);
}
