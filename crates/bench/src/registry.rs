//! The experiment registry: one trait, one driver, fourteen entries.
//!
//! Every `exp_*` binary is a one-line shim over [`main_for`]. The shared
//! driver owns everything the binaries used to copy-paste: CLI parsing,
//! capability checks (with the rejection text and exit status 2 emitted in
//! exactly one place, [`check_flags`]), the banner, trace-sink plumbing,
//! and the choice between the human tables and the JSON envelope. An
//! [`Experiment`] implementation only declares what it *is* — id, claim,
//! capabilities, resolved configuration — and how to produce rows.

use crate::Cli;
use local_obs::TraceSink;

/// Which optional planes an experiment's run path supports.
///
/// Declared once on the [`Experiment`] impl; the driver turns an
/// unsupported `--trace`/`--checkpoint` into the uniform exit-2 rejection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Caps {
    /// `--trace PATH` streams JSON-lines trace events.
    pub trace: bool,
    /// `--checkpoint PATH` makes the sweep resumable.
    pub checkpoint: bool,
}

impl Caps {
    /// The common shape: traced, but with no resumable trial loop.
    pub const TRACE_ONLY: Caps = Caps {
        trace: true,
        checkpoint: false,
    };
    /// Traced and resumable (E12/E13).
    pub const TRACE_AND_CHECKPOINT: Caps = Caps {
        trace: true,
        checkpoint: true,
    };
}

/// What a run produced: the rows for the JSON envelope and the already
/// formatted human report (tables plus any fit/summary lines, newline
/// terminated — the driver prints it verbatim).
pub struct ExperimentOutput {
    /// The measured rows, exactly as the envelope's `rows` field.
    pub rows: serde::Value,
    /// The human-readable report.
    pub human: String,
}

/// One registered experiment.
pub trait Experiment: Sync {
    /// Identifier (`"E1"`, …, `"A1"`), as printed in banners and envelopes.
    fn id(&self) -> &'static str;

    /// The one-line claim under test, printed in the banner.
    fn claim(&self) -> &'static str;

    /// Which optional planes [`Experiment::run`] honours.
    fn caps(&self) -> Caps {
        Caps::TRACE_ONLY
    }

    /// The resolved configuration for this command line (`--full`,
    /// `--trials`, `--seed` applied), as a value tree for inspection.
    fn default_config(&self, cli: &Cli) -> serde::Value;

    /// Run the sweep. `sink` is `Some` exactly when `--trace` was given
    /// (the driver has already opened the file and checked capabilities).
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput;
}

/// The uniform capability check: THE one place that produces rejection
/// text. Pure, so the messages are unit-testable; the driver adds the
/// `error:` prefix and the exit status 2.
///
/// # Errors
///
/// A human-readable message when the command line asks for a plane the
/// experiment does not support, or for `--trace` and `--checkpoint`
/// together (the journal formats are not yet unified).
pub fn check_flags(cli: &Cli, id: &str, caps: Caps) -> Result<(), String> {
    if cli.trace.is_some() && !caps.trace {
        return Err(format!(
            "{id} does not support --trace (no traced run path)"
        ));
    }
    if cli.checkpoint.is_some() && !caps.checkpoint {
        return Err(format!(
            "{id} does not support --checkpoint (no resumable trial loop)"
        ));
    }
    if cli.trace.is_some() && cli.checkpoint.is_some() {
        return Err(format!(
            "--trace and --checkpoint are mutually exclusive on {id}"
        ));
    }
    Ok(())
}

/// Run `experiment` under `cli`: capability check, banner, trace plumbing,
/// then either the JSON envelope (stdout) or the human report.
pub fn run_with(experiment: &dyn Experiment, cli: &Cli) {
    if let Err(msg) = check_flags(cli, experiment.id(), experiment.caps()) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    cli.banner(experiment.id(), experiment.claim());
    let mut sink = cli.open_trace();
    let out = experiment.run(cli, sink.as_mut().map(|s| s as &mut dyn TraceSink));
    if cli.json {
        cli.emit_json(experiment.id(), &out.rows);
    } else {
        print!("{}", out.human);
    }
}

/// Look up a registered experiment by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    crate::experiments::all()
        .iter()
        .copied()
        .find(|e| e.id() == id)
}

/// The whole `main` of an `exp_*` binary: parse the command line and run
/// the registered experiment. Panics on an unregistered id — that is a
/// build error in the shim, not a user mistake.
pub fn main_for(id: &str) {
    let experiment = find(id).unwrap_or_else(|| panic!("experiment `{id}` is not registered"));
    let cli = Cli::parse();
    run_with(experiment, &cli);
}
