//! The fifteen registered experiments.
//!
//! Each entry binds an experiment module from `local-separation` to the
//! [`Experiment`] trait: id and claim for the banner, capabilities for the
//! uniform flag check, the resolved configuration, and a `run` that maps
//! the CLI onto the module's `run_traced`/`run_checkpointed` entry points.
//! The binaries in `src/bin/` are one-line shims over this table.

use crate::registry::{Caps, Experiment, ExperimentOutput, FabricJob};
use crate::Cli;
use local_obs::{MetricsRegistry, TraceSink};
use local_separation::experiments::{
    a1_ablation as a1, e10_indistinguishability as e10, e11_dichotomy as e11,
    e12_resilience as e12, e13_recovery as e13, e14_adversary as e14, e1_separation as e1,
    e2_shattering as e2, e3_theorem11 as e3, e4_zero_round as e4, e5_truncation as e5,
    e6_derand as e6, e7_speedup as e7, e8_linial as e8, e9_mis as e9,
};
use local_separation::fabric::Sweep;
use serde::Serialize;

/// Every registered experiment, in EXPERIMENTS.md order.
pub fn all() -> &'static [&'static dyn Experiment] {
    &[
        &E1Separation,
        &E2Shattering,
        &E3Theorem11,
        &E4ZeroRound,
        &E5Truncation,
        &E6Derand,
        &E7Speedup,
        &E8Linial,
        &E9Mis,
        &E10Indistinguishability,
        &E11Dichotomy,
        &E12Resilience,
        &E13Recovery,
        &E14Adversary,
        &A1Ablation,
    ]
}

/// E1: the exponential separation — deterministic vs randomized tree
/// Δ-coloring rounds.
pub struct E1Separation;

impl E1Separation {
    fn config(cli: &Cli) -> e1::Config {
        let mut cfg = if cli.full {
            e1::Config::full()
        } else {
            e1::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for E1Separation {
    fn id(&self) -> &'static str {
        "E1"
    }
    fn claim(&self) -> &'static str {
        "tree Δ-coloring: Det Θ(log_Δ n) vs Rand O(log_Δ log n + log* n)"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E1 (seeds derive from n and Δ)");
        }
        let out = e1::run_traced(&Self::config(cli), sink);
        let mut human = format!("{}\n", e1::table(&out));
        for (delta, model) in &out.det_fit {
            human.push_str(&format!(
                "Δ = {delta}: deterministic peel depth ℓ best fit: {}\n",
                model.name()
            ));
        }
        for (delta, model) in &out.rand_fit {
            human.push_str(&format!(
                "Δ = {delta}: randomized total rounds best fit:    {}\n",
                model.name()
            ));
        }
        ExperimentOutput {
            rows: out.rows.to_value(),
            human,
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E2: Theorem 10 shattering — bad-component sizes vs the Δ⁴·log n bound.
pub struct E2Shattering;

impl E2Shattering {
    fn config(cli: &Cli) -> e2::Config {
        let mut cfg = if cli.full {
            e2::Config::full()
        } else {
            e2::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for E2Shattering {
    fn id(&self) -> &'static str {
        "E2"
    }
    fn claim(&self) -> &'static str {
        "bad components after Phase 1 are O(Δ⁴ log n)"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E2 (seeds derive from n)");
        }
        let cfg = Self::config(cli);
        let rows = e2::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e2::table(&rows, cfg.delta)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E3: Theorem 11 — per-phase rounds and the shattered set for constant Δ.
pub struct E3Theorem11;

impl E3Theorem11 {
    fn config(cli: &Cli) -> e3::Config {
        let mut cfg = if cli.full {
            e3::Config::full()
        } else {
            e3::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for E3Theorem11 {
    fn id(&self) -> &'static str {
        "E3"
    }
    fn claim(&self) -> &'static str {
        "Theorem 11 profile: setup/phase rounds and S components"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E3 (seeds derive from n)");
        }
        let cfg = Self::config(cli);
        let rows = e3::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e3::table(&rows, cfg.delta)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E4: the zero-round lower bound — per-edge failure ≥ 1/Δ².
pub struct E4ZeroRound;

impl E4ZeroRound {
    fn config(cli: &Cli) -> e4::Config {
        let mut cfg = if cli.full {
            e4::Config::full()
        } else {
            e4::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.trials = t;
        }
        cfg
    }
}

impl Experiment for E4ZeroRound {
    fn id(&self) -> &'static str {
        "E4"
    }
    fn claim(&self) -> &'static str {
        "every 0-round sinkless coloring fails with prob ≥ 1/Δ²"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E4 (seeds derive from the strategy grid)");
        }
        let rows = e4::run_traced(&Self::config(cli), sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e4::table(&rows)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E5: failure decay of truncated sinkless orientation.
pub struct E5Truncation;

impl E5Truncation {
    fn config(cli: &Cli) -> e5::Config {
        let mut cfg = if cli.full {
            e5::Config::full()
        } else {
            e5::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for E5Truncation {
    fn id(&self) -> &'static str {
        "E5"
    }
    fn claim(&self) -> &'static str {
        "sink probability vs round budget (round elimination, run forward)"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E5 (seeds derive from the phase grid)");
        }
        let cfg = Self::config(cli);
        let rows = e5::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e5::table(&rows, cfg.delta)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E6: Theorem 3 derandomization over exhaustive toy instance spaces.
pub struct E6Derand;

impl E6Derand {
    fn config(cli: &Cli) -> e6::Config {
        if cli.full {
            e6::Config::full()
        } else {
            e6::Config::quick()
        }
    }
}

impl Experiment for E6Derand {
    fn id(&self) -> &'static str {
        "E6"
    }
    fn claim(&self) -> &'static str {
        "Det(n, Δ) ≤ Rand(2^(n²), Δ), machine-verified at toy scale"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.trials.is_some() || cli.seed.is_some() {
            cli.progress("note: --trials/--seed have no effect on E6 (exhaustive enumeration)");
        }
        let rows = e6::run_traced(&Self::config(cli), sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e6::table(&rows)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E7: the Theorem 6 black-box speedup.
pub struct E7Speedup;

impl E7Speedup {
    fn config(cli: &Cli) -> e7::Config {
        if cli.full {
            e7::Config::full()
        } else {
            e7::Config::quick()
        }
    }
}

impl Experiment for E7Speedup {
    fn id(&self) -> &'static str {
        "E7"
    }
    fn claim(&self) -> &'static str {
        "greedy-by-ID coloring: Θ(n) before, O(log* n + poly Δ) after"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.trials.is_some() || cli.seed.is_some() {
            cli.progress("note: --trials/--seed have no effect on E7 (deterministic algorithms)");
        }
        let rows = e7::run_traced(&Self::config(cli), sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e7::table(&rows)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E8: Linial's coloring — Theorem 1 shrink and Theorem 2 convergence.
pub struct E8Linial;

impl E8Linial {
    fn config(cli: &Cli) -> e8::Config {
        if cli.full {
            e8::Config::full()
        } else {
            e8::Config::quick()
        }
    }
}

impl Experiment for E8Linial {
    fn id(&self) -> &'static str {
        "E8"
    }
    fn claim(&self) -> &'static str {
        "one-round palette shrink and O(log* n) convergence to β·Δ²"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.trials.is_some() || cli.seed.is_some() {
            cli.progress("note: --trials/--seed have no effect on E8 (deterministic algorithms)");
        }
        let (shrink, conv) = e8::run_traced(&Self::config(cli), sink);
        ExperimentOutput {
            // Two measured sections, combined into one envelope payload.
            rows: serde::Value::Object(vec![
                ("shrink".to_string(), shrink.to_value()),
                ("convergence".to_string(), conv.to_value()),
            ]),
            human: format!(
                "{}\n{}\n",
                e8::shrink_table(&shrink),
                e8::convergence_table(&conv)
            ),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E9: the MIS landscape — Luby vs deterministic vs shattering.
pub struct E9Mis;

impl E9Mis {
    fn config(cli: &Cli) -> e9::Config {
        let mut cfg = if cli.full {
            e9::Config::full()
        } else {
            e9::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for E9Mis {
    fn id(&self) -> &'static str {
        "E9"
    }
    fn claim(&self) -> &'static str {
        "MIS: Luby Θ(log n) vs Det O(Δ²+log* n) vs Ghaffari shattering"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on E9 (seeds derive from n)");
        }
        let cfg = Self::config(cli);
        let out = e9::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!(
                "{}\nLuby best fit: {}\nDet best fit:  {}\n",
                e9::table(&out, cfg.delta),
                out.luby_fit.name(),
                out.det_fit.name()
            ),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E10: the indistinguishability principle, counted.
pub struct E10Indistinguishability;

impl E10Indistinguishability {
    fn config(cli: &Cli) -> e10::Config {
        if cli.full {
            e10::Config::full()
        } else {
            e10::Config::quick()
        }
    }
}

impl Experiment for E10Indistinguishability {
    fn id(&self) -> &'static str {
        "E10"
    }
    fn claim(&self) -> &'static str {
        "below half the girth, a Δ-regular graph has ONE radius-t view = the tree's"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.trials.is_some() || cli.seed.is_some() {
            cli.progress("note: --trials/--seed have no effect on E10 (exact view census)");
        }
        let cfg = Self::config(cli);
        let (rows, girth) = e10::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", e10::table(&rows, cfg.delta, girth)),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E11: Theorem 7's Δ = 2 dichotomy.
pub struct E11Dichotomy;

impl E11Dichotomy {
    fn config(cli: &Cli) -> e11::Config {
        if cli.full {
            e11::Config::full()
        } else {
            e11::Config::quick()
        }
    }
}

impl Experiment for E11Dichotomy {
    fn id(&self) -> &'static str {
        "E11"
    }
    fn claim(&self) -> &'static str {
        "Δ = 2: every LCL is O(log* n) or Ω(n) — both sides measured"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.trials.is_some() || cli.seed.is_some() {
            cli.progress("note: --trials/--seed have no effect on E11 (deterministic sweeps)");
        }
        let out = e11::run_traced(&Self::config(cli), sink);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!(
                "{}\n3-coloring best fit: {}\n2-coloring best fit: {}\n",
                e11::table(&out),
                out.fast_fit.name(),
                out.slow_fit.name()
            ),
            metrics: MetricsRegistry::default(),
        }
    }
}

/// E12: resilience — validity and rounds under the deterministic fault plane.
pub struct E12Resilience;

impl E12Resilience {
    fn config(cli: &Cli) -> e12::Config {
        let mut cfg = if cli.full {
            e12::Config::full()
        } else {
            e12::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.trials = t;
        }
        if let Some(s) = cli.seed {
            cfg.master_seed = s;
        }
        cfg
    }
}

impl Experiment for E12Resilience {
    fn id(&self) -> &'static str {
        "E12"
    }
    fn claim(&self) -> &'static str {
        "graceful degradation under message drops and crash-stop nodes"
    }
    fn caps(&self) -> Caps {
        Caps::TRACE_AND_CHECKPOINT
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        let cfg = Self::config(cli);
        let out = if sink.is_some() {
            e12::run_traced(&cfg, sink)
        } else {
            let checkpoint = cli.open_checkpoint();
            e12::run_checkpointed(&cfg, checkpoint.as_ref())
        };
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e12::table(&out)),
            metrics: out.metrics,
        }
    }
    fn fabric(&self, cli: &Cli) -> Option<Box<dyn FabricJob>> {
        Some(Box::new(Fabric12 {
            sweep: e12::fabric_sweep(&Self::config(cli)),
        }))
    }
}

/// E12's fabric decomposition: the core sweep plus the table rendering.
struct Fabric12 {
    sweep: e12::FabricSweep,
}

impl FabricJob for Fabric12 {
    fn sweep(&self) -> &dyn Sweep {
        &self.sweep
    }
    fn fold(&self, per_point: Vec<Vec<serde::Value>>) -> ExperimentOutput {
        let out = self.sweep.fold_units(per_point);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e12::table(&out)),
            metrics: out.metrics,
        }
    }
}

/// E13: self-healing — recovering faulty runs to complete valid labelings.
pub struct E13Recovery;

impl E13Recovery {
    fn config(cli: &Cli) -> e13::Config {
        let mut cfg = if cli.full {
            e13::Config::full()
        } else {
            e13::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.trials = t;
        }
        if let Some(s) = cli.seed {
            cfg.master_seed = s;
        }
        cfg
    }
}

impl Experiment for E13Recovery {
    fn id(&self) -> &'static str {
        "E13"
    }
    fn claim(&self) -> &'static str {
        "recovery of faulty runs to complete valid labelings"
    }
    fn caps(&self) -> Caps {
        Caps::TRACE_AND_CHECKPOINT
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        let cfg = Self::config(cli);
        let out = if sink.is_some() {
            e13::run_traced(&cfg, sink)
        } else {
            let checkpoint = cli.open_checkpoint();
            e13::run_checkpointed(&cfg, checkpoint.as_ref())
        };
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e13::table(&out)),
            metrics: out.metrics,
        }
    }
    fn fabric(&self, cli: &Cli) -> Option<Box<dyn FabricJob>> {
        Some(Box::new(Fabric13 {
            sweep: e13::fabric_sweep(&Self::config(cli)),
        }))
    }
}

/// E13's fabric decomposition: the core sweep plus the table rendering.
struct Fabric13 {
    sweep: e13::FabricSweep,
}

impl FabricJob for Fabric13 {
    fn sweep(&self) -> &dyn Sweep {
        &self.sweep
    }
    fn fold(&self, per_point: Vec<Vec<serde::Value>>) -> ExperimentOutput {
        let out = self.sweep.fold_units(per_point);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e13::table(&out)),
            metrics: out.metrics,
        }
    }
}

/// E14: adversary — worst-case fault plans found by deterministic tabu
/// search.
pub struct E14Adversary;

impl E14Adversary {
    fn config(cli: &Cli) -> e14::Config {
        let mut cfg = if cli.full {
            e14::Config::full()
        } else {
            e14::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.restarts = t;
        }
        if let Some(s) = cli.seed {
            cfg.master_seed = s;
        }
        cfg
    }

    /// Pin the best-found plans: one replayable artifact per grid point,
    /// under `results/adversaries/`. Only full sweeps pin (quick search
    /// effort is a smoke test, not a record), and only at the default
    /// restarts/seed (an overridden sweep would silently re-pin different
    /// plans under the same names).
    fn pin_artifacts(cli: &Cli, cfg: &e14::Config, out: &e14::Outcome14) {
        if !cli.full || cli.trials.is_some() || cli.seed.is_some() {
            return;
        }
        let dir = std::path::Path::new("results/adversaries");
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create `{}`: {err}", dir.display());
            std::process::exit(2);
        }
        for row in &out.rows {
            if row.error.is_some() {
                continue;
            }
            let path = dir.join(format!("e14_{}_{}.json", row.workload, row.objective));
            let mut text = e14::artifact_json(cfg, row);
            text.push('\n');
            if let Err(err) = std::fs::write(&path, text) {
                eprintln!("error: cannot write `{}`: {err}", path.display());
                std::process::exit(2);
            }
            cli.progress(&format!("pinned {}", path.display()));
        }
    }
}

impl Experiment for E14Adversary {
    fn id(&self) -> &'static str {
        "E14"
    }
    fn claim(&self) -> &'static str {
        "worst-case fault plans found by adversary search, replayable"
    }
    fn caps(&self) -> Caps {
        Caps::TRACE_AND_CHECKPOINT
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        let cfg = Self::config(cli);
        let out = if sink.is_some() {
            e14::run_traced(&cfg, sink)
        } else {
            let checkpoint = cli.open_checkpoint();
            e14::run_checkpointed(&cfg, checkpoint.as_ref())
        };
        Self::pin_artifacts(cli, &cfg, &out);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e14::table(&out)),
            metrics: out.metrics,
        }
    }
    fn fabric(&self, cli: &Cli) -> Option<Box<dyn FabricJob>> {
        let cfg = Self::config(cli);
        Some(Box::new(Fabric14 {
            sweep: e14::fabric_sweep(&cfg),
            cfg,
            cli: cli.clone(),
        }))
    }
}

/// E14's fabric decomposition. Keeps the resolved config and CLI around so
/// the fold can pin best-found plans exactly like the serial run does.
struct Fabric14 {
    sweep: e14::FabricSweep,
    cfg: e14::Config,
    cli: Cli,
}

impl FabricJob for Fabric14 {
    fn sweep(&self) -> &dyn Sweep {
        &self.sweep
    }
    fn fold(&self, per_point: Vec<Vec<serde::Value>>) -> ExperimentOutput {
        let out = self.sweep.fold_units(per_point);
        E14Adversary::pin_artifacts(&self.cli, &self.cfg, &out);
        ExperimentOutput {
            rows: out.rows.to_value(),
            human: format!("{}\n", e14::table(&out)),
            metrics: out.metrics,
        }
    }
}

/// A1: ablation of Theorem 10's schedule constants.
pub struct A1Ablation;

impl A1Ablation {
    fn config(cli: &Cli) -> a1::Config {
        let mut cfg = if cli.full {
            a1::Config::full()
        } else {
            a1::Config::quick()
        };
        if let Some(t) = cli.trials {
            cfg.seeds = t;
        }
        cfg
    }
}

impl Experiment for A1Ablation {
    fn id(&self) -> &'static str {
        "A1"
    }
    fn claim(&self) -> &'static str {
        "Theorem 10 constants: growth K and palette margin ablation"
    }
    fn default_config(&self, cli: &Cli) -> serde::Value {
        Self::config(cli).to_value()
    }
    fn run(&self, cli: &Cli, sink: Option<&mut dyn TraceSink>) -> ExperimentOutput {
        if cli.seed.is_some() {
            cli.progress("note: --seed has no effect on A1 (seeds derive from the grid)");
        }
        let cfg = Self::config(cli);
        let rows = a1::run_traced(&cfg, sink);
        ExperimentOutput {
            rows: rows.to_value(),
            human: format!("{}\n", a1::table(&rows, cfg.n, cfg.delta)),
            metrics: MetricsRegistry::default(),
        }
    }
}
