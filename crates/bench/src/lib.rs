//! Shared scaffolding for the experiment binaries.
//!
//! Every binary parses its command line through [`Cli::parse`]: `--full`
//! runs the EXPERIMENTS.md-scale sweep (without it, a laptop-seconds quick
//! sweep runs), `--json` emits the measured rows as a machine-readable
//! [`TrialReport`] envelope instead of the human tables, and `--trials N` /
//! `--seed N` override the configuration's batch size and master seed where
//! the experiment has those knobs. `--checkpoint PATH` makes sweeps that
//! support it resumable: finished trials are appended to a JSON-lines store
//! as they complete, and a rerun with the same seed and path skips them (a
//! binary without checkpoint support rejects the flag with exit status 2
//! rather than silently dropping resumability). `--trace PATH` streams
//! structured JSON-lines trace events (per-round engine telemetry, phase
//! spans, recovery attempts, histograms) to a file for the experiments that
//! support it — the same reject-with-status-2 contract applies elsewhere —
//! and `--quiet` suppresses progress lines on stderr. Unknown flags and
//! malformed values print the usage and exit nonzero, so a typo never
//! silently runs the default sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod registry;

use local_obs::{FileSink, MetricsDoc, MetricsRegistry};
use local_separation::checkpoint::Checkpoint;
use local_separation::trials::TrialReport;
use serde::{Serialize, Value};

/// Parsed command-line options shared by all `exp_*` binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cli {
    /// Run the EXPERIMENTS.md-scale sweep instead of the quick one.
    pub full: bool,
    /// Emit the JSON envelope instead of human tables.
    pub json: bool,
    /// Override for the experiment's trials/seeds-per-point knob.
    pub trials: Option<u64>,
    /// Override for the experiment's master seed.
    pub seed: Option<u64>,
    /// Path of the JSON-lines checkpoint store (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Path of the JSON-lines trace file (`--trace`).
    pub trace: Option<String>,
    /// Path of the canonical metrics document (`--metrics`). The run's
    /// merged [`local_obs::MetricsRegistry`] is written there as a
    /// `metrics/v1` JSON document, with per-run telemetry (resource sample,
    /// fabric worker census) in a `.telemetry.json` sibling so the
    /// canonical document stays byte-identical across thread counts.
    pub metrics: Option<String>,
    /// Suppress progress lines on stderr (`--quiet`).
    pub quiet: bool,
    /// Run the sweep through the crash-tolerant fabric with this many
    /// worker processes (`--workers`).
    pub workers: Option<u64>,
    /// Directory holding the fabric's per-worker journals (`--fabric-dir`).
    /// Optional for the coordinator (a temporary directory is used when
    /// absent); required for workers.
    pub fabric_dir: Option<String>,
    /// Serve as fabric worker for this slot instead of running the sweep
    /// (`--fabric-worker`; internal, appended by the coordinator).
    pub fabric_worker: Option<u64>,
    /// This worker's spawn attempt (`--fabric-attempt`; internal).
    pub fabric_attempt: u32,
}

/// Why parsing failed (or stopped): carried by [`Cli::try_parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was requested.
    Help,
    /// A real error: unknown flag, missing or malformed value.
    Bad(String),
}

fn usage(program: &str) -> String {
    format!(
        "usage: {program} [--full] [--json] [--quiet] [--trials N] [--seed N] \
         [--checkpoint PATH] [--trace PATH] [--metrics PATH] [--workers N] \
         [--fabric-dir DIR]"
    )
}

impl Cli {
    /// Parse `std::env::args()`, printing usage and exiting the process on
    /// `--help` (status 0) or on any parse error (status 2).
    pub fn parse() -> Cli {
        let mut args = std::env::args();
        let program = args.next().unwrap_or_else(|| "exp".to_string());
        match Cli::try_parse(args) {
            Ok(cli) => cli,
            Err(CliError::Help) => {
                println!("{}", usage(&program));
                std::process::exit(0);
            }
            Err(CliError::Bad(msg)) => {
                eprintln!("error: {msg}");
                eprintln!("{}", usage(&program));
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument list (no program name). Pure, for tests.
    ///
    /// # Errors
    ///
    /// [`CliError::Help`] on `--help`/`-h`; [`CliError::Bad`] on an unknown
    /// flag or a missing/malformed `--trials`/`--seed` value.
    pub fn try_parse<I>(args: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = Cli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help),
                "--full" => cli.full = true,
                "--json" => cli.json = true,
                "--trials" => cli.trials = Some(parse_count("--trials", args.next())?),
                "--seed" => cli.seed = Some(parse_count("--seed", args.next())?),
                "--checkpoint" => {
                    cli.checkpoint = Some(parse_path("--checkpoint", args.next())?);
                }
                "--trace" => cli.trace = Some(parse_path("--trace", args.next())?),
                "--metrics" => cli.metrics = Some(parse_path("--metrics", args.next())?),
                "--quiet" => cli.quiet = true,
                "--workers" => cli.workers = Some(parse_count("--workers", args.next())?),
                "--fabric-dir" => {
                    cli.fabric_dir = Some(parse_path("--fabric-dir", args.next())?);
                }
                "--fabric-worker" => {
                    cli.fabric_worker = Some(parse_count("--fabric-worker", args.next())?);
                }
                "--fabric-attempt" => {
                    cli.fabric_attempt =
                        u32::try_from(parse_count("--fabric-attempt", args.next())?)
                            .map_err(|_| CliError::Bad("--fabric-attempt too large".into()))?;
                }
                other => {
                    if let Some(v) = other.strip_prefix("--trials=") {
                        cli.trials = Some(parse_count("--trials", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--seed=") {
                        cli.seed = Some(parse_count("--seed", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--checkpoint=") {
                        cli.checkpoint = Some(parse_path("--checkpoint", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        cli.trace = Some(parse_path("--trace", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--metrics=") {
                        cli.metrics = Some(parse_path("--metrics", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--workers=") {
                        cli.workers = Some(parse_count("--workers", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--fabric-dir=") {
                        cli.fabric_dir = Some(parse_path("--fabric-dir", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--fabric-worker=") {
                        cli.fabric_worker =
                            Some(parse_count("--fabric-worker", Some(v.to_string()))?);
                    } else if let Some(v) = other.strip_prefix("--fabric-attempt=") {
                        cli.fabric_attempt =
                            u32::try_from(parse_count("--fabric-attempt", Some(v.to_string()))?)
                                .map_err(|_| CliError::Bad("--fabric-attempt too large".into()))?;
                    } else {
                        return Err(CliError::Bad(format!("unknown argument `{other}`")));
                    }
                }
            }
        }
        Ok(cli)
    }

    /// The mode string recorded in JSON reports.
    pub fn mode_name(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "quick"
        }
    }

    /// Print the standard experiment banner. Under `--json` it goes to
    /// stderr — stdout must carry nothing but the report envelope, but the
    /// banner still orients whoever is watching the terminal.
    pub fn banner(&self, id: &str, claim: &str) {
        let text = format!(
            "=== {id} — {claim} ===\nmode: {}\n",
            if self.full {
                "full"
            } else {
                "quick (pass --full for the EXPERIMENTS.md sweep)"
            }
        );
        if self.json {
            eprintln!("{text}");
        } else {
            println!("{text}");
        }
    }

    /// Open the checkpoint store named by `--checkpoint`, or `None` when the
    /// flag was not given. For binaries whose experiment supports resume.
    ///
    /// Exits with status 2 if the file cannot be opened — a sweep that
    /// cannot persist its progress should not pretend to be resumable.
    pub fn open_checkpoint(&self) -> Option<Checkpoint> {
        let path = self.checkpoint.as_deref()?;
        match Checkpoint::open(path) {
            Ok(ckpt) => Some(ckpt),
            Err(err) => {
                eprintln!("error: cannot open checkpoint `{path}`: {err}");
                std::process::exit(2);
            }
        }
    }

    /// Open the JSON-lines trace sink named by `--trace`, or `None` when the
    /// flag was not given. For binaries whose experiment supports tracing.
    ///
    /// Exits with status 2 if the file cannot be created — a run asked to
    /// record a trace must not silently run untraced.
    pub fn open_trace(&self) -> Option<FileSink> {
        let path = self.trace.as_deref()?;
        match FileSink::create(std::path::Path::new(path)) {
            Ok(sink) => Some(sink),
            Err(err) => {
                eprintln!("error: cannot create trace file `{path}`: {err}");
                std::process::exit(2);
            }
        }
    }

    /// A progress line on stderr, suppressed under `--quiet`.
    pub fn progress(&self, message: &str) {
        local_obs::progress(self.quiet, message);
    }

    /// Write the canonical metrics document to the path named by
    /// `--metrics` (no-op without the flag), plus a `.telemetry.json`
    /// sibling carrying the run's non-deterministic extras (`telemetry`
    /// key/value pairs — resource sample, fabric worker census). Keeping
    /// telemetry out of the canonical document is what lets CI compare the
    /// documents of serial, multi-threaded, and fabric runs byte-for-byte.
    ///
    /// Exits with status 2 if either file cannot be written — a run asked
    /// to record metrics must not silently drop them.
    pub fn emit_metrics(
        &self,
        experiment: &str,
        registry: &MetricsRegistry,
        telemetry: Vec<(String, Value)>,
    ) {
        let Some(path) = self.metrics.as_deref() else {
            return;
        };
        let doc = MetricsDoc {
            experiment: experiment.to_string(),
            mode: self.mode_name().to_string(),
            metrics: registry.clone(),
        };
        let text = format!(
            "{}\n",
            serde_json::to_string_pretty(&doc).expect("metrics doc serializes infallibly")
        );
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("error: cannot write metrics file `{path}`: {err}");
            std::process::exit(2);
        }
        let mut fields = vec![
            (
                "schema".to_string(),
                Value::String("telemetry/v1".to_string()),
            ),
            (
                "experiment".to_string(),
                Value::String(experiment.to_string()),
            ),
            ("mode".to_string(), Value::String(self.mode_name().into())),
        ];
        fields.extend(telemetry);
        let sibling = telemetry_sibling(path);
        let text = format!(
            "{}\n",
            serde_json::to_string_pretty(&Value::Object(fields))
                .expect("telemetry doc serializes infallibly")
        );
        if let Err(err) = std::fs::write(&sibling, text) {
            eprintln!("error: cannot write telemetry file `{sibling}`: {err}");
            std::process::exit(2);
        }
    }

    /// Print the experiment's measured rows as the standard JSON envelope.
    pub fn emit_json<R: Serialize + ?Sized>(&self, experiment: &str, rows: &R) {
        println!(
            "{}",
            TrialReport {
                experiment,
                mode: self.mode_name(),
                rows,
            }
            .to_json()
        );
    }

    /// The argument list a fabric coordinator forwards to its workers so
    /// they rebuild the identical experiment configuration. Orchestration
    /// flags (`--json`, `--workers`, `--checkpoint`, `--trace`,
    /// `--metrics`) deliberately stay behind — workers journal raw units,
    /// they do not report.
    pub fn worker_args(&self) -> Vec<String> {
        let mut args = vec!["--quiet".to_string()];
        if self.full {
            args.push("--full".to_string());
        }
        if let Some(t) = self.trials {
            args.push(format!("--trials={t}"));
        }
        if let Some(s) = self.seed {
            args.push(format!("--seed={s}"));
        }
        args
    }

    /// Report a typed runtime error and exit with status 2. Under `--json`
    /// the error goes to stdout as a machine-readable envelope (`kind` is a
    /// short tag like `scope_mismatch`), so pipelines see *why* the run
    /// failed instead of an empty stream; the human line always goes to
    /// stderr.
    pub fn fail(&self, experiment: &str, kind: &str, message: &str) -> ! {
        if self.json {
            let value = Value::Object(vec![
                (
                    "experiment".to_string(),
                    Value::String(experiment.to_string()),
                ),
                ("mode".to_string(), Value::String(self.mode_name().into())),
                (
                    "error".to_string(),
                    Value::Object(vec![
                        ("kind".to_string(), Value::String(kind.to_string())),
                        ("message".to_string(), Value::String(message.to_string())),
                    ]),
                ),
            ]);
            println!(
                "{}",
                serde_json::to_string(&value).expect("error envelope serializes")
            );
        }
        eprintln!("error: {message}");
        std::process::exit(2);
    }
}

/// The telemetry sibling of a metrics document path: `foo.json` →
/// `foo.telemetry.json`, anything without the `.json` suffix gets
/// `.telemetry.json` appended.
pub fn telemetry_sibling(path: &str) -> String {
    match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.telemetry.json"),
        None => format!("{path}.telemetry.json"),
    }
}

fn parse_path(flag: &str, value: Option<String>) -> Result<String, CliError> {
    let value = value.ok_or_else(|| CliError::Bad(format!("{flag} requires a path")))?;
    if value.is_empty() {
        return Err(CliError::Bad(format!("{flag} requires a non-empty path")));
    }
    Ok(value)
}

fn parse_count(flag: &str, value: Option<String>) -> Result<u64, CliError> {
    let value = value.ok_or_else(|| CliError::Bad(format!("{flag} requires a value")))?;
    value.parse::<u64>().map_err(|_| {
        CliError::Bad(format!(
            "{flag} expects a non-negative integer, got `{value}`"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::try_parse(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults_are_quick_human() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli, Cli::default());
        assert_eq!(cli.mode_name(), "quick");
    }

    #[test]
    fn flags_parse_in_any_order() {
        let cli = parse(&["--json", "--trials", "7", "--full", "--seed=42"]).unwrap();
        assert!(cli.full && cli.json);
        assert_eq!(cli.trials, Some(7));
        assert_eq!(cli.seed, Some(42));
        assert_eq!(cli.mode_name(), "full");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(matches!(parse(&["--fulll"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["extra"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(matches!(parse(&["--trials"]), Err(CliError::Bad(_))));
        assert!(matches!(
            parse(&["--trials", "many"]),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(parse(&["--seed", "-3"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--seed=1.5"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn checkpoint_path_parses_in_both_spellings() {
        let cli = parse(&["--checkpoint", "sweep.ckpt"]).unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("sweep.ckpt"));
        let cli = parse(&["--checkpoint=out/e13.jsonl", "--json"]).unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("out/e13.jsonl"));
        assert!(cli.json);
        assert_eq!(parse(&[]).unwrap().checkpoint, None);
    }

    #[test]
    fn checkpoint_without_a_path_is_an_error() {
        assert!(matches!(parse(&["--checkpoint"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--checkpoint="]), Err(CliError::Bad(_))));
    }

    #[test]
    fn open_checkpoint_absent_is_none() {
        assert!(Cli::default().open_checkpoint().is_none());
    }

    #[test]
    fn trace_path_parses_in_both_spellings() {
        let cli = parse(&["--trace", "run.jsonl"]).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("run.jsonl"));
        let cli = parse(&["--trace=out/e2.jsonl", "--quiet"]).unwrap();
        assert_eq!(cli.trace.as_deref(), Some("out/e2.jsonl"));
        assert!(cli.quiet);
        assert_eq!(parse(&[]).unwrap().trace, None);
        assert!(!parse(&[]).unwrap().quiet);
    }

    #[test]
    fn trace_without_a_path_is_an_error() {
        assert!(matches!(parse(&["--trace"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--trace="]), Err(CliError::Bad(_))));
    }

    #[test]
    fn open_trace_absent_is_none() {
        assert!(Cli::default().open_trace().is_none());
    }

    #[test]
    fn metrics_path_parses_in_both_spellings() {
        let cli = parse(&["--metrics", "m.json"]).unwrap();
        assert_eq!(cli.metrics.as_deref(), Some("m.json"));
        let cli = parse(&["--metrics=out/e13.metrics.json"]).unwrap();
        assert_eq!(cli.metrics.as_deref(), Some("out/e13.metrics.json"));
        assert_eq!(parse(&[]).unwrap().metrics, None);
        assert!(matches!(parse(&["--metrics"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--metrics="]), Err(CliError::Bad(_))));
    }

    #[test]
    fn telemetry_sibling_replaces_the_json_suffix() {
        assert_eq!(telemetry_sibling("m.json"), "m.telemetry.json");
        assert_eq!(
            telemetry_sibling("out/e13.metrics.json"),
            "out/e13.metrics.telemetry.json"
        );
        assert_eq!(telemetry_sibling("metrics"), "metrics.telemetry.json");
    }

    #[test]
    fn emit_metrics_without_the_flag_is_a_no_op() {
        // No path: must not write anywhere or exit.
        Cli::default().emit_metrics("E13", &MetricsRegistry::new(), Vec::new());
    }

    #[test]
    fn help_is_distinguished_from_errors() {
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
        assert_eq!(parse(&["-h"]), Err(CliError::Help));
    }

    #[test]
    fn fabric_flags_parse_in_both_spellings() {
        let cli = parse(&["--workers", "4", "--fabric-dir", "out/fab"]).unwrap();
        assert_eq!(cli.workers, Some(4));
        assert_eq!(cli.fabric_dir.as_deref(), Some("out/fab"));
        let cli = parse(&["--workers=2", "--fabric-dir=fab"]).unwrap();
        assert_eq!(cli.workers, Some(2));
        assert_eq!(cli.fabric_dir.as_deref(), Some("fab"));
        let cli = parse(&["--fabric-worker", "1", "--fabric-attempt", "3"]).unwrap();
        assert_eq!(cli.fabric_worker, Some(1));
        assert_eq!(cli.fabric_attempt, 3);
        let cli = parse(&["--fabric-worker=0", "--fabric-attempt=0"]).unwrap();
        assert_eq!(cli.fabric_worker, Some(0));
        assert_eq!(cli.fabric_attempt, 0);
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.workers, None);
        assert_eq!(cli.fabric_worker, None);
        assert_eq!(cli.fabric_attempt, 0);
    }

    #[test]
    fn fabric_flags_reject_malformed_values() {
        assert!(matches!(parse(&["--workers"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--workers", "x"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--fabric-dir"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--fabric-dir="]), Err(CliError::Bad(_))));
        assert!(matches!(
            parse(&["--fabric-worker", "-1"]),
            Err(CliError::Bad(_))
        ));
        assert!(matches!(
            parse(&["--fabric-attempt", "5000000000"]),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn worker_args_forward_config_not_orchestration() {
        let cli = parse(&[
            "--full",
            "--json",
            "--trials=9",
            "--seed=3",
            "--workers=4",
            "--trace=t.jsonl",
            "--metrics=m.json",
        ])
        .unwrap();
        let args = cli.worker_args();
        assert_eq!(args, vec!["--quiet", "--full", "--trials=9", "--seed=3"]);
        assert_eq!(Cli::default().worker_args(), vec!["--quiet"]);
    }
}
