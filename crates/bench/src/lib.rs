//! Shared scaffolding for the experiment binaries.
//!
//! Every binary accepts `--full` to run the EXPERIMENTS.md-scale sweep
//! (without it, a laptop-seconds quick sweep runs) and `--json` to emit the
//! measured rows as a machine-readable [`TrialReport`] envelope instead of
//! the human tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use local_separation::trials::TrialReport;
use serde::Serialize;

/// Whether `--full` was passed on the command line.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Whether `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// The mode string recorded in JSON reports.
pub fn mode_name() -> &'static str {
    if full_mode() {
        "full"
    } else {
        "quick"
    }
}

/// Print the standard experiment banner (suppressed under `--json`, which
/// must emit nothing but the report).
pub fn banner(id: &str, claim: &str) {
    if json_mode() {
        return;
    }
    println!("=== {id} — {claim} ===");
    println!(
        "mode: {}",
        if full_mode() {
            "full"
        } else {
            "quick (pass --full for the EXPERIMENTS.md sweep)"
        }
    );
    println!();
}

/// Print the experiment's measured rows as the standard JSON envelope.
pub fn emit_json<R: Serialize + ?Sized>(experiment: &str, rows: &R) {
    println!(
        "{}",
        TrialReport {
            experiment,
            mode: mode_name(),
            rows,
        }
        .to_json()
    );
}
