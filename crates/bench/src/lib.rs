//! Shared scaffolding for the experiment binaries.
//!
//! Every binary accepts `--full` to run the EXPERIMENTS.md-scale sweep;
//! without it, a laptop-seconds quick sweep runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Whether `--full` was passed on the command line.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Print the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} — {claim} ===");
    println!(
        "mode: {}",
        if full_mode() {
            "full"
        } else {
            "quick (pass --full for the EXPERIMENTS.md sweep)"
        }
    );
    println!();
}
