//! E14: adversary — worst-case fault plans found by deterministic tabu
//! search, with graceful-degradation reports and replayable artifacts.

fn main() {
    local_bench::registry::main_for("E14");
}
