//! E7: the Theorem 6 black-box speedup.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e7_speedup as e7;

fn main() {
    banner(
        "E7",
        "greedy-by-ID coloring: Θ(n) before, O(log* n + poly Δ) after",
    );
    let cfg = if full_mode() {
        e7::Config::full()
    } else {
        e7::Config::quick()
    };
    let rows = e7::run(&cfg);
    if json_mode() {
        emit_json("E7", rows.as_slice());
    } else {
        println!("{}", e7::table(&rows));
    }
}
