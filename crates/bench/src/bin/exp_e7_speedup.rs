//! E7: the Theorem 6 black-box speedup.

fn main() {
    local_bench::registry::main_for("E7");
}
