//! E7: the Theorem 6 black-box speedup.

use local_bench::Cli;
use local_separation::experiments::e7_speedup as e7;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E7");
    cli.reject_trace("E7");
    cli.banner(
        "E7",
        "greedy-by-ID coloring: Θ(n) before, O(log* n + poly Δ) after",
    );
    if cli.trials.is_some() || cli.seed.is_some() {
        cli.progress("note: --trials/--seed have no effect on E7 (deterministic algorithms)");
    }
    let cfg = if cli.full {
        e7::Config::full()
    } else {
        e7::Config::quick()
    };
    let rows = e7::run(&cfg);
    if cli.json {
        cli.emit_json("E7", rows.as_slice());
    } else {
        println!("{}", e7::table(&rows));
    }
}
