//! E6: Theorem 3 derandomization over exhaustive toy instance spaces.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e6_derand as e6;

fn main() {
    banner(
        "E6",
        "Det(n, Δ) ≤ Rand(2^(n²), Δ), machine-verified at toy scale",
    );
    let cfg = if full_mode() {
        e6::Config::full()
    } else {
        e6::Config::quick()
    };
    let rows = e6::run(&cfg);
    if json_mode() {
        emit_json("E6", rows.as_slice());
    } else {
        println!("{}", e6::table(&rows));
    }
}
