//! E6: Theorem 3 derandomization over exhaustive toy instance spaces.

fn main() {
    local_bench::registry::main_for("E6");
}
