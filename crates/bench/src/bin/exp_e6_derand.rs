//! E6: Theorem 3 derandomization over exhaustive toy instance spaces.

use local_bench::Cli;
use local_separation::experiments::e6_derand as e6;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E6");
    cli.reject_trace("E6");
    cli.banner(
        "E6",
        "Det(n, Δ) ≤ Rand(2^(n²), Δ), machine-verified at toy scale",
    );
    if cli.trials.is_some() || cli.seed.is_some() {
        cli.progress("note: --trials/--seed have no effect on E6 (exhaustive enumeration)");
    }
    let cfg = if cli.full {
        e6::Config::full()
    } else {
        e6::Config::quick()
    };
    let rows = e6::run(&cfg);
    if cli.json {
        cli.emit_json("E6", rows.as_slice());
    } else {
        println!("{}", e6::table(&rows));
    }
}
