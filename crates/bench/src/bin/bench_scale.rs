//! Large-`n` scaling probe for the round engine — the data source behind
//! `BENCH_engine.json` and the CI large-n smoke job.
//!
//! Unlike the criterion benches (statistical, small `n`), this binary does a
//! handful of timed single runs at 1M–100M vertices and reports a JSON row:
//! mean wall-clock per run, peak RSS (`VmHWM`), and an order-independent
//! fingerprint of the outputs so shard-count invariance is checkable from the
//! command line:
//!
//! ```text
//! bench_scale --workload flood --n 1000000 --repeat 5
//! bench_scale --workload luby  --n 10000000 --d 3 --shards 4
//! ```

use local_algorithms::mis::{luby_mis, luby_mis_with_shards, MisOutcome};
use local_graphs::{gen, Graph};
use local_model::{Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol};
use std::time::Instant;

/// Floods the max for a fixed horizon, then halts — pure engine overhead
/// (same protocol as the criterion `engine_flood_20_rounds` group).
struct Flood {
    horizon: u32,
    value: u64,
}
impl NodeProgram for Flood {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        for (_, &m) in io.received() {
            self.value = self.value.max(m);
        }
        if round >= self.horizon {
            Action::Halt(self.value)
        } else {
            io.broadcast(self.value);
            Action::Continue
        }
    }
}
struct FloodProtocol {
    horizon: u32,
}
impl Protocol for FloodProtocol {
    type Node = Flood;
    fn create(&self, init: &NodeInit<'_>) -> Flood {
        Flood {
            horizon: self.horizon,
            value: init.id.unwrap_or(0),
        }
    }
}

/// FNV-1a over a `u64` stream — stable output fingerprint.
struct Fnv(u64);
impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct RunResult {
    rounds: u32,
    fingerprint: u64,
}

fn run_flood(g: &Graph, shards: usize, horizon: u32) -> RunResult {
    let mut engine = Engine::new(g, Mode::deterministic());
    if shards > 0 {
        engine = engine.with_shards(shards);
    }
    let run = engine
        .execute(&ExecSpec::default(), &FloodProtocol { horizon })
        .into_run(100_000)
        .expect("flood halts at its horizon");
    let mut h = Fnv::new();
    for &o in &run.outputs {
        h.write(o);
    }
    RunResult {
        rounds: run.rounds,
        fingerprint: h.0,
    }
}

fn run_luby(g: &Graph, shards: usize, seed: u64) -> RunResult {
    let out = luby_mis_sharded(g, seed, shards);
    let mut h = Fnv::new();
    for &b in &out.in_set {
        h.write(u64::from(b));
    }
    RunResult {
        rounds: out.rounds,
        fingerprint: h.0,
    }
}

/// `luby_mis` with an optional shard-count override (0 = engine default).
fn luby_mis_sharded(g: &Graph, seed: u64, shards: usize) -> MisOutcome {
    if shards == 0 {
        luby_mis(g, seed, 10_000).expect("luby halts")
    } else {
        luby_mis_with_shards(g, seed, 10_000, shards).expect("luby halts")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = arg(&args, "--workload").unwrap_or_else(|| "flood".into());
    let n: usize = arg(&args, "--n")
        .unwrap_or_else(|| "1000000".into())
        .parse()
        .expect("--n takes a vertex count");
    let d: usize = arg(&args, "--d")
        .unwrap_or_else(|| "3".into())
        .parse()
        .expect("--d takes a degree");
    let repeat: usize = arg(&args, "--repeat")
        .unwrap_or_else(|| "3".into())
        .parse()
        .expect("--repeat takes a count");
    let shards: usize = arg(&args, "--shards")
        .unwrap_or_else(|| "0".into())
        .parse()
        .expect("--shards takes a count (0 = auto)");
    let horizon: u32 = arg(&args, "--rounds")
        .unwrap_or_else(|| "20".into())
        .parse()
        .expect("--rounds takes a horizon");
    let seed: u64 = arg(&args, "--seed")
        .unwrap_or_else(|| "1".into())
        .parse()
        .expect("--seed takes a u64");

    let gen_start = Instant::now();
    let g = match workload.as_str() {
        "flood" => gen::stream::cycle(n),
        "luby" => gen::stream::circulant(n, d).expect("feasible (n, d)"),
        other => panic!("unknown workload {other:?} (expected flood|luby)"),
    };
    let gen_ns = gen_start.elapsed().as_nanos();

    let mut times = Vec::with_capacity(repeat);
    let mut result = None;
    for _ in 0..repeat {
        let t = Instant::now();
        let r = match workload.as_str() {
            "flood" => run_flood(&g, shards, horizon),
            _ => run_luby(&g, shards, seed),
        };
        times.push(t.elapsed().as_nanos() as u64);
        if let Some(prev) = &result {
            let prev: &RunResult = prev;
            assert_eq!(
                prev.fingerprint, r.fingerprint,
                "same seed must reproduce bit-identically"
            );
        }
        result = Some(r);
    }
    let result = result.expect("at least one run");
    let mean_ns = times.iter().sum::<u64>() / times.len() as u64;
    let min_ns = *times.iter().min().expect("non-empty");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!(
        "{{\"workload\":\"{workload}\",\"n\":{n},\"d\":{d},\"shards\":{shards},\"threads\":{threads},\"repeat\":{repeat},\"gen_ns\":{gen_ns},\"mean_ns\":{mean_ns},\"min_ns\":{min_ns},\"rounds\":{rounds},\"fingerprint\":\"{fp:016x}\",\"peak_rss_bytes\":{rss}}}",
        rounds = result.rounds,
        fp = result.fingerprint,
        rss = peak_rss_bytes(),
    );
}
