//! E10: the indistinguishability principle, counted.

use local_bench::Cli;
use local_separation::experiments::e10_indistinguishability as e10;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E10");
    cli.reject_trace("E10");
    cli.banner(
        "E10",
        "below half the girth, a Δ-regular graph has ONE radius-t view = the tree's",
    );
    if cli.trials.is_some() || cli.seed.is_some() {
        cli.progress("note: --trials/--seed have no effect on E10 (exact view census)");
    }
    let cfg = if cli.full {
        e10::Config::full()
    } else {
        e10::Config::quick()
    };
    let (rows, girth) = e10::run(&cfg);
    if cli.json {
        cli.emit_json("E10", rows.as_slice());
    } else {
        println!("{}", e10::table(&rows, cfg.delta, girth));
    }
}
