//! E10: the indistinguishability principle, counted.

fn main() {
    local_bench::registry::main_for("E10");
}
