//! E10: the indistinguishability principle, counted.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e10_indistinguishability as e10;

fn main() {
    banner(
        "E10",
        "below half the girth, a Δ-regular graph has ONE radius-t view = the tree's",
    );
    let cfg = if full_mode() {
        e10::Config::full()
    } else {
        e10::Config::quick()
    };
    let (rows, girth) = e10::run(&cfg);
    if json_mode() {
        emit_json("E10", rows.as_slice());
    } else {
        println!("{}", e10::table(&rows, cfg.delta, girth));
    }
}
