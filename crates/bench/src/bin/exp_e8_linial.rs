//! E8: Linial's coloring — Theorem 1 shrink and Theorem 2 convergence.

use local_bench::Cli;
use local_separation::experiments::e8_linial as e8;
use serde::Serialize;

/// E8's two measured sections, combined for the JSON report.
#[derive(Serialize)]
struct Sections {
    shrink: Vec<e8::ShrinkRow>,
    convergence: Vec<e8::ConvergenceRow>,
}

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E8");
    cli.reject_trace("E8");
    cli.banner(
        "E8",
        "one-round palette shrink and O(log* n) convergence to β·Δ²",
    );
    if cli.trials.is_some() || cli.seed.is_some() {
        cli.progress("note: --trials/--seed have no effect on E8 (deterministic algorithms)");
    }
    let cfg = if cli.full {
        e8::Config::full()
    } else {
        e8::Config::quick()
    };
    let (shrink, conv) = e8::run(&cfg);
    if cli.json {
        cli.emit_json(
            "E8",
            &Sections {
                shrink,
                convergence: conv,
            },
        );
        return;
    }
    println!("{}", e8::shrink_table(&shrink));
    println!("{}", e8::convergence_table(&conv));
}
