//! E8: Linial's coloring — Theorem 1 shrink and Theorem 2 convergence.

fn main() {
    local_bench::registry::main_for("E8");
}
