//! E8: Linial's coloring — Theorem 1 shrink and Theorem 2 convergence.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e8_linial as e8;
use serde::Serialize;

/// E8's two measured sections, combined for the JSON report.
#[derive(Serialize)]
struct Sections {
    shrink: Vec<e8::ShrinkRow>,
    convergence: Vec<e8::ConvergenceRow>,
}

fn main() {
    banner(
        "E8",
        "one-round palette shrink and O(log* n) convergence to β·Δ²",
    );
    let cfg = if full_mode() {
        e8::Config::full()
    } else {
        e8::Config::quick()
    };
    let (shrink, conv) = e8::run(&cfg);
    if json_mode() {
        emit_json(
            "E8",
            &Sections {
                shrink,
                convergence: conv,
            },
        );
        return;
    }
    println!("{}", e8::shrink_table(&shrink));
    println!("{}", e8::convergence_table(&conv));
}
