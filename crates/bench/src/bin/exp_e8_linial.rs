//! E8: Linial's coloring — Theorem 1 shrink and Theorem 2 convergence.

use local_bench::{banner, full_mode};
use local_separation::experiments::e8_linial as e8;

fn main() {
    banner("E8", "one-round palette shrink and O(log* n) convergence to β·Δ²");
    let cfg = if full_mode() {
        e8::Config::full()
    } else {
        e8::Config::quick()
    };
    let (shrink, conv) = e8::run(&cfg);
    println!("{}", e8::shrink_table(&shrink));
    println!("{}", e8::convergence_table(&conv));
}
