//! E3: Theorem 11 — per-phase rounds and the shattered set for constant Δ.

use local_bench::Cli;
use local_separation::experiments::e3_theorem11 as e3;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E3");
    cli.reject_trace("E3");
    cli.banner(
        "E3",
        "Theorem 11 profile: setup/phase rounds and S components",
    );
    let mut cfg = if cli.full {
        e3::Config::full()
    } else {
        e3::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E3 (seeds derive from n)");
    }
    let rows = e3::run(&cfg);
    if cli.json {
        cli.emit_json("E3", rows.as_slice());
    } else {
        println!("{}", e3::table(&rows, cfg.delta));
    }
}
