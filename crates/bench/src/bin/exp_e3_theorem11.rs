//! E3: Theorem 11 — per-phase rounds and the shattered set for constant Δ.

use local_bench::{banner, full_mode};
use local_separation::experiments::e3_theorem11 as e3;

fn main() {
    banner("E3", "Theorem 11 profile: setup/phase rounds and S components");
    let cfg = if full_mode() {
        e3::Config::full()
    } else {
        e3::Config::quick()
    };
    let rows = e3::run(&cfg);
    println!("{}", e3::table(&rows, cfg.delta));
}
