//! E3: Theorem 11 — per-phase rounds and the shattered set for constant Δ.

fn main() {
    local_bench::registry::main_for("E3");
}
