//! E3: Theorem 11 — per-phase rounds and the shattered set for constant Δ.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e3_theorem11 as e3;

fn main() {
    banner(
        "E3",
        "Theorem 11 profile: setup/phase rounds and S components",
    );
    let cfg = if full_mode() {
        e3::Config::full()
    } else {
        e3::Config::quick()
    };
    let rows = e3::run(&cfg);
    if json_mode() {
        emit_json("E3", rows.as_slice());
    } else {
        println!("{}", e3::table(&rows, cfg.delta));
    }
}
