//! `adversary_replay`: replay pinned E14 adversary artifacts byte-for-byte.
//!
//! Reads every `*.json` under `results/adversaries/` (or the files given as
//! arguments), re-evaluates each embedded [`FaultPlan`] against its fixed
//! E14 workload, and re-renders the whole artifact from the fresh
//! evaluation. Exit status 0 when every artifact reproduces byte-for-byte,
//! 1 when any pinned objective or report drifted, 2 on unreadable or
//! malformed input. This is the CI gate that keeps the pinned worst-case
//! plans honest: a change to the engine, the recovery driver, or the JSON
//! writers that alters a pinned plan's score fails loudly instead of
//! silently invalidating EXPERIMENTS.md.

use local_model::FaultPlan;
use local_separation::adversary::Objective;
use local_separation::experiments::e14_adversary as e14;
use local_separation::workloads::static_name;
use serde::Deserialize;
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: adversary_replay [--list-workloads] [ARTIFACT.json ...]");
        println!("(no arguments: replay every *.json under results/adversaries/)");
        return;
    }
    // CI iterates the catalog through this instead of hardcoding names.
    if args.iter().any(|a| a == "--list-workloads") {
        for name in local_separation::workloads::NAMES {
            println!("{name}");
        }
        return;
    }
    let files = if args.is_empty() {
        default_artifacts()
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };
    if files.is_empty() {
        eprintln!("error: no artifacts to replay (results/adversaries/ is empty or missing)");
        std::process::exit(2);
    }
    let mut drifted = 0usize;
    for path in &files {
        match replay(path) {
            Ok(score) => println!("ok: {} (score {score})", path.display()),
            Err(ReplayError::Unreadable(msg)) => {
                eprintln!("error: {}: {msg}", path.display());
                std::process::exit(2);
            }
            Err(ReplayError::Drifted(msg)) => {
                eprintln!("DRIFT: {}: {msg}", path.display());
                drifted += 1;
            }
        }
    }
    if drifted > 0 {
        eprintln!("{drifted} of {} artifact(s) drifted", files.len());
        std::process::exit(1);
    }
    println!("{} artifact(s) replay byte-identically", files.len());
}

/// Every `*.json` under the default pin directory, in name order.
fn default_artifacts() -> Vec<PathBuf> {
    let dir = Path::new("results/adversaries");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

enum ReplayError {
    /// Missing file or malformed artifact: exit 2, not a drift.
    Unreadable(String),
    /// The replay disagrees with the pinned bytes: the real failure.
    Drifted(String),
}

fn replay(path: &Path) -> Result<u64, ReplayError> {
    let bad = |msg: String| ReplayError::Unreadable(msg);
    let text = std::fs::read_to_string(path).map_err(|e| bad(e.to_string()))?;
    let pinned = text.trim_end_matches('\n');
    let value: serde::Value =
        serde_json::from_str(pinned).map_err(|e| bad(format!("not JSON: {e}")))?;
    let field_str = |name: &str| -> Result<String, ReplayError> {
        Ok(value
            .field(name)
            .and_then(serde::Value::as_str)
            .map_err(|e| bad(e.to_string()))?
            .to_string())
    };
    let workload = field_str("workload")?;
    let workload =
        static_name(&workload).ok_or_else(|| bad(format!("unknown workload `{workload}`")))?;
    let objective_name = field_str("objective")?;
    let objective = Objective::from_name(&objective_name)
        .ok_or_else(|| bad(format!("unknown objective `{objective_name}`")))?;
    let search = value.field("search").map_err(|e| bad(e.to_string()))?;
    let restart = search
        .field("restart")
        .and_then(u64::from_value)
        .map_err(|e| bad(e.to_string()))?;
    let search_seed = search
        .field("search_seed")
        .and_then(u64::from_value)
        .map_err(|e| bad(e.to_string()))?;
    let pinned_score = value
        .field("score")
        .and_then(u64::from_value)
        .map_err(|e| bad(e.to_string()))?;
    let plan = value
        .field("plan")
        .and_then(FaultPlan::from_value)
        .map_err(|e| bad(format!("bad plan: {e}")))?;

    // Re-run the pinned plan against the fixed workload and re-render the
    // artifact from scratch. Artifacts are pinned by `--full` sweeps at the
    // default restarts/seed, so the full config is the replay config.
    let cfg = e14::Config::full();
    let (eval, report_json) = e14::evaluate_plan(workload, &plan, &cfg.policy)
        .ok_or_else(|| bad(format!("unknown workload `{workload}`")))?;
    let score = objective.score(&eval);
    if score != pinned_score {
        return Err(ReplayError::Drifted(format!(
            "objective drifted: pinned {pinned_score}, replayed {score}"
        )));
    }
    let row = e14::Row {
        workload,
        objective: objective_name,
        restarts: cfg.restarts,
        panicked: 0,
        panic_messages: Vec::new(),
        error: None,
        best_restart: restart,
        best_search_seed: search_seed,
        best_objective: score,
        radius: eval.radius,
        degraded: eval.degraded,
        breaches: eval.breaches,
        violations: eval.violations,
        crashed: eval.crashed,
        cut: eval.cut,
        accepted: 0,
        evaluations: 0,
        plan_json: serde_json::to_string(&plan).expect("plan serializes"),
        report_json,
    };
    let rendered = e14::artifact_json(&cfg, &row);
    if rendered != pinned {
        return Err(ReplayError::Drifted(
            "artifact bytes drifted (evaluation or report no longer reproduces)".to_string(),
        ));
    }
    Ok(score)
}
