//! E5: failure decay of truncated sinkless orientation.

fn main() {
    local_bench::registry::main_for("E5");
}
