//! E5: failure decay of truncated sinkless orientation.

use local_bench::Cli;
use local_separation::experiments::e5_truncation as e5;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E5");
    cli.reject_trace("E5");
    cli.banner(
        "E5",
        "sink probability vs round budget (round elimination, run forward)",
    );
    let mut cfg = if cli.full {
        e5::Config::full()
    } else {
        e5::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E5 (seeds derive from the phase grid)");
    }
    let rows = e5::run(&cfg);
    if cli.json {
        cli.emit_json("E5", rows.as_slice());
    } else {
        println!("{}", e5::table(&rows, cfg.delta));
    }
}
