//! E5: failure decay of truncated sinkless orientation.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e5_truncation as e5;

fn main() {
    banner(
        "E5",
        "sink probability vs round budget (round elimination, run forward)",
    );
    let cfg = if full_mode() {
        e5::Config::full()
    } else {
        e5::Config::quick()
    };
    let rows = e5::run(&cfg);
    if json_mode() {
        emit_json("E5", rows.as_slice());
    } else {
        println!("{}", e5::table(&rows, cfg.delta));
    }
}
