//! E12: resilience — validity and rounds under the deterministic fault plane.

use local_bench::Cli;
use local_obs::TraceSink;
use local_separation::experiments::e12_resilience as e12;

fn main() {
    let cli = Cli::parse();
    cli.banner(
        "E12",
        "graceful degradation under message drops and crash-stop nodes",
    );
    let mut cfg = if cli.full {
        e12::Config::full()
    } else {
        e12::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.trials = t;
    }
    if let Some(s) = cli.seed {
        cfg.master_seed = s;
    }
    if cli.trace.is_some() && cli.checkpoint.is_some() {
        eprintln!("error: --trace and --checkpoint are mutually exclusive on E12");
        std::process::exit(2);
    }
    let out = if let Some(mut sink) = cli.open_trace() {
        e12::run_traced(&cfg, Some(&mut sink as &mut dyn TraceSink))
    } else {
        let checkpoint = cli.open_checkpoint();
        e12::run_checkpointed(&cfg, checkpoint.as_ref())
    };
    if cli.json {
        cli.emit_json("E12", out.rows.as_slice());
        return;
    }
    println!("{}", e12::table(&out));
}
