//! E12: resilience — validity and rounds under the deterministic fault plane.

fn main() {
    local_bench::registry::main_for("E12");
}
