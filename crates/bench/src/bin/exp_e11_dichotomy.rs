//! E11: Theorem 7's Δ = 2 dichotomy.

fn main() {
    local_bench::registry::main_for("E11");
}
