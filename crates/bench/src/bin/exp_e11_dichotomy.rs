//! E11: Theorem 7's Δ = 2 dichotomy.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e11_dichotomy as e11;

fn main() {
    banner(
        "E11",
        "Δ = 2: every LCL is O(log* n) or Ω(n) — both sides measured",
    );
    let cfg = if full_mode() {
        e11::Config::full()
    } else {
        e11::Config::quick()
    };
    let out = e11::run(&cfg);
    if json_mode() {
        emit_json("E11", out.rows.as_slice());
        return;
    }
    println!("{}", e11::table(&out));
    println!("3-coloring best fit: {}", out.fast_fit.name());
    println!("2-coloring best fit: {}", out.slow_fit.name());
}
