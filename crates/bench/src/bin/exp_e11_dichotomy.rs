//! E11: Theorem 7's Δ = 2 dichotomy.

use local_bench::Cli;
use local_separation::experiments::e11_dichotomy as e11;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E11");
    cli.reject_trace("E11");
    cli.banner(
        "E11",
        "Δ = 2: every LCL is O(log* n) or Ω(n) — both sides measured",
    );
    if cli.trials.is_some() || cli.seed.is_some() {
        cli.progress("note: --trials/--seed have no effect on E11 (deterministic sweeps)");
    }
    let cfg = if cli.full {
        e11::Config::full()
    } else {
        e11::Config::quick()
    };
    let out = e11::run(&cfg);
    if cli.json {
        cli.emit_json("E11", out.rows.as_slice());
        return;
    }
    println!("{}", e11::table(&out));
    println!("3-coloring best fit: {}", out.fast_fit.name());
    println!("2-coloring best fit: {}", out.slow_fit.name());
}
