//! E2: Theorem 10 shattering — bad-component sizes vs the Δ⁴·log n bound.

fn main() {
    local_bench::registry::main_for("E2");
}
