//! E2: Theorem 10 shattering — bad-component sizes vs the Δ⁴·log n bound.

use local_bench::Cli;
use local_obs::TraceSink;
use local_separation::experiments::e2_shattering as e2;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E2");
    cli.banner("E2", "bad components after Phase 1 are O(Δ⁴ log n)");
    let mut cfg = if cli.full {
        e2::Config::full()
    } else {
        e2::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E2 (seeds derive from n)");
    }
    let mut trace = cli.open_trace();
    let rows = e2::run_traced(&cfg, trace.as_mut().map(|sink| sink as &mut dyn TraceSink));
    if cli.json {
        cli.emit_json("E2", rows.as_slice());
    } else {
        println!("{}", e2::table(&rows, cfg.delta));
    }
}
