//! E2: Theorem 10 shattering — bad-component sizes vs the Δ⁴·log n bound.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e2_shattering as e2;

fn main() {
    banner("E2", "bad components after Phase 1 are O(Δ⁴ log n)");
    let cfg = if full_mode() {
        e2::Config::full()
    } else {
        e2::Config::quick()
    };
    let rows = e2::run(&cfg);
    if json_mode() {
        emit_json("E2", rows.as_slice());
    } else {
        println!("{}", e2::table(&rows, cfg.delta));
    }
}
