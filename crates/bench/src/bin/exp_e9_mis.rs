//! E9: the MIS landscape — Luby vs deterministic vs shattering.

use local_bench::Cli;
use local_separation::experiments::e9_mis as e9;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E9");
    cli.reject_trace("E9");
    cli.banner(
        "E9",
        "MIS: Luby Θ(log n) vs Det O(Δ²+log* n) vs Ghaffari shattering",
    );
    let mut cfg = if cli.full {
        e9::Config::full()
    } else {
        e9::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E9 (seeds derive from n)");
    }
    let out = e9::run(&cfg);
    if cli.json {
        cli.emit_json("E9", out.rows.as_slice());
        return;
    }
    println!("{}", e9::table(&out, cfg.delta));
    println!("Luby best fit: {}", out.luby_fit.name());
    println!("Det best fit:  {}", out.det_fit.name());
}
