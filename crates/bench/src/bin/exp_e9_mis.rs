//! E9: the MIS landscape — Luby vs deterministic vs shattering.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e9_mis as e9;

fn main() {
    banner(
        "E9",
        "MIS: Luby Θ(log n) vs Det O(Δ²+log* n) vs Ghaffari shattering",
    );
    let cfg = if full_mode() {
        e9::Config::full()
    } else {
        e9::Config::quick()
    };
    let out = e9::run(&cfg);
    if json_mode() {
        emit_json("E9", out.rows.as_slice());
        return;
    }
    println!("{}", e9::table(&out, cfg.delta));
    println!("Luby best fit: {}", out.luby_fit.name());
    println!("Det best fit:  {}", out.det_fit.name());
}
