//! E9: the MIS landscape — Luby vs deterministic vs shattering.

fn main() {
    local_bench::registry::main_for("E9");
}
