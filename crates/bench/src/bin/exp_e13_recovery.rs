//! E13: self-healing — recovering faulty runs to complete valid labelings.

use local_bench::Cli;
use local_obs::TraceSink;
use local_separation::experiments::e13_recovery as e13;

fn main() {
    let cli = Cli::parse();
    cli.banner("E13", "recovery of faulty runs to complete valid labelings");
    let mut cfg = if cli.full {
        e13::Config::full()
    } else {
        e13::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.trials = t;
    }
    if let Some(s) = cli.seed {
        cfg.master_seed = s;
    }
    if cli.trace.is_some() && cli.checkpoint.is_some() {
        eprintln!("error: --trace and --checkpoint are mutually exclusive on E13");
        std::process::exit(2);
    }
    let out = if let Some(mut sink) = cli.open_trace() {
        e13::run_traced(&cfg, Some(&mut sink as &mut dyn TraceSink))
    } else {
        let checkpoint = cli.open_checkpoint();
        e13::run_checkpointed(&cfg, checkpoint.as_ref())
    };
    if cli.json {
        cli.emit_json("E13", out.rows.as_slice());
        return;
    }
    println!("{}", e13::table(&out));
}
