//! E13: self-healing — recovering faulty runs to complete valid labelings.

use local_bench::Cli;
use local_separation::experiments::e13_recovery as e13;

fn main() {
    let cli = Cli::parse();
    cli.banner("E13", "recovery of faulty runs to complete valid labelings");
    let mut cfg = if cli.full {
        e13::Config::full()
    } else {
        e13::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.trials = t;
    }
    if let Some(s) = cli.seed {
        cfg.master_seed = s;
    }
    let checkpoint = cli.open_checkpoint();
    let out = e13::run_checkpointed(&cfg, checkpoint.as_ref());
    if cli.json {
        cli.emit_json("E13", out.rows.as_slice());
        return;
    }
    println!("{}", e13::table(&out));
}
