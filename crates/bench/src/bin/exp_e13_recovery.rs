//! E13: self-healing — recovering faulty runs to complete valid labelings.

fn main() {
    local_bench::registry::main_for("E13");
}
