//! E4: the zero-round lower bound — per-edge failure ≥ 1/Δ².

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e4_zero_round as e4;

fn main() {
    banner(
        "E4",
        "every 0-round sinkless coloring fails with prob ≥ 1/Δ²",
    );
    let cfg = if full_mode() {
        e4::Config::full()
    } else {
        e4::Config::quick()
    };
    let rows = e4::run(&cfg);
    if json_mode() {
        emit_json("E4", rows.as_slice());
    } else {
        println!("{}", e4::table(&rows));
    }
}
