//! E4: the zero-round lower bound — per-edge failure ≥ 1/Δ².

use local_bench::Cli;
use local_separation::experiments::e4_zero_round as e4;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E4");
    cli.reject_trace("E4");
    cli.banner(
        "E4",
        "every 0-round sinkless coloring fails with prob ≥ 1/Δ²",
    );
    let mut cfg = if cli.full {
        e4::Config::full()
    } else {
        e4::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.trials = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E4 (seeds derive from the strategy grid)");
    }
    let rows = e4::run(&cfg);
    if cli.json {
        cli.emit_json("E4", rows.as_slice());
    } else {
        println!("{}", e4::table(&rows));
    }
}
