//! E4: the zero-round lower bound — per-edge failure ≥ 1/Δ².

fn main() {
    local_bench::registry::main_for("E4");
}
