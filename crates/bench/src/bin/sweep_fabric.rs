//! `sweep_fabric EXPERIMENT [flags]` — run a fabric-capable experiment's
//! sweep through the crash-tolerant coordinator/worker fabric.
//!
//! A thin multiplexer over the registry: `sweep_fabric E13 --workers 4`
//! behaves exactly like `exp_e13_recovery --workers 4`, but one binary
//! serves every fabric-capable experiment, which is what the chaos CI job
//! and the kill-a-worker walkthrough drive. The experiment id is also the
//! spawn prefix, so respawned workers re-enter the same experiment.

use local_bench::{registry, Cli, CliError};

fn usage(program: &str) -> String {
    format!(
        "usage: {program} EXPERIMENT [--workers N] [--full] [--json] [--quiet] \
         [--trials N] [--seed N] [--trace PATH] [--fabric-dir DIR]\n\
         \n\
         EXPERIMENT is a fabric-capable id (E12, E13, E14).\n\
         Without --workers the sweep runs serially in this process."
    )
}

fn main() {
    let mut args = std::env::args();
    let program = args.next().unwrap_or_else(|| "sweep_fabric".to_string());
    let id = match args.next() {
        Some(arg) if arg == "--help" || arg == "-h" => {
            println!("{}", usage(&program));
            std::process::exit(0);
        }
        Some(arg) if !arg.starts_with('-') => arg.to_uppercase(),
        _ => {
            eprintln!("error: expected an experiment id as the first argument");
            eprintln!("{}", usage(&program));
            std::process::exit(2);
        }
    };
    let Some(experiment) = registry::find(&id) else {
        eprintln!("error: unknown experiment `{id}`");
        eprintln!("{}", usage(&program));
        std::process::exit(2);
    };
    let cli = match Cli::try_parse(args) {
        Ok(cli) => cli,
        Err(CliError::Help) => {
            println!("{}", usage(&program));
            std::process::exit(0);
        }
        Err(CliError::Bad(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage(&program));
            std::process::exit(2);
        }
    };
    registry::run_with_prefix(experiment, &cli, &[id]);
}
