//! `obs_report`: summarize, diff, profile, and regression-gate run records.
//!
//! * `obs_report TRACE` — validate every line of `TRACE` and print a
//!   summary: event counts, per-round live/message curves pooled over runs,
//!   merged histograms, span timings, and recovery attempts.
//! * `obs_report --diff A B` — compare two traces *modulo timing*: span
//!   wall-clock micros are scrubbed before comparison, so two runs of the
//!   same seeded experiment must diff clean. Exit status 0 when identical,
//!   1 when they differ, 2 on unreadable/unparseable input.
//! * `obs_report profile TRACE [--folded]` — fold the trace's span events
//!   into a per-phase self-time profile. The default is a table sorted by
//!   self-time; `--folded` prints flamegraph-compatible `path weight` lines.
//! * `obs_report regress BASELINE CURRENT` — compare two `--metrics`
//!   documents metric by metric. The documents are deterministic, so any
//!   difference is drift: exit 1 on drift, 2 on malformed input.
//! * `obs_report regress --bench BASELINE CURRENT [--tol PCT]` — gate
//!   `bench_scale` rows against the recorded `BENCH_engine.json` history:
//!   each current row's `min_ns` (already a min over repeats) must stay
//!   within `1 + PCT/100` of the best recorded `min_ns` for the same
//!   `(workload, n)`. The default tolerance of 200% reproduces the old
//!   "within 3× of the best recorded run" CI rule.

use local_obs::{
    read_trace, EventData, MetricId, MetricKind, MetricsDoc, PowHistogram, SpanProfile, TraceEvent,
};
use serde::{Deserialize, Value};
use std::collections::BTreeMap;

const USAGE: &str = "usage: obs_report TRACE
       obs_report --diff A B
       obs_report profile TRACE [--folded]
       obs_report regress BASELINE CURRENT
       obs_report regress --bench BASELINE CURRENT [--tol PCT]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["--help"] | ["-h"] => {
            println!("{USAGE}");
        }
        ["--diff", a, b] => diff(a, b),
        ["profile", path] => profile(path, false),
        ["profile", path, "--folded"] | ["profile", "--folded", path] => profile(path, true),
        ["regress", baseline, current] => regress_metrics(baseline, current),
        ["regress", "--bench", rest @ ..] => regress_bench(rest),
        [path] if !path.starts_with('-') => summarize(path),
        _ => usage(),
    }
}

fn load(path: &str) -> Vec<TraceEvent> {
    match read_trace(std::path::Path::new(path)) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }
    }
}

/// One scrubbed event rendered for comparison: timing zeroed, everything
/// else verbatim.
fn scrubbed_line(event: &TraceEvent) -> String {
    serde_json::to_string(&event.scrubbed()).expect("trace events serialize infallibly")
}

fn diff(a_path: &str, b_path: &str) {
    let a = load(a_path);
    let b = load(b_path);
    let mut differences = 0usize;
    const SHOWN: usize = 10;
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        let (lx, ly) = (scrubbed_line(x), scrubbed_line(y));
        if lx != ly {
            if differences < SHOWN {
                println!("event {i} differs:");
                println!("  - {lx}");
                println!("  + {ly}");
            }
            differences += 1;
        }
    }
    if a.len() != b.len() {
        println!(
            "length differs: {} has {} events, {} has {}",
            a_path,
            a.len(),
            b_path,
            b.len()
        );
        differences += a.len().abs_diff(b.len());
    }
    if differences == 0 {
        println!("identical modulo timing: {} events in both traces", a.len());
    } else {
        println!("{differences} non-timing difference(s)");
        std::process::exit(1);
    }
}

#[derive(Default)]
struct RoundCurve {
    live: u64,
    messages: u64,
    samples: u64,
}

fn summarize(path: &str) {
    let events = load(path);
    println!("{path}: {} events", events.len());
    if events.is_empty() {
        return;
    }

    let trials: std::collections::BTreeSet<u64> = events.iter().map(|e| e.trial).collect();
    println!(
        "trials: {} (ids {}..={})",
        trials.len(),
        trials.iter().next().expect("nonempty"),
        trials.iter().next_back().expect("nonempty")
    );

    let mut tags: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in &events {
        *tags.entry(e.data.tag()).or_default() += 1;
    }
    let tag_list: Vec<String> = tags.iter().map(|(t, c)| format!("{t}: {c}")).collect();
    println!("events by type: {}", tag_list.join(", "));

    run_summary(&events);
    round_curves(&events);
    histograms(&events);
    spans(&events);
    recoveries(&events);
    search_iters(&events);
    fabric_lifecycle(&events);
}

fn run_summary(events: &[TraceEvent]) {
    let mut runs = 0u64;
    let mut messages = 0u64;
    let mut rounds_total = 0u64;
    let mut rounds_max = 0u32;
    let mut halted = 0u64;
    let mut crashed = 0u64;
    let mut cut = 0u64;
    let mut breaches: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if let EventData::RunEnd {
            rounds,
            messages: m,
            halted: h,
            crashed: c,
            cut: q,
            breach,
            ..
        } = &e.data
        {
            runs += 1;
            messages += m;
            rounds_total += u64::from(*rounds);
            rounds_max = rounds_max.max(*rounds);
            halted += h;
            crashed += c;
            cut += q;
            if let Some(b) = breach {
                *breaches.entry(b.clone()).or_default() += 1;
            }
        }
    }
    if runs == 0 {
        return;
    }
    println!(
        "runs: {runs}; rounds mean {:.1} max {rounds_max}; messages total {messages}",
        rounds_total as f64 / runs as f64
    );
    println!("vertex fates: halted {halted}, crashed {crashed}, cut {cut}");
    for (b, c) in &breaches {
        println!("budget breaches: {b} × {c}");
    }
}

/// Per-round curves pooled over every run in the trace: how the live-vertex
/// count decays and where the message volume peaks.
fn round_curves(events: &[TraceEvent]) {
    let mut curve: BTreeMap<u32, RoundCurve> = BTreeMap::new();
    for e in events {
        if let EventData::Round {
            round,
            live,
            messages,
            ..
        } = &e.data
        {
            let slot = curve.entry(*round).or_default();
            slot.live += live;
            slot.messages += messages;
            slot.samples += 1;
        }
    }
    if curve.is_empty() {
        return;
    }
    const SHOWN: usize = 24;
    println!("per-round curve (pooled over runs; live/messages are means):");
    println!("  round  runs   live-mean  messages-mean");
    for (round, c) in curve.iter().take(SHOWN) {
        println!(
            "  {round:>5}  {:>4}  {:>10.1}  {:>13.1}",
            c.samples,
            c.live as f64 / c.samples as f64,
            c.messages as f64 / c.samples as f64
        );
    }
    if curve.len() > SHOWN {
        println!("  … {} more rounds", curve.len() - SHOWN);
    }
}

fn histograms(events: &[TraceEvent]) {
    let mut merged: BTreeMap<String, PowHistogram> = BTreeMap::new();
    for e in events {
        if let EventData::Histogram { name, hist } = &e.data {
            merged.entry(name.clone()).or_default().merge(hist);
        }
    }
    for (name, hist) in &merged {
        println!("histogram {name} (total {}):", hist.total());
        for (bin, count) in hist.nonzero() {
            let (lo, hi) = PowHistogram::bin_bounds(bin);
            println!("  [{lo}, {hi}]: {count}");
        }
    }
}

fn spans(events: &[TraceEvent]) {
    let mut timing: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for e in events {
        if let EventData::SpanEnd { name, micros } = &e.data {
            let slot = timing.entry(name.clone()).or_default();
            slot.0 += 1;
            slot.1 += micros;
        }
    }
    for (name, (count, micros)) in &timing {
        println!(
            "span {name}: {count} × (total {micros} µs, mean {:.1} µs)",
            *micros as f64 / *count as f64
        );
    }
}

fn recoveries(events: &[TraceEvent]) {
    let mut attempts = 0u64;
    let mut ok = 0u64;
    let mut max_radius = 0u32;
    let mut finishers: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if let EventData::Recovery {
            radius,
            finisher,
            ok: success,
            ..
        } = &e.data
        {
            attempts += 1;
            ok += u64::from(*success);
            max_radius = max_radius.max(*radius);
            *finishers.entry(finisher.clone()).or_default() += 1;
        }
    }
    if attempts == 0 {
        return;
    }
    let by_finisher: Vec<String> = finishers.iter().map(|(f, c)| format!("{f}: {c}")).collect();
    println!(
        "recovery attempts: {attempts} ({ok} verified ok, max radius {max_radius}); {}",
        by_finisher.join(", ")
    );
}

/// Adversary-search trajectory: how many tabu iterations ran, how often a
/// move was committed, how far the objective climbed, and which move kinds
/// the search leaned on.
fn search_iters(events: &[TraceEvent]) {
    let mut iterations = 0u64;
    let mut accepted = 0u64;
    let mut best = 0u64;
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if let EventData::SearchIter {
            best: b,
            mv,
            accepted: took,
            ..
        } = &e.data
        {
            iterations += 1;
            accepted += u64::from(*took);
            best = best.max(*b);
            let kind = mv.split('(').next().unwrap_or(mv).to_string();
            *kinds.entry(kind).or_default() += 1;
        }
    }
    if iterations == 0 {
        return;
    }
    let by_kind: Vec<String> = kinds.iter().map(|(k, c)| format!("{k}: {c}")).collect();
    println!(
        "search iterations: {iterations} ({accepted} moves committed, best objective {best}); moves: {}",
        by_kind.join(", ")
    );
}

/// Per-slot census of a fabric run: spawns and respawns, how each death was
/// classified, and the lease traffic (grants vs completions vs reclaims).
fn fabric_lifecycle(events: &[TraceEvent]) {
    #[derive(Default)]
    struct Slot {
        spawns: u64,
        deaths: BTreeMap<String, u64>,
    }
    let mut slots: BTreeMap<u64, Slot> = BTreeMap::new();
    let mut grants = 0u64;
    let mut done = 0u64;
    let mut reclaimed = 0u64;
    let mut units_reclaimed = 0u64;
    for e in events {
        match &e.data {
            EventData::WorkerSpawn { worker, .. } => {
                slots.entry(*worker).or_default().spawns += 1;
            }
            EventData::WorkerDown { worker, cause, .. } => {
                *slots
                    .entry(*worker)
                    .or_default()
                    .deaths
                    .entry(cause.clone())
                    .or_default() += 1;
            }
            EventData::LeaseGrant { .. } => grants += 1,
            EventData::LeaseDone { .. } => done += 1,
            EventData::LeaseReclaim { len, .. } => {
                reclaimed += 1;
                units_reclaimed += len;
            }
            _ => {}
        }
    }
    if slots.is_empty() {
        return;
    }
    println!(
        "fabric: {} worker slot(s); leases granted {grants}, completed {done}, \
         reclaimed {reclaimed} ({units_reclaimed} unit(s) requeued)",
        slots.len()
    );
    for (worker, slot) in &slots {
        let fate = if slot.deaths.is_empty() {
            "clean".to_string()
        } else {
            slot.deaths
                .iter()
                .map(|(c, n)| format!("{c} × {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  worker {worker}: {} spawn(s) ({} respawn(s)); deaths: {fate}",
            slot.spawns,
            slot.spawns.saturating_sub(1)
        );
    }
}

/// `profile`: fold span events into per-call-path self-times.
fn profile(path: &str, folded: bool) {
    let events = load(path);
    let p = SpanProfile::from_events(&events);
    if p.is_empty() {
        eprintln!("error: {path}: no span events — was the trace recorded with spans?");
        std::process::exit(2);
    }
    if folded {
        print!("{}", p.folded());
        return;
    }
    let mut entries: Vec<_> = p.entries().to_vec();
    entries.sort_by(|a, b| b.self_micros.cmp(&a.self_micros).then(a.path.cmp(&b.path)));
    let root = p.root_micros().max(1);
    println!(
        "{path}: {} call path(s), root total {} µs",
        entries.len(),
        p.root_micros()
    );
    println!(
        "  {:>10}  {:>12}  {:>12}  {:>6}  path",
        "count", "total-µs", "self-µs", "self%"
    );
    for e in &entries {
        println!(
            "  {:>10}  {:>12}  {:>12}  {:>5.1}%  {}",
            e.count,
            e.total_micros,
            e.self_micros,
            100.0 * e.self_micros as f64 / root as f64,
            e.path
        );
    }
    if p.orphan_ends() > 0 || p.unclosed_starts() > 0 {
        println!(
            "warning: {} orphan span end(s), {} unclosed span start(s)",
            p.orphan_ends(),
            p.unclosed_starts()
        );
    }
}

fn load_json(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }
    }
}

fn load_metrics_doc(path: &str) -> MetricsDoc {
    match MetricsDoc::from_value(&load_json(path)) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {path}: {err}");
            std::process::exit(2);
        }
    }
}

/// `regress BASELINE CURRENT`: metric-by-metric comparison of two canonical
/// metrics documents. The documents contain only deterministic content, so
/// the rule is exact equality — any difference is drift.
fn regress_metrics(baseline_path: &str, current_path: &str) {
    let baseline = load_metrics_doc(baseline_path);
    let current = load_metrics_doc(current_path);
    if baseline.experiment != current.experiment || baseline.mode != current.mode {
        eprintln!(
            "error: documents disagree on what ran: baseline is {}/{}, current is {}/{}",
            baseline.experiment, baseline.mode, current.experiment, current.mode
        );
        std::process::exit(2);
    }
    let mut drifted = 0usize;
    for id in MetricId::ALL {
        let def = id.def();
        match def.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                let (b, c) = match def.kind {
                    MetricKind::Counter => {
                        (baseline.metrics.counter(*id), current.metrics.counter(*id))
                    }
                    _ => (baseline.metrics.gauge(*id), current.metrics.gauge(*id)),
                };
                if b != c {
                    drifted += 1;
                    println!(
                        "drift: {} ({}) baseline {b}, current {c}",
                        def.name,
                        def.kind.name()
                    );
                }
            }
            MetricKind::Histogram => {
                let b = baseline.metrics.histogram(*id);
                let c = current.metrics.histogram(*id);
                if b != c {
                    drifted += 1;
                    let total = |h: Option<&PowHistogram>| h.map_or(0, PowHistogram::total);
                    println!(
                        "drift: {} (histogram) baseline total {}, current total {}",
                        def.name,
                        total(b),
                        total(c)
                    );
                }
            }
        }
    }
    if drifted == 0 {
        println!(
            "no drift: {} {} metrics match the baseline exactly",
            current.experiment, current.mode
        );
    } else {
        println!("{drifted} metric(s) drifted from {baseline_path}");
        std::process::exit(1);
    }
}

/// One `bench_scale` row, as recorded in `BENCH_engine.json` or emitted by
/// a fresh run.
struct BenchRow {
    workload: String,
    n: u64,
    min_ns: u64,
}

fn bench_row(path: &str, v: &Value) -> BenchRow {
    let row = || -> Result<BenchRow, serde::DeError> {
        Ok(BenchRow {
            workload: String::from_value(v.field("workload")?)?,
            n: u64::from_value(v.field("n")?)?,
            min_ns: u64::from_value(v.field("min_ns")?)?,
        })
    };
    match row() {
        Ok(row) => row,
        Err(err) => {
            eprintln!("error: {path}: bad bench row: {err}");
            std::process::exit(2);
        }
    }
}

fn bench_rows(path: &str) -> Vec<BenchRow> {
    match load_json(path) {
        Value::Array(items) => items.iter().map(|v| bench_row(path, v)).collect(),
        v @ Value::Object(_) => vec![bench_row(path, &v)],
        _ => {
            eprintln!("error: {path}: expected a bench row or an array of rows");
            std::process::exit(2);
        }
    }
}

/// `regress --bench`: gate fresh `bench_scale` rows against the recorded
/// history. Min-of-repeats (each row's `min_ns` is already the minimum over
/// its repeats) plus a relative tolerance: current must stay within
/// `1 + tol/100` of the best recorded minimum for the same `(workload, n)`.
fn regress_bench(rest: &[&str]) {
    let (paths, tol) = match rest {
        [a, b] => ((*a, *b), 200.0),
        [a, b, "--tol", pct] => match pct.parse::<f64>() {
            Ok(t) if t >= 0.0 => ((*a, *b), t),
            _ => usage(),
        },
        _ => usage(),
    };
    let (baseline_path, current_path) = paths;
    let baseline = bench_rows(baseline_path);
    let current = bench_rows(current_path);
    if current.is_empty() {
        eprintln!("error: {current_path}: no bench rows to gate");
        std::process::exit(2);
    }
    let mut regressed = 0usize;
    for row in &current {
        let best = baseline
            .iter()
            .filter(|b| b.workload == row.workload && b.n == row.n)
            .map(|b| b.min_ns)
            .min();
        let Some(best) = best else {
            eprintln!(
                "error: {baseline_path} has no entry for workload {} at n = {}",
                row.workload, row.n
            );
            std::process::exit(2);
        };
        let limit = best as f64 * (1.0 + tol / 100.0);
        let verdict = if row.min_ns as f64 <= limit {
            "ok"
        } else {
            regressed += 1;
            "REGRESSED"
        };
        println!(
            "{} n={}: min {:.1} ms vs best recorded {:.1} ms (limit {:.1} ms at +{tol}%): {verdict}",
            row.workload,
            row.n,
            row.min_ns as f64 / 1e6,
            best as f64 / 1e6,
            limit / 1e6
        );
    }
    if regressed > 0 {
        println!("{regressed} row(s) regressed past the +{tol}% gate");
        std::process::exit(1);
    }
}
