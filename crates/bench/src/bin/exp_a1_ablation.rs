//! A1: ablation of Theorem 10's schedule constants.

fn main() {
    local_bench::registry::main_for("A1");
}
