//! A1: ablation of Theorem 10's schedule constants.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::a1_ablation as a1;

fn main() {
    banner(
        "A1",
        "Theorem 10 constants: growth K and palette margin ablation",
    );
    let cfg = if full_mode() {
        a1::Config::full()
    } else {
        a1::Config::quick()
    };
    let rows = a1::run(&cfg);
    if json_mode() {
        emit_json("A1", rows.as_slice());
    } else {
        println!("{}", a1::table(&rows, cfg.n, cfg.delta));
    }
}
