//! A1: ablation of Theorem 10's schedule constants.

use local_bench::Cli;
use local_separation::experiments::a1_ablation as a1;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("A1");
    cli.reject_trace("A1");
    cli.banner(
        "A1",
        "Theorem 10 constants: growth K and palette margin ablation",
    );
    let mut cfg = if cli.full {
        a1::Config::full()
    } else {
        a1::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on A1 (seeds derive from the grid)");
    }
    let rows = a1::run(&cfg);
    if cli.json {
        cli.emit_json("A1", rows.as_slice());
    } else {
        println!("{}", a1::table(&rows, cfg.n, cfg.delta));
    }
}
