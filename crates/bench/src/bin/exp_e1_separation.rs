//! E1: the exponential separation — deterministic vs randomized tree
//! Δ-coloring rounds.

use local_bench::{banner, emit_json, full_mode, json_mode};
use local_separation::experiments::e1_separation as e1;

fn main() {
    banner(
        "E1",
        "tree Δ-coloring: Det Θ(log_Δ n) vs Rand O(log_Δ log n + log* n)",
    );
    let cfg = if full_mode() {
        e1::Config::full()
    } else {
        e1::Config::quick()
    };
    let out = e1::run(&cfg);
    if json_mode() {
        emit_json("E1", out.rows.as_slice());
        return;
    }
    println!("{}", e1::table(&out));
    for (delta, model) in &out.det_fit {
        println!(
            "Δ = {delta}: deterministic peel depth ℓ best fit: {}",
            model.name()
        );
    }
    for (delta, model) in &out.rand_fit {
        println!(
            "Δ = {delta}: randomized total rounds best fit:    {}",
            model.name()
        );
    }
}
