//! E1: the exponential separation — deterministic vs randomized tree
//! Δ-coloring rounds.

use local_bench::Cli;
use local_separation::experiments::e1_separation as e1;

fn main() {
    let cli = Cli::parse();
    cli.reject_checkpoint("E1");
    cli.reject_trace("E1");
    cli.banner(
        "E1",
        "tree Δ-coloring: Det Θ(log_Δ n) vs Rand O(log_Δ log n + log* n)",
    );
    let mut cfg = if cli.full {
        e1::Config::full()
    } else {
        e1::Config::quick()
    };
    if let Some(t) = cli.trials {
        cfg.seeds = t;
    }
    if cli.seed.is_some() {
        cli.progress("note: --seed has no effect on E1 (seeds derive from n and Δ)");
    }
    let out = e1::run(&cfg);
    if cli.json {
        cli.emit_json("E1", out.rows.as_slice());
        return;
    }
    println!("{}", e1::table(&out));
    for (delta, model) in &out.det_fit {
        println!(
            "Δ = {delta}: deterministic peel depth ℓ best fit: {}",
            model.name()
        );
    }
    for (delta, model) in &out.rand_fit {
        println!(
            "Δ = {delta}: randomized total rounds best fit:    {}",
            model.name()
        );
    }
}
