//! E1: the exponential separation — deterministic vs randomized tree
//! Δ-coloring rounds.

fn main() {
    local_bench::registry::main_for("E1");
}
