//! The registry's contracts: one rejection site, a complete table, and a
//! flag parser that is order-invariant.

use local_bench::registry::{check_flags, find, Caps};
use local_bench::{Cli, CliError};
use proptest::prelude::*;

fn cli(args: &[&str]) -> Cli {
    Cli::try_parse(args.iter().map(|s| (*s).to_string())).expect("valid args")
}

#[test]
fn registry_lists_all_fifteen_experiments() {
    let ids: Vec<&str> = local_bench::experiments::all()
        .iter()
        .map(|e| e.id())
        .collect();
    assert_eq!(
        ids,
        [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
            "E14", "A1"
        ]
    );
    for id in &ids {
        assert!(find(id).is_some(), "{id} must resolve through find()");
    }
    assert!(find("E99").is_none());
}

#[test]
fn every_experiment_supports_trace() {
    for exp in local_bench::experiments::all() {
        assert!(exp.caps().trace, "{} must accept --trace", exp.id());
    }
}

#[test]
fn only_the_resumable_sweeps_support_checkpoint() {
    for exp in local_bench::experiments::all() {
        let expected = matches!(exp.id(), "E12" | "E13" | "E14");
        assert_eq!(
            exp.caps().checkpoint,
            expected,
            "{} checkpoint capability",
            exp.id()
        );
    }
}

/// `caps().fabric` and `fabric()` must agree: the driver unwraps the job
/// whenever the capability is declared, so a mismatch is a panic at run
/// time — pin it here instead.
#[test]
fn the_fabric_capability_matches_the_decomposition() {
    for exp in local_bench::experiments::all() {
        let expected = matches!(exp.id(), "E12" | "E13" | "E14");
        assert_eq!(
            exp.caps().fabric,
            expected,
            "{} fabric capability",
            exp.id()
        );
        assert_eq!(
            exp.fabric(&cli(&[])).is_some(),
            expected,
            "{} fabric() presence",
            exp.id()
        );
    }
}

#[test]
fn every_default_config_is_an_object() {
    for exp in local_bench::experiments::all() {
        for args in [&[][..], &["--full"][..]] {
            let value = exp.default_config(&cli(args));
            assert!(
                matches!(value, serde::Value::Object(_)),
                "{} config must serialize as an object",
                exp.id()
            );
        }
    }
}

/// THE rejection messages, pinned: the driver emits them from exactly one
/// place ([`check_flags`]), so this is the only text a user can ever see.
#[test]
fn rejection_messages_name_the_experiment_and_the_gap() {
    let no_caps = Caps::default();
    assert_eq!(
        check_flags(&cli(&["--trace", "t.jsonl"]), "E6", no_caps),
        Err("E6 does not support --trace (no traced run path)".to_string())
    );
    assert_eq!(
        check_flags(&cli(&["--checkpoint", "c.ckpt"]), "E4", Caps::TRACE_ONLY),
        Err("E4 does not support --checkpoint (no resumable trial loop)".to_string())
    );
    assert_eq!(
        check_flags(
            &cli(&["--trace", "t.jsonl", "--checkpoint", "c.ckpt"]),
            "E12",
            Caps::TRACE_AND_CHECKPOINT,
        ),
        Err("--trace and --checkpoint are mutually exclusive on E12".to_string())
    );
}

/// The fabric-flag rejection messages, pinned like the rest.
#[test]
fn fabric_flag_misuse_is_rejected_with_pinned_messages() {
    let fab = Caps::TRACE_AND_CHECKPOINT;
    assert_eq!(
        check_flags(&cli(&["--workers", "2"]), "E6", Caps::TRACE_ONLY),
        Err("E6 does not support --workers (no fabric sweep decomposition)".to_string())
    );
    assert_eq!(
        check_flags(&cli(&["--workers", "0"]), "E13", fab),
        Err("--workers needs at least one worker".to_string())
    );
    assert_eq!(
        check_flags(
            &cli(&["--workers", "2", "--checkpoint", "c.ckpt"]),
            "E13",
            fab
        ),
        Err("--workers and --checkpoint are mutually exclusive on E13 \
             (the fabric journals per worker)"
            .to_string())
    );
    assert_eq!(
        check_flags(
            &cli(&[
                "--workers",
                "2",
                "--fabric-worker",
                "0",
                "--fabric-dir",
                "d"
            ]),
            "E13",
            fab,
        ),
        Err("--workers and --fabric-worker are mutually exclusive".to_string())
    );
    assert_eq!(
        check_flags(&cli(&["--fabric-worker", "0"]), "E13", fab),
        Err("--fabric-worker requires --fabric-dir".to_string())
    );
    assert_eq!(
        check_flags(
            &cli(&["--fabric-worker", "0", "--fabric-dir", "d", "--json"]),
            "E13",
            fab,
        ),
        Err("--fabric-worker is a fabric-internal mode and takes no output flags".to_string())
    );
    assert_eq!(
        check_flags(&cli(&["--fabric-dir", "d"]), "E13", fab),
        Err("--fabric-dir requires --workers or --fabric-worker".to_string())
    );
    assert_eq!(
        check_flags(&cli(&["--fabric-attempt", "1"]), "E13", fab),
        Err("--fabric-attempt requires --fabric-worker".to_string())
    );
}

#[test]
fn fabric_flags_pass_when_used_correctly() {
    let fab = Caps::TRACE_AND_CHECKPOINT;
    assert_eq!(check_flags(&cli(&["--workers", "4"]), "E13", fab), Ok(()));
    assert_eq!(
        check_flags(&cli(&["--workers", "4", "--trace", "t.jsonl"]), "E13", fab),
        Ok(())
    );
    assert_eq!(
        check_flags(&cli(&["--workers", "4", "--fabric-dir", "d"]), "E13", fab),
        Ok(())
    );
    assert_eq!(
        check_flags(
            &cli(&["--fabric-worker", "0", "--fabric-dir", "d", "--quiet"]),
            "E13",
            fab,
        ),
        Ok(())
    );
    assert_eq!(
        check_flags(
            &cli(&[
                "--fabric-worker",
                "1",
                "--fabric-attempt",
                "2",
                "--fabric-dir",
                "d"
            ]),
            "E13",
            fab,
        ),
        Ok(())
    );
}

#[test]
fn supported_flags_pass_the_capability_check() {
    assert_eq!(check_flags(&cli(&[]), "E1", Caps::default()), Ok(()));
    assert_eq!(
        check_flags(&cli(&["--trace", "t.jsonl"]), "E1", Caps::TRACE_ONLY),
        Ok(())
    );
    assert_eq!(
        check_flags(
            &cli(&["--checkpoint", "c.ckpt"]),
            "E12",
            Caps::TRACE_AND_CHECKPOINT,
        ),
        Ok(())
    );
}

/// The flag vocabulary, as (spelled-out arguments, canonical flag name)
/// pairs a strategy can shuffle.
fn flag_pool() -> Vec<(Vec<String>, &'static str)> {
    vec![
        (vec!["--full".into()], "--full"),
        (vec!["--json".into()], "--json"),
        (vec!["--quiet".into()], "--quiet"),
        (vec!["--trials".into(), "7".into()], "--trials"),
        (vec!["--seed".into(), "42".into()], "--seed"),
        (vec!["--checkpoint".into(), "c.ckpt".into()], "--checkpoint"),
        (vec!["--trace".into(), "t.jsonl".into()], "--trace"),
        (vec!["--workers".into(), "3".into()], "--workers"),
        (vec!["--fabric-dir".into(), "d".into()], "--fabric-dir"),
    ]
}

/// The flag-pool size ([`flag_pool`] entries; the permutation and the
/// subset mask both range over it).
const POOL: usize = 9;

/// A seed-driven permutation of `0..POOL` (Fisher–Yates with a tiny LCG).
fn permutation(seed: u64) -> [usize; POOL] {
    let mut order = [0usize; POOL];
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    for i in (1..POOL).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    /// Any subset of the flag vocabulary parses to the same [`Cli`] no
    /// matter the order the flags appear in.
    #[test]
    fn try_parse_is_flag_order_invariant(mask in 0usize..(1 << POOL), seed in 0u64..1 << 32) {
        let pool = flag_pool();
        let forward: Vec<String> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .flat_map(|(_, (args, _))| args.clone())
            .collect();
        let shuffled: Vec<String> = permutation(seed)
            .iter()
            .filter(|&&i| mask & (1 << i) != 0)
            .flat_map(|&i| pool[i].0.clone())
            .collect();
        prop_assert_eq!(Cli::try_parse(forward), Cli::try_parse(shuffled));
    }

    /// Unknown flags are always a hard parse error (the binaries turn this
    /// into exit status 2; see the `json_envelope` integration test for the
    /// process-level check). `--zz…` never collides with the vocabulary.
    #[test]
    fn unknown_flags_are_rejected(letters in proptest::collection::vec(0u8..26, 6)) {
        let name: String = letters.iter().map(|&b| char::from(b'a' + b)).collect();
        let flag = format!("--zz{name}");
        prop_assert!(matches!(Cli::try_parse([flag]), Err(CliError::Bad(_))));
    }
}
