//! Process-level contracts of the sweep fabric: `--workers N` produces the
//! byte-identical envelope of the serial run — including when workers are
//! killed mid-sweep — and the fabric flags reject misuse with status 2.
//!
//! E13's quick config at `--trials 1` is the probe sweep: 18 grid points,
//! a couple of seconds even unoptimized, and every workload exercised.

use std::path::PathBuf;
use std::process::Command;

fn e13() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_e13_recovery"))
}

fn sweep_fabric() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep_fabric"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-fabric-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The serial `--json` envelope for E13 quick at one trial per cell.
fn serial_envelope() -> Vec<u8> {
    let out = e13()
        .args(["--json", "--quiet", "--trials", "1"])
        .output()
        .expect("spawn serial");
    assert!(out.status.success(), "serial status: {:?}", out.status);
    out.stdout
}

/// THE acceptance contract: the fabric-run sweep is byte-identical to the
/// serial run, through both the dedicated shim and the multiplexer binary.
#[test]
fn fabric_envelope_is_byte_identical_to_serial() {
    let serial = serial_envelope();

    let shim = e13()
        .args(["--json", "--quiet", "--trials", "1", "--workers", "2"])
        .output()
        .expect("spawn fabric shim");
    assert!(shim.status.success(), "shim status: {:?}", shim.status);
    assert_eq!(shim.stdout, serial, "shim --workers 2 must match serial");

    let mux = sweep_fabric()
        .args([
            "E13",
            "--json",
            "--quiet",
            "--trials",
            "1",
            "--workers",
            "2",
        ])
        .output()
        .expect("spawn sweep_fabric");
    assert!(mux.status.success(), "mux status: {:?}", mux.status);
    assert_eq!(mux.stdout, serial, "sweep_fabric E13 must match serial");
}

/// Kill-tolerance, end to end: one worker aborts mid-lease, another stalls
/// (heartbeats stop, the deadline reaps it) — the sweep still completes
/// with status 0 and the byte-identical envelope.
#[test]
fn killed_and_stalled_workers_do_not_change_the_envelope() {
    let serial = serial_envelope();
    let out = e13()
        .args(["--json", "--quiet", "--trials", "1", "--workers", "2"])
        .env("LOCAL_FABRIC_CHAOS", "0:abort@2,1:stall@3")
        .env("LOCAL_FABRIC_HEARTBEAT_MS", "100")
        .env("LOCAL_FABRIC_DEADLINE_MS", "1500")
        .output()
        .expect("spawn chaos fabric");
    assert!(out.status.success(), "chaos status: {:?}", out.status);
    assert_eq!(out.stdout, serial, "chaos sweep must still match serial");
}

/// Worker journals persist in `--fabric-dir`, and a rerun over the same
/// directory resumes from them (every unit already journaled, nothing
/// re-executed) to the same envelope.
#[test]
fn fabric_dir_journals_survive_and_resume() {
    let serial = serial_envelope();
    let dir = temp_dir("resume");
    let dir_arg = format!("--fabric-dir={}", dir.display());
    let first = e13()
        .args([
            "--json",
            "--quiet",
            "--trials",
            "1",
            "--workers",
            "2",
            &dir_arg,
        ])
        .output()
        .expect("spawn first");
    assert!(first.status.success(), "first status: {:?}", first.status);
    assert_eq!(first.stdout, serial);
    assert!(
        dir.join("worker-0.jsonl").exists(),
        "journal must persist in --fabric-dir"
    );
    let second = e13()
        .args([
            "--json",
            "--quiet",
            "--trials",
            "1",
            "--workers",
            "2",
            &dir_arg,
        ])
        .output()
        .expect("spawn second");
    assert!(
        second.status.success(),
        "second status: {:?}",
        second.status
    );
    assert_eq!(second.stdout, serial, "resumed sweep must match serial");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint written by a different config/seed must die loudly: exit 2
/// and a typed `scope_mismatch` error in the `--json` envelope, never a
/// silent recompute.
#[test]
fn scope_mismatched_checkpoint_fails_with_typed_json_error() {
    let dir = temp_dir("scope");
    let ckpt = dir.join("e13.ckpt");
    let ckpt_str = ckpt.to_str().expect("utf-8 path");
    let first = e13()
        .args(["--quiet", "--trials", "1", "--checkpoint", ckpt_str])
        .output()
        .expect("spawn first");
    assert!(first.status.success(), "first status: {:?}", first.status);

    let drifted = e13()
        .args([
            "--quiet",
            "--json",
            "--trials",
            "1",
            "--seed",
            "999",
            "--checkpoint",
            ckpt_str,
        ])
        .output()
        .expect("spawn drifted");
    assert_eq!(drifted.status.code(), Some(2), "drift must exit 2");
    let stdout = String::from_utf8(drifted.stdout).expect("utf-8 stdout");
    let envelope: serde::Value = serde_json::from_str(&stdout).expect("stdout is one JSON value");
    let error = envelope.field("error").expect("error field");
    assert_eq!(
        error.field("kind").unwrap().as_str().unwrap(),
        "scope_mismatch"
    );
    assert!(
        error
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("config or seed drift"),
        "message must explain the drift"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fabric-flag misuse dies at the uniform rejection site with status 2.
#[test]
fn fabric_flag_misuse_exits_2() {
    let cases: &[(&[&str], &str)] = &[
        (&["--workers", "0"], "--workers needs at least one worker"),
        (
            &["--workers", "2", "--checkpoint", "c.ckpt"],
            "--workers and --checkpoint are mutually exclusive on E13",
        ),
        (
            &["--fabric-worker", "0"],
            "--fabric-worker requires --fabric-dir",
        ),
        (
            &["--fabric-dir", "d"],
            "--fabric-dir requires --workers or --fabric-worker",
        ),
    ];
    for (args, needle) in cases {
        let out = e13().args(*args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
        assert!(stderr.contains(needle), "args {args:?}: {stderr:?}");
    }

    let no_fabric = Command::new(env!("CARGO_BIN_EXE_exp_e6_derand"))
        .args(["--workers", "2"])
        .output()
        .expect("spawn e6");
    assert_eq!(no_fabric.status.code(), Some(2));
    let stderr = String::from_utf8(no_fabric.stderr).expect("utf-8 stderr");
    assert_eq!(
        stderr,
        "error: E6 does not support --workers (no fabric sweep decomposition)\n"
    );
}

/// The multiplexer rejects unknown or missing experiment ids.
#[test]
fn sweep_fabric_rejects_unknown_experiments() {
    let unknown = sweep_fabric().arg("E99").output().expect("spawn");
    assert_eq!(unknown.status.code(), Some(2));
    let stderr = String::from_utf8(unknown.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("unknown experiment `E99`"), "{stderr:?}");

    let missing = sweep_fabric().output().expect("spawn");
    assert_eq!(missing.status.code(), Some(2));
    let stderr = String::from_utf8(missing.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("expected an experiment id"), "{stderr:?}");
}

/// `--workers` composes with `--trace`: the trace carries the worker
/// lifecycle (spawns, grants, completions), one JSON value per line.
#[test]
fn fabric_trace_records_the_worker_lifecycle() {
    let dir = temp_dir("trace");
    let path = dir.join("fabric.jsonl");
    let out = e13()
        .args([
            "--quiet",
            "--trials",
            "1",
            "--workers",
            "2",
            "--trace",
            path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn traced fabric");
    assert!(out.status.success(), "status: {:?}", out.status);
    let trace = std::fs::read_to_string(&path).expect("trace file exists");
    let mut tags: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for line in trace.lines() {
        let event: serde::Value = serde_json::from_str(line).expect("trace line is JSON");
        tags.insert(
            event
                .field("event")
                .expect("event tag")
                .as_str()
                .expect("tag is a string")
                .to_string(),
        );
    }
    for tag in ["worker_spawn", "lease_grant", "lease_done"] {
        assert!(tags.contains(tag), "trace must contain {tag}: {tags:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
