//! Process-level contracts of the shim binaries: `--json` stdout is a clean
//! machine-readable envelope (the banner moves to stderr), and bad or
//! unsupported flags exit with status 2 through the shared driver.
//!
//! E6 is the probe binary — its quick sweep is an exhaustive toy-scale
//! enumeration that finishes in milliseconds even unoptimized.

use std::process::Command;

fn e6() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exp_e6_derand"))
}

/// Pipe `--json` stdout straight into the parser: the envelope must be the
/// ONLY thing on stdout, and the banner must have moved to stderr.
#[test]
fn json_stdout_parses_and_banner_goes_to_stderr() {
    let out = e6().arg("--json").output().expect("spawn exp_e6");
    assert!(out.status.success(), "status: {:?}", out.status);

    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let envelope: serde::Value = serde_json::from_str(&stdout).expect("stdout is one JSON value");
    assert_eq!(
        envelope.field("experiment").unwrap().as_str().unwrap(),
        "E6"
    );
    assert_eq!(envelope.field("mode").unwrap().as_str().unwrap(), "quick");
    assert!(matches!(
        envelope.field("rows").unwrap(),
        serde::Value::Array(rows) if !rows.is_empty()
    ));

    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("=== E6"),
        "banner must still appear, on stderr: {stderr:?}"
    );
}

#[test]
fn quiet_json_still_emits_the_envelope() {
    let out = e6().args(["--json", "--quiet"]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    serde_json::from_str::<serde::Value>(&stdout).expect("stdout is one JSON value");
}

#[test]
fn unknown_flag_exits_2() {
    let out = e6().arg("--bogus").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("unknown argument `--bogus`"), "{stderr:?}");
}

/// The uniform capability rejection, observed end to end: E6 has no
/// resumable trial loop, so `--checkpoint` must die with the one pinned
/// message and status 2 — and before any sweep output.
#[test]
fn unsupported_checkpoint_exits_2_with_the_pinned_message() {
    let out = e6()
        .args(["--checkpoint", "x.ckpt"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        out.stdout.is_empty(),
        "no sweep output before the rejection"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert_eq!(
        stderr,
        "error: E6 does not support --checkpoint (no resumable trial loop)\n"
    );
}

/// Every experiment now has a traced run path: `--trace` on a binary that
/// never had one (E6) must produce a non-empty JSON-lines file.
#[test]
fn trace_flag_writes_a_jsonl_file() {
    let dir = std::env::temp_dir().join(format!("e6_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("e6.jsonl");
    let out = e6()
        .args(["--json", "--trace", path.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let trace = std::fs::read_to_string(&path).expect("trace file exists");
    assert!(!trace.trim().is_empty(), "trace must not be empty");
    for line in trace.lines() {
        serde_json::from_str::<serde::Value>(line).expect("each trace line is JSON");
    }
    std::fs::remove_dir_all(&dir).ok();
}
