//! Structured trace events and their flat JSON-lines encoding.

use crate::hist::PowHistogram;
use serde::{DeError, Deserialize, Serialize, Value};

/// One trace record: the payload plus its position in the trace order.
///
/// Events are totally ordered by `(trial, seq)`; `seq` restarts at 0 for each
/// trial, so traces from parallel trial harnesses are deterministic and
/// thread-count-invariant once flushed in trial order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The trial this event belongs to (0 for untrialed producers).
    pub trial: u64,
    /// Position within the trial's event stream.
    pub seq: u64,
    /// The payload.
    pub data: EventData,
}

/// The payload of a [`TraceEvent`].
///
/// Encoded as a flat JSON object tagged by an `"event"` field; every other
/// field sits at the top level, so `obs_report` and ad-hoc `jq` filters never
/// need to descend.
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// An engine run began.
    RunStart {
        /// Vertices in the simulated graph.
        n: u64,
        /// Undirected edges in the simulated graph.
        m: u64,
        /// `"det"` (DetLOCAL) or `"rand"` (RandLOCAL).
        mode: String,
        /// The round budget the run executes under.
        max_rounds: u32,
    },
    /// One engine sweep completed.
    Round {
        /// Sweep index (the round whose messages were exchanged).
        round: u32,
        /// Nodes still live *entering* this sweep.
        live: u64,
        /// Messages sent during this sweep.
        messages: u64,
        /// Nodes that halted during this sweep.
        halts: u64,
        /// Nodes crash-stopped at the start of this sweep.
        crashes: u64,
        /// Messages dropped by the fault plane delivering this sweep.
        dropped: u64,
        /// Messages deferred one round by the fault plane this sweep.
        delayed: u64,
        /// Cumulative messages sent so far — the message-budget consumption.
        messages_total: u64,
    },
    /// An engine run finished.
    RunEnd {
        /// Maximum halting round over halted nodes.
        rounds: u32,
        /// Sweeps executed.
        sweeps: u32,
        /// Total messages sent.
        messages: u64,
        /// Nodes that halted with an output.
        halted: u64,
        /// Nodes crash-stopped by the fault plan.
        crashed: u64,
        /// Nodes still live when the budget was exhausted.
        cut: u64,
        /// The budget axis that was breached, if any.
        breach: Option<String>,
    },
    /// A named phase began (trial setup, ColorBidding, Filtering, …).
    SpanStart {
        /// Phase name.
        name: String,
    },
    /// A named phase ended.
    SpanEnd {
        /// Phase name (matches the `SpanStart`).
        name: String,
        /// Monotonic wall-clock duration in microseconds. The only
        /// nondeterministic field in the schema; [`TraceEvent::scrubbed`]
        /// zeroes it.
        micros: u64,
    },
    /// One recovery attempt of the self-healing subsystem.
    Recovery {
        /// Attempt number (1-based; equals the escalation radius used).
        attempt: u32,
        /// Boundary radius of this attempt.
        radius: u32,
        /// Damaged-core size entering the attempt.
        core: u64,
        /// Residue size (core plus dilation) the finisher ran on.
        residue: u64,
        /// Which finisher ran.
        finisher: String,
        /// Whether the spliced labeling passed `check_complete`.
        ok: bool,
        /// Rounds the finisher consumed on top of the base run.
        extra_rounds: u32,
    },
    /// One iteration of the adversary plane's worst-case fault-plan search.
    SearchIter {
        /// Search iteration (0-based within one restart).
        iteration: u64,
        /// Objective value of the move chosen this iteration.
        objective: u64,
        /// Best objective seen so far, after this iteration.
        best: u64,
        /// The chosen move's label (`crash(v3@r1)`, `toggle(e17)`, …),
        /// encoded under the JSON field `"move"`.
        mv: String,
        /// Whether the move was accepted (improved or non-tabu best
        /// candidate) or rejected (all candidates tabu and non-improving).
        accepted: bool,
        /// The tabu tenure in effect (iterations a touched attribute stays
        /// banned).
        tenure: u32,
    },
    /// The sweep fabric spawned (or respawned) a worker process.
    WorkerSpawn {
        /// Worker slot (stable across respawns).
        worker: u64,
        /// Spawn attempt for this slot (0 = first launch).
        attempt: u32,
    },
    /// A fabric worker died or was declared dead.
    WorkerDown {
        /// Worker slot.
        worker: u64,
        /// The attempt that died.
        attempt: u32,
        /// Why: `exit(code)`, `signal`, or `heartbeat_lost`.
        cause: String,
        /// Whether the worker held a lease when it died (which the
        /// coordinator then reclaimed).
        lease_lost: bool,
    },
    /// The fabric coordinator granted a trial-range lease to a worker.
    LeaseGrant {
        /// Worker slot receiving the lease.
        worker: u64,
        /// First global unit index of the lease.
        start: u64,
        /// Number of units in the lease.
        len: u64,
    },
    /// A worker reported a lease fully journaled.
    LeaseDone {
        /// Worker slot completing the lease.
        worker: u64,
        /// First global unit index of the lease.
        start: u64,
        /// Number of units in the lease.
        len: u64,
    },
    /// The coordinator took a lease back from a dead worker and requeued it.
    LeaseReclaim {
        /// The slot that lost the lease.
        worker: u64,
        /// First global unit index of the lease.
        start: u64,
        /// Number of units in the lease.
        len: u64,
    },
    /// A named distribution snapshot.
    Histogram {
        /// What was measured (`messages_per_vertex`, `halt_round`,
        /// `shattered_component_size`, …).
        name: String,
        /// The power-of-two histogram (boxed: its fixed bin array would
        /// otherwise dominate the size of every event).
        hist: Box<PowHistogram>,
    },
}

impl EventData {
    /// The `"event"` tag this payload is encoded under.
    pub fn tag(&self) -> &'static str {
        match self {
            EventData::RunStart { .. } => "run_start",
            EventData::Round { .. } => "round",
            EventData::RunEnd { .. } => "run_end",
            EventData::SpanStart { .. } => "span_start",
            EventData::SpanEnd { .. } => "span_end",
            EventData::Recovery { .. } => "recovery",
            EventData::SearchIter { .. } => "search_iter",
            EventData::WorkerSpawn { .. } => "worker_spawn",
            EventData::WorkerDown { .. } => "worker_down",
            EventData::LeaseGrant { .. } => "lease_grant",
            EventData::LeaseDone { .. } => "lease_done",
            EventData::LeaseReclaim { .. } => "lease_reclaim",
            EventData::Histogram { .. } => "histogram",
        }
    }
}

impl TraceEvent {
    /// A copy with every wall-clock field zeroed — the deterministic residue
    /// two same-seed traces are compared on.
    pub fn scrubbed(&self) -> TraceEvent {
        let mut e = self.clone();
        if let EventData::SpanEnd { micros, .. } = &mut e.data {
            *micros = 0;
        }
        e
    }
}

fn field_u64(v: &Value, name: &str) -> Result<u64, DeError> {
    u64::from_value(v.field(name)?)
}

fn field_u32(v: &Value, name: &str) -> Result<u32, DeError> {
    u32::from_value(v.field(name)?)
}

fn field_string(v: &Value, name: &str) -> Result<String, DeError> {
    String::from_value(v.field(name)?)
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("trial".into(), Value::U64(self.trial)),
            ("seq".into(), Value::U64(self.seq)),
            ("event".into(), Value::String(self.data.tag().into())),
        ];
        match &self.data {
            EventData::RunStart {
                n,
                m,
                mode,
                max_rounds,
            } => {
                fields.push(("n".into(), n.to_value()));
                fields.push(("m".into(), m.to_value()));
                fields.push(("mode".into(), mode.to_value()));
                fields.push(("max_rounds".into(), max_rounds.to_value()));
            }
            EventData::Round {
                round,
                live,
                messages,
                halts,
                crashes,
                dropped,
                delayed,
                messages_total,
            } => {
                fields.push(("round".into(), round.to_value()));
                fields.push(("live".into(), live.to_value()));
                fields.push(("messages".into(), messages.to_value()));
                fields.push(("halts".into(), halts.to_value()));
                fields.push(("crashes".into(), crashes.to_value()));
                fields.push(("dropped".into(), dropped.to_value()));
                fields.push(("delayed".into(), delayed.to_value()));
                fields.push(("messages_total".into(), messages_total.to_value()));
            }
            EventData::RunEnd {
                rounds,
                sweeps,
                messages,
                halted,
                crashed,
                cut,
                breach,
            } => {
                fields.push(("rounds".into(), rounds.to_value()));
                fields.push(("sweeps".into(), sweeps.to_value()));
                fields.push(("messages".into(), messages.to_value()));
                fields.push(("halted".into(), halted.to_value()));
                fields.push(("crashed".into(), crashed.to_value()));
                fields.push(("cut".into(), cut.to_value()));
                fields.push(("breach".into(), breach.to_value()));
            }
            EventData::SpanStart { name } => {
                fields.push(("name".into(), name.to_value()));
            }
            EventData::SpanEnd { name, micros } => {
                fields.push(("name".into(), name.to_value()));
                fields.push(("micros".into(), micros.to_value()));
            }
            EventData::Recovery {
                attempt,
                radius,
                core,
                residue,
                finisher,
                ok,
                extra_rounds,
            } => {
                fields.push(("attempt".into(), attempt.to_value()));
                fields.push(("radius".into(), radius.to_value()));
                fields.push(("core".into(), core.to_value()));
                fields.push(("residue".into(), residue.to_value()));
                fields.push(("finisher".into(), finisher.to_value()));
                fields.push(("ok".into(), ok.to_value()));
                fields.push(("extra_rounds".into(), extra_rounds.to_value()));
            }
            EventData::SearchIter {
                iteration,
                objective,
                best,
                mv,
                accepted,
                tenure,
            } => {
                fields.push(("iteration".into(), iteration.to_value()));
                fields.push(("objective".into(), objective.to_value()));
                fields.push(("best".into(), best.to_value()));
                fields.push(("move".into(), mv.to_value()));
                fields.push(("accepted".into(), accepted.to_value()));
                fields.push(("tenure".into(), tenure.to_value()));
            }
            EventData::WorkerSpawn { worker, attempt } => {
                fields.push(("worker".into(), worker.to_value()));
                fields.push(("attempt".into(), attempt.to_value()));
            }
            EventData::WorkerDown {
                worker,
                attempt,
                cause,
                lease_lost,
            } => {
                fields.push(("worker".into(), worker.to_value()));
                fields.push(("attempt".into(), attempt.to_value()));
                fields.push(("cause".into(), cause.to_value()));
                fields.push(("lease_lost".into(), lease_lost.to_value()));
            }
            EventData::LeaseGrant { worker, start, len }
            | EventData::LeaseDone { worker, start, len }
            | EventData::LeaseReclaim { worker, start, len } => {
                fields.push(("worker".into(), worker.to_value()));
                fields.push(("start".into(), start.to_value()));
                fields.push(("len".into(), len.to_value()));
            }
            EventData::Histogram { name, hist } => {
                fields.push(("name".into(), name.to_value()));
                // Splice the histogram's fields flat into the event object.
                if let Value::Object(entries) = hist.to_value() {
                    fields.extend(entries);
                }
            }
        }
        Value::Object(fields)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = field_string(v, "event")?;
        let data = match tag.as_str() {
            "run_start" => EventData::RunStart {
                n: field_u64(v, "n")?,
                m: field_u64(v, "m")?,
                mode: field_string(v, "mode")?,
                max_rounds: field_u32(v, "max_rounds")?,
            },
            "round" => EventData::Round {
                round: field_u32(v, "round")?,
                live: field_u64(v, "live")?,
                messages: field_u64(v, "messages")?,
                halts: field_u64(v, "halts")?,
                crashes: field_u64(v, "crashes")?,
                dropped: field_u64(v, "dropped")?,
                delayed: field_u64(v, "delayed")?,
                messages_total: field_u64(v, "messages_total")?,
            },
            "run_end" => EventData::RunEnd {
                rounds: field_u32(v, "rounds")?,
                sweeps: field_u32(v, "sweeps")?,
                messages: field_u64(v, "messages")?,
                halted: field_u64(v, "halted")?,
                crashed: field_u64(v, "crashed")?,
                cut: field_u64(v, "cut")?,
                breach: Option::<String>::from_value(v.field("breach")?)?,
            },
            "span_start" => EventData::SpanStart {
                name: field_string(v, "name")?,
            },
            "span_end" => EventData::SpanEnd {
                name: field_string(v, "name")?,
                micros: field_u64(v, "micros")?,
            },
            "recovery" => EventData::Recovery {
                attempt: field_u32(v, "attempt")?,
                radius: field_u32(v, "radius")?,
                core: field_u64(v, "core")?,
                residue: field_u64(v, "residue")?,
                finisher: field_string(v, "finisher")?,
                ok: bool::from_value(v.field("ok")?)?,
                extra_rounds: field_u32(v, "extra_rounds")?,
            },
            "search_iter" => EventData::SearchIter {
                iteration: field_u64(v, "iteration")?,
                objective: field_u64(v, "objective")?,
                best: field_u64(v, "best")?,
                mv: field_string(v, "move")?,
                accepted: bool::from_value(v.field("accepted")?)?,
                tenure: field_u32(v, "tenure")?,
            },
            "worker_spawn" => EventData::WorkerSpawn {
                worker: field_u64(v, "worker")?,
                attempt: field_u32(v, "attempt")?,
            },
            "worker_down" => EventData::WorkerDown {
                worker: field_u64(v, "worker")?,
                attempt: field_u32(v, "attempt")?,
                cause: field_string(v, "cause")?,
                lease_lost: bool::from_value(v.field("lease_lost")?)?,
            },
            "lease_grant" => EventData::LeaseGrant {
                worker: field_u64(v, "worker")?,
                start: field_u64(v, "start")?,
                len: field_u64(v, "len")?,
            },
            "lease_done" => EventData::LeaseDone {
                worker: field_u64(v, "worker")?,
                start: field_u64(v, "start")?,
                len: field_u64(v, "len")?,
            },
            "lease_reclaim" => EventData::LeaseReclaim {
                worker: field_u64(v, "worker")?,
                start: field_u64(v, "start")?,
                len: field_u64(v, "len")?,
            },
            "histogram" => EventData::Histogram {
                name: field_string(v, "name")?,
                // The histogram's fields sit flat in the event object.
                hist: Box::new(PowHistogram::from_value(v)?),
            },
            other => return Err(DeError(format!("unknown trace event `{other}`"))),
        };
        Ok(TraceEvent {
            trial: field_u64(v, "trial")?,
            seq: field_u64(v, "seq")?,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        let mut hist = PowHistogram::new();
        hist.record(3);
        hist.record(100);
        vec![
            TraceEvent {
                trial: 0,
                seq: 0,
                data: EventData::RunStart {
                    n: 16,
                    m: 16,
                    mode: "rand".into(),
                    max_rounds: 100,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 1,
                data: EventData::Round {
                    round: 0,
                    live: 16,
                    messages: 32,
                    halts: 4,
                    crashes: 1,
                    dropped: 2,
                    delayed: 0,
                    messages_total: 32,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 2,
                data: EventData::SpanStart {
                    name: "phase1".into(),
                },
            },
            TraceEvent {
                trial: 0,
                seq: 3,
                data: EventData::SpanEnd {
                    name: "phase1".into(),
                    micros: 1234,
                },
            },
            TraceEvent {
                trial: 1,
                seq: 0,
                data: EventData::Recovery {
                    attempt: 1,
                    radius: 1,
                    core: 7,
                    residue: 21,
                    finisher: "greedy-coloring".into(),
                    ok: true,
                    extra_rounds: 3,
                },
            },
            TraceEvent {
                trial: 1,
                seq: 3,
                data: EventData::SearchIter {
                    iteration: 42,
                    objective: 7,
                    best: 9,
                    mv: "crash(v3@r1)".into(),
                    accepted: false,
                    tenure: 8,
                },
            },
            TraceEvent {
                trial: 1,
                seq: 1,
                data: EventData::Histogram {
                    name: "halt_round".into(),
                    hist: Box::new(hist),
                },
            },
            TraceEvent {
                trial: 0,
                seq: 4,
                data: EventData::WorkerSpawn {
                    worker: 2,
                    attempt: 1,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 5,
                data: EventData::WorkerDown {
                    worker: 2,
                    attempt: 1,
                    cause: "heartbeat_lost".into(),
                    lease_lost: true,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 6,
                data: EventData::LeaseGrant {
                    worker: 2,
                    start: 16,
                    len: 8,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 7,
                data: EventData::LeaseDone {
                    worker: 2,
                    start: 16,
                    len: 8,
                },
            },
            TraceEvent {
                trial: 0,
                seq: 8,
                data: EventData::LeaseReclaim {
                    worker: 2,
                    start: 24,
                    len: 8,
                },
            },
            TraceEvent {
                trial: 1,
                seq: 2,
                data: EventData::RunEnd {
                    rounds: 9,
                    sweeps: 10,
                    messages: 320,
                    halted: 15,
                    crashed: 1,
                    cut: 0,
                    breach: Some("rounds".into()),
                },
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for e in samples() {
            let line = serde_json::to_string(&e).unwrap();
            let back: TraceEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, e, "{line}");
        }
    }

    #[test]
    fn scrubbing_zeroes_only_span_timings() {
        for e in samples() {
            let s = e.scrubbed();
            match (&e.data, &s.data) {
                (EventData::SpanEnd { micros, .. }, EventData::SpanEnd { micros: m2, .. }) => {
                    let _ = micros;
                    assert_eq!(*m2, 0);
                }
                _ => assert_eq!(s, e),
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let bad = r#"{"trial": 0, "seq": 0, "event": "warp"}"#;
        assert!(serde_json::from_str::<TraceEvent>(bad).is_err());
    }
}
