//! Per-trial event buffers and RAII phase spans.

use crate::event::{EventData, TraceEvent};
use crate::sink::TraceSink;
use std::cell::RefCell;
use std::time::Instant;

/// A per-trial trace buffer.
///
/// Producers (the engine, the sync layer, the recovery driver) hold an
/// `Option<&Trace>`: `None` is the disabled path — a single branch, no
/// allocation, no virtual call. `Some` buffers events in memory, stamped with
/// the trial number and a monotonically increasing per-trial sequence number;
/// the trial harness drains completed buffers into a [`TraceSink`] in trial
/// order, which is what makes traces deterministic and thread-count-invariant.
///
/// Interior mutability (a `RefCell`) keeps `emit` callable through a shared
/// reference. A `Trace` is deliberately not `Sync`: each parallel trial owns
/// its own buffer, and the engine only emits from its single-threaded sweep
/// boundaries.
#[derive(Debug)]
pub struct Trace {
    trial: u64,
    inner: RefCell<Inner>,
}

#[derive(Debug)]
struct Inner {
    seq: u64,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace for one trial.
    pub fn new(trial: u64) -> Self {
        Trace {
            trial,
            inner: RefCell::new(Inner {
                seq: 0,
                events: Vec::new(),
            }),
        }
    }

    /// The trial this trace records.
    pub fn trial(&self) -> u64 {
        self.trial
    }

    /// Append one event, stamping trial and sequence number.
    pub fn emit(&self, data: EventData) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push(TraceEvent {
            trial: self.trial,
            seq,
            data,
        });
    }

    /// Open a named phase span: a `span_start` event now, and a `span_end`
    /// with the monotonic wall-clock duration when the guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.emit(EventData::SpanStart { name: name.into() });
        Span {
            trace: self,
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the trace, keeping its events in emission order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.inner.into_inner().events
    }

    /// Drain every buffered event into `sink`, preserving order.
    pub fn drain_into(&self, sink: &mut dyn TraceSink) {
        for event in self.inner.borrow_mut().events.drain(..) {
            sink.record(&event);
        }
    }
}

/// RAII guard for a phase span; see [`Trace::span`].
#[derive(Debug)]
pub struct Span<'t> {
    trace: &'t Trace,
    name: String,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.trace.emit(EventData::SpanEnd {
            name: std::mem::take(&mut self.name),
            micros: u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn events_are_stamped_in_sequence() {
        let trace = Trace::new(3);
        trace.emit(EventData::SpanStart { name: "a".into() });
        trace.emit(EventData::SpanStart { name: "b".into() });
        let events = trace.into_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.trial == 3));
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn spans_nest_and_time() {
        let trace = Trace::new(0);
        {
            let _outer = trace.span("outer");
            let _inner = trace.span("inner");
        }
        let events = trace.into_events();
        let tags: Vec<&str> = events.iter().map(|e| e.data.tag()).collect();
        assert_eq!(tags, ["span_start", "span_start", "span_end", "span_end"]);
        match &events[2].data {
            EventData::SpanEnd { name, .. } => assert_eq!(name, "inner"),
            other => panic!("expected inner span_end, got {other:?}"),
        }
    }

    #[test]
    fn drain_into_empties_the_buffer() {
        let trace = Trace::new(1);
        trace.emit(EventData::SpanStart { name: "x".into() });
        let mut sink = MemorySink::new();
        trace.drain_into(&mut sink);
        assert_eq!(sink.events().len(), 1);
        assert!(trace.is_empty());
    }
}
