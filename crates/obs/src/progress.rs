//! Progress reporting on stderr, from one-shot notes to rate-limited meters.

use std::time::{Duration, Instant};

/// Print a progress/note line to stderr unless `quiet`.
///
/// Every `exp_*` binary routes its ad-hoc notes through this one function, so
/// `--quiet` silences all of them uniformly while errors (which use
/// `eprintln!` directly) stay visible.
pub fn progress(quiet: bool, message: &str) {
    if !quiet {
        eprintln!("{message}");
    }
}

/// Render one progress line: label, completion, throughput, and ETA.
///
/// Pure — the meter's clock reads are passed in — so formatting is testable
/// without waiting on wall time. `extra` is appended verbatim when
/// non-empty (per-worker lag, current grid point, …).
pub fn render_progress(
    label: &str,
    done: u64,
    total: u64,
    elapsed: Duration,
    extra: &str,
) -> String {
    let mut line = if total > 0 {
        format!(
            "{label}: {done}/{total} units ({:.1}%)",
            done as f64 * 100.0 / total as f64
        )
    } else {
        format!("{label}: {done} units")
    };
    let secs = elapsed.as_secs_f64();
    if done > 0 && secs > 0.0 {
        let rate = done as f64 / secs;
        line.push_str(&format!(" {rate:.1} units/s"));
        if total > done && rate > 0.0 {
            let eta = (total - done) as f64 / rate;
            line.push_str(&format!(" eta {}", format_eta(eta)));
        }
    }
    if !extra.is_empty() {
        line.push(' ');
        line.push_str(extra);
    }
    line
}

fn format_eta(eta_secs: f64) -> String {
    let s = eta_secs.ceil() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// A rate-limited stderr progress meter with throughput and ETA.
///
/// Call [`update`](ProgressMeter::update) as often as work completes; at most
/// one line per [`interval`](ProgressMeter::with_interval) reaches stderr, so
/// a tight coordinator loop cannot flood the terminal.
/// [`finish`](ProgressMeter::finish) always emits a final line. Both honor
/// the same `quiet` flag as [`progress`].
#[derive(Debug)]
pub struct ProgressMeter {
    quiet: bool,
    label: String,
    total: u64,
    started: Instant,
    last_emit: Option<Instant>,
    interval: Duration,
}

impl ProgressMeter {
    /// A meter for `total` units of work (0 when the total is unknown),
    /// emitting at most every 200 ms.
    pub fn new(quiet: bool, label: &str, total: u64) -> ProgressMeter {
        ProgressMeter {
            quiet,
            label: label.to_string(),
            total,
            started: Instant::now(),
            last_emit: None,
            interval: Duration::from_millis(200),
        }
    }

    /// Override the minimum interval between emitted lines.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> ProgressMeter {
        self.interval = interval;
        self
    }

    /// Report progress; emits a line only when the rate limit allows.
    /// Returns whether a line was printed (for tests and callers that piggy-
    /// back extra output on emitted lines).
    pub fn update(&mut self, done: u64, extra: &str) -> bool {
        if self.quiet {
            return false;
        }
        let now = Instant::now();
        if self
            .last_emit
            .is_some_and(|t| now.duration_since(t) < self.interval)
        {
            return false;
        }
        self.last_emit = Some(now);
        eprintln!(
            "{}",
            render_progress(
                &self.label,
                done,
                self.total,
                now.duration_since(self.started),
                extra
            )
        );
        true
    }

    /// Report final progress, bypassing the rate limit.
    pub fn finish(&mut self, done: u64, extra: &str) {
        if self.quiet {
            return;
        }
        let now = Instant::now();
        self.last_emit = Some(now);
        eprintln!(
            "{}",
            render_progress(
                &self.label,
                done,
                self.total,
                now.duration_since(self.started),
                extra
            )
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_covers_percentage_rate_and_eta() {
        let line = render_progress("e13", 20, 80, Duration::from_secs(10), "");
        assert_eq!(line, "e13: 20/80 units (25.0%) 2.0 units/s eta 30s");
        let line = render_progress("e13", 0, 80, Duration::from_secs(1), "");
        assert_eq!(line, "e13: 0/80 units (0.0%)");
        let line = render_progress("e13", 80, 80, Duration::from_secs(40), "");
        assert_eq!(line, "e13: 80/80 units (100.0%) 2.0 units/s");
    }

    #[test]
    fn render_handles_unknown_totals_and_extras() {
        let line = render_progress("scan", 5, 0, Duration::from_secs(2), "lag=[0,1]");
        assert_eq!(line, "scan: 5 units 2.5 units/s lag=[0,1]");
    }

    #[test]
    fn eta_formats_scale() {
        assert_eq!(format_eta(1.2), "2s");
        assert_eq!(format_eta(59.0), "59s");
        assert_eq!(format_eta(61.0), "1m01s");
        assert_eq!(format_eta(3700.0), "1h01m");
    }

    #[test]
    fn meter_rate_limits_and_finish_always_emits() {
        let mut m = ProgressMeter::new(false, "t", 10).with_interval(Duration::from_secs(3600));
        assert!(m.update(1, ""));
        assert!(!m.update(2, ""), "second update inside the interval");
        m.finish(10, "");
        let mut quiet = ProgressMeter::new(true, "t", 10);
        assert!(!quiet.update(1, ""));
        quiet.finish(10, "");
    }
}
