//! The single stderr progress helper behind `--quiet`.

/// Print a progress/note line to stderr unless `quiet`.
///
/// Every `exp_*` binary routes its ad-hoc notes through this one function, so
/// `--quiet` silences all of them uniformly while errors (which use
/// `eprintln!` directly) stay visible.
pub fn progress(quiet: bool, message: &str) {
    if !quiet {
        eprintln!("{message}");
    }
}
