//! Run-wide metrics: typed counters, gauges, and histograms keyed by a
//! static metric-id table.
//!
//! The trace plane records *what happened* event by event; the metrics plane
//! aggregates *how much* — rounds, messages, recovery radii — into one
//! mergeable document. The design mirrors the trace plane's determinism
//! contract: producers record into a per-trial [`MetricSet`] (cheap,
//! single-threaded, `Cell`-based), the harness absorbs each set into an
//! owned [`MetricsRegistry`] **in trial order**, and registries merge
//! associatively, so the aggregate is bit-identical regardless of how many
//! threads or worker processes executed the trials.
//!
//! Every metric is declared once in [`MetricId::ALL`] with its kind, unit,
//! and the paper quantity it measures; the serialized form is a sparse
//! object (`{"name": value, ...}`) in table order, so two registries with
//! the same contents always render byte-identically.

use crate::hist::PowHistogram;
use serde::{DeError, Deserialize, Serialize, Value};
use std::cell::{Cell, RefCell};

/// How a metric aggregates across trials and merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Sums: totals over trials (messages, rounds, attempts).
    Counter,
    /// Maxima: high-water marks (worst recovery radius, best objective).
    Gauge,
    /// Distributions: [`PowHistogram`]s merged bin-by-bin.
    Histogram,
}

impl MetricKind {
    /// The lowercase tag used in docs and schemas.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One row of the static metric table.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The typed id.
    pub id: MetricId,
    /// The stable snake_case name used in serialized documents.
    pub name: &'static str,
    /// How the metric aggregates.
    pub kind: MetricKind,
    /// What one unit of the value means.
    pub unit: &'static str,
    /// The paper quantity the metric measures (see DESIGN.md appendix).
    pub paper: &'static str,
}

macro_rules! metric_table {
    ($(($variant:ident, $name:literal, $kind:ident, $unit:literal, $paper:literal)),* $(,)?) => {
        /// A typed key into the metrics registry.
        ///
        /// Every metric the workspace records is declared here, so documents
        /// from different binaries and versions agree on names and kinds.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum MetricId {
            $(
                #[doc = $paper]
                $variant,
            )*
        }

        impl MetricId {
            /// Every metric, in canonical (serialization) order.
            pub const ALL: &'static [MetricId] = &[$(MetricId::$variant),*];

            /// The static definition row for this id.
            pub fn def(self) -> &'static MetricDef {
                const TABLE: &[MetricDef] = &[$(MetricDef {
                    id: MetricId::$variant,
                    name: $name,
                    kind: MetricKind::$kind,
                    unit: $unit,
                    paper: $paper,
                }),*];
                &TABLE[self as usize]
            }

            /// Look a metric up by its serialized name.
            pub fn from_name(name: &str) -> Option<MetricId> {
                match name {
                    $($name => Some(MetricId::$variant),)*
                    _ => None,
                }
            }
        }
    };
}

metric_table! {
    (EngineRuns, "engine_runs", Counter, "runs",
     "number of simulated LOCAL executions aggregated into this document"),
    (EngineRounds, "engine_rounds", Counter, "rounds",
     "summed maximum halting round — the paper's round complexity, the \
      quantity separating O(log_Δ log n) from Ω(log_Δ n)"),
    (EngineSweeps, "engine_sweeps", Counter, "sweeps",
     "summed engine sweeps executed (budget-cut runs sweep past the last \
      halt)"),
    (EngineMessages, "engine_messages", Counter, "messages",
     "total messages sent — the bandwidth side of the LOCAL model"),
    (EngineHalted, "engine_halted", Counter, "vertices",
     "vertices that halted with an output"),
    (EngineCrashed, "engine_crashed", Counter, "vertices",
     "vertices crash-stopped by fault plans"),
    (EngineCut, "engine_cut", Counter, "vertices",
     "vertices still live when a budget was exhausted"),
    (EngineDropped, "engine_dropped", Counter, "messages",
     "messages dropped by the fault plane"),
    (EngineDelayed, "engine_delayed", Counter, "messages",
     "messages deferred one round by the fault plane"),
    (EngineMessagesPerVertex, "engine_messages_per_vertex", Histogram, "messages",
     "distribution of per-vertex message volume"),
    (EngineHaltRound, "engine_halt_round", Histogram, "rounds",
     "distribution of per-vertex halting rounds — the shattering-time \
      profile behind Theorem 10 Phase 1"),
    (RecoveryAttempts, "recovery_attempts", Counter, "attempts",
     "escalation attempts made by the self-healing subsystem"),
    (RecoveryOk, "recovery_ok", Counter, "attempts",
     "recovery attempts whose spliced labeling passed check_complete"),
    (RecoveryFailed, "recovery_failed", Counter, "attempts",
     "recovery attempts that left violations or breached the budget"),
    (RecoveryCore, "recovery_core", Counter, "vertices",
     "summed damaged-core sizes entering recovery"),
    (RecoveryResidue, "recovery_residue", Counter, "vertices",
     "summed residue sizes (core plus dilation) finishers ran on"),
    (RecoveryExtraRounds, "recovery_extra_rounds", Counter, "rounds",
     "rounds finishers consumed on top of the base runs — the recovery \
      overhead measured against the base round complexity"),
    (RecoveryRadiusMax, "recovery_radius_max", Gauge, "radius",
     "worst escalation radius any recovery needed — the locality of repair"),
    (SearchIterations, "search_iterations", Counter, "iterations",
     "adversary-search iterations executed"),
    (SearchAccepted, "search_accepted", Counter, "iterations",
     "adversary-search iterations whose move was accepted"),
    (SearchEvaluations, "search_evaluations", Counter, "evaluations",
     "fault plans evaluated by the adversary search"),
    (SearchBestObjective, "search_best_objective", Gauge, "objective",
     "best worst-case objective any search restart found"),
}

/// Number of declared metrics.
const COUNT: usize = MetricId::ALL.len();

/// A per-trial metric recorder.
///
/// Deliberately **not** `Sync` (like [`crate::Trace`]): each trial owns one,
/// records through shared references on a single thread, and the harness
/// absorbs completed sets into a [`MetricsRegistry`] in trial order.
/// Producers hold an `Option<&MetricSet>`, so the disabled hot path is a
/// single branch.
#[derive(Debug, Default)]
pub struct MetricSet {
    scalars: [Cell<u64>; COUNT],
    hists: RefCell<Vec<(MetricId, PowHistogram)>>,
}

impl MetricSet {
    /// A fresh, all-zero recorder.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Add `n` to a [`MetricKind::Counter`] metric.
    pub fn add(&self, id: MetricId, n: u64) {
        debug_assert_eq!(id.def().kind, MetricKind::Counter, "{}", id.def().name);
        let cell = &self.scalars[id as usize];
        cell.set(cell.get() + n);
    }

    /// Add 1 to a [`MetricKind::Counter`] metric.
    pub fn incr(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Raise a [`MetricKind::Gauge`] metric to at least `v`.
    pub fn gauge_max(&self, id: MetricId, v: u64) {
        debug_assert_eq!(id.def().kind, MetricKind::Gauge, "{}", id.def().name);
        let cell = &self.scalars[id as usize];
        cell.set(cell.get().max(v));
    }

    /// Record one sample into a [`MetricKind::Histogram`] metric.
    pub fn observe(&self, id: MetricId, sample: u64) {
        self.observe_n(id, sample, 1);
    }

    /// Record `count` samples of the same value into a histogram metric.
    pub fn observe_n(&self, id: MetricId, sample: u64, count: u64) {
        debug_assert_eq!(id.def().kind, MetricKind::Histogram, "{}", id.def().name);
        let mut hists = self.hists.borrow_mut();
        if let Some((_, h)) = hists.iter_mut().find(|(i, _)| *i == id) {
            h.record_n(sample, count);
        } else {
            let mut h = PowHistogram::new();
            h.record_n(sample, count);
            hists.push((id, h));
        }
    }
}

/// An owned, mergeable metric aggregate.
///
/// Merging is associative and commutative metric-by-metric (counters add,
/// gauges take the maximum, histograms merge bin-by-bin), so any grouping of
/// per-trial sets — rayon threads, fabric workers, checkpoint resumes —
/// folds to the same registry as a serial pass, and the serialized document
/// is byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    scalars: [u64; COUNT],
    hists: Vec<(MetricId, PowHistogram)>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            scalars: [0; COUNT],
            hists: Vec::new(),
        }
    }
}

impl MetricsRegistry {
    /// An all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Fold one completed per-trial recorder into the aggregate.
    pub fn absorb(&mut self, set: &MetricSet) {
        for id in MetricId::ALL {
            let v = set.scalars[*id as usize].get();
            self.merge_scalar(*id, v);
        }
        for (id, h) in set.hists.borrow().iter() {
            self.merge_hist(*id, h);
        }
    }

    /// Merge another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for id in MetricId::ALL {
            self.merge_scalar(*id, other.scalars[*id as usize]);
        }
        for (id, h) in &other.hists {
            self.merge_hist(*id, h);
        }
    }

    fn merge_scalar(&mut self, id: MetricId, v: u64) {
        let slot = &mut self.scalars[id as usize];
        match id.def().kind {
            MetricKind::Counter => *slot += v,
            MetricKind::Gauge => *slot = (*slot).max(v),
            MetricKind::Histogram => debug_assert_eq!(v, 0, "{}", id.def().name),
        }
    }

    fn merge_hist(&mut self, id: MetricId, h: &PowHistogram) {
        if h.is_empty() {
            return;
        }
        if let Some((_, mine)) = self.hists.iter_mut().find(|(i, _)| *i == id) {
            mine.merge(h);
        } else {
            self.hists.push((id, h.clone()));
            // Keep table order so serialization never depends on the order
            // histograms were first touched.
            self.hists.sort_by_key(|(i, _)| *i as usize);
        }
    }

    /// The value of a counter metric.
    pub fn counter(&self, id: MetricId) -> u64 {
        debug_assert_eq!(id.def().kind, MetricKind::Counter, "{}", id.def().name);
        self.scalars[id as usize]
    }

    /// The value of a gauge metric.
    pub fn gauge(&self, id: MetricId) -> u64 {
        debug_assert_eq!(id.def().kind, MetricKind::Gauge, "{}", id.def().name);
        self.scalars[id as usize]
    }

    /// The histogram recorded under `id`, if any sample landed in it.
    pub fn histogram(&self, id: MetricId) -> Option<&PowHistogram> {
        debug_assert_eq!(id.def().kind, MetricKind::Histogram, "{}", id.def().name);
        self.hists.iter().find(|(i, _)| *i == id).map(|(_, h)| h)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.scalars.iter().all(|&v| v == 0) && self.hists.is_empty()
    }

    /// The non-zero metrics, in table order, as `(def, value)` where a
    /// histogram's value is its serialized form.
    pub fn nonzero(&self) -> impl Iterator<Item = (&'static MetricDef, Value)> + '_ {
        MetricId::ALL.iter().filter_map(move |id| {
            let def = id.def();
            match def.kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    let v = self.scalars[*id as usize];
                    (v != 0).then_some((def, Value::U64(v)))
                }
                MetricKind::Histogram => self.histogram(*id).map(|h| (def, h.to_value())),
            }
        })
    }
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        Value::Object(
            self.nonzero()
                .map(|(def, v)| (def.name.to_string(), v))
                .collect(),
        )
    }
}

impl Deserialize for MetricsRegistry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = match v {
            Value::Object(entries) => entries,
            _ => return Err(DeError("expected metrics object".into())),
        };
        let mut reg = MetricsRegistry::new();
        for (name, value) in entries {
            let id = MetricId::from_name(name)
                .ok_or_else(|| DeError(format!("unknown metric `{name}`")))?;
            match id.def().kind {
                MetricKind::Counter | MetricKind::Gauge => {
                    reg.merge_scalar(id, u64::from_value(value)?);
                }
                MetricKind::Histogram => {
                    reg.merge_hist(id, &PowHistogram::from_value(value)?);
                }
            }
        }
        Ok(reg)
    }
}

/// The schema tag every metrics document carries.
pub const METRICS_SCHEMA: &str = "metrics/v1";

/// The canonical metrics document written next to the `--json` envelope.
///
/// Contains only deterministic content: the same sweep produces the same
/// bytes whether it ran serially, under rayon, or across fabric workers.
/// Nondeterministic observations (wall-clock, RSS, per-worker census) go to
/// a sibling telemetry file instead — see `crates/bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// The experiment id (`E13`, …).
    pub experiment: String,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// The aggregated metrics.
    pub metrics: MetricsRegistry,
}

impl Serialize for MetricsDoc {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String(METRICS_SCHEMA.into())),
            ("experiment".into(), Value::String(self.experiment.clone())),
            ("mode".into(), Value::String(self.mode.clone())),
            ("metrics".into(), self.metrics.to_value()),
        ])
    }
}

impl Deserialize for MetricsDoc {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let schema = String::from_value(v.field("schema")?)?;
        if schema != METRICS_SCHEMA {
            return Err(DeError(format!(
                "unsupported metrics schema `{schema}` (expected `{METRICS_SCHEMA}`)"
            )));
        }
        Ok(MetricsDoc {
            experiment: String::from_value(v.field("experiment")?)?,
            mode: String::from_value(v.field("mode")?)?,
            metrics: MetricsRegistry::from_value(v.field("metrics")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(scale: u64) -> MetricSet {
        let set = MetricSet::new();
        set.add(MetricId::EngineRounds, 3 * scale);
        set.incr(MetricId::EngineRuns);
        set.gauge_max(MetricId::RecoveryRadiusMax, scale);
        set.observe(MetricId::EngineHaltRound, scale);
        set.observe_n(MetricId::EngineMessagesPerVertex, 5, scale);
        set
    }

    #[test]
    fn table_is_consistent() {
        for (i, id) in MetricId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(id.def().id, *id);
            assert_eq!(MetricId::from_name(id.def().name), Some(*id));
            assert!(!id.def().unit.is_empty());
            assert!(!id.def().paper.is_empty());
        }
        assert_eq!(MetricId::from_name("no_such_metric"), None);
    }

    #[test]
    fn absorb_aggregates_by_kind() {
        let mut reg = MetricsRegistry::new();
        reg.absorb(&sample_set(2));
        reg.absorb(&sample_set(7));
        assert_eq!(reg.counter(MetricId::EngineRounds), 27);
        assert_eq!(reg.counter(MetricId::EngineRuns), 2);
        assert_eq!(reg.gauge(MetricId::RecoveryRadiusMax), 7);
        let h = reg.histogram(MetricId::EngineHaltRound).unwrap();
        assert_eq!(h.total(), 2);
        let h = reg.histogram(MetricId::EngineMessagesPerVertex).unwrap();
        assert_eq!(h.total(), 9);
        assert!(reg.histogram(MetricId::EngineHaltRound).is_some());
        assert!(MetricsRegistry::new().is_empty());
        assert!(!reg.is_empty());
    }

    #[test]
    fn merge_matches_absorbing_in_sequence() {
        let mut serial = MetricsRegistry::new();
        serial.absorb(&sample_set(1));
        serial.absorb(&sample_set(4));
        let mut a = MetricsRegistry::new();
        a.absorb(&sample_set(1));
        let mut b = MetricsRegistry::new();
        b.absorb(&sample_set(4));
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn hist_order_is_canonical_regardless_of_touch_order() {
        // Touch the histograms in reverse table order…
        let set = MetricSet::new();
        set.observe(MetricId::EngineHaltRound, 1);
        set.observe(MetricId::EngineMessagesPerVertex, 1);
        let mut a = MetricsRegistry::new();
        a.absorb(&set);
        // …and in table order; the serialized bytes must agree.
        let set = MetricSet::new();
        set.observe(MetricId::EngineMessagesPerVertex, 1);
        set.observe(MetricId::EngineHaltRound, 1);
        let mut b = MetricsRegistry::new();
        b.absorb(&set);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn registry_round_trips_exactly() {
        let mut reg = MetricsRegistry::new();
        reg.absorb(&sample_set(3));
        let text = serde_json::to_string(&reg).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&text).unwrap();
        assert_eq!(back, reg);
        // Empty registries serialize to an empty object and round-trip.
        let empty = MetricsRegistry::new();
        let text = serde_json::to_string(&empty).unwrap();
        assert_eq!(text, "{}");
        let back: MetricsRegistry = serde_json::from_str(&text).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn unknown_metric_names_are_rejected() {
        assert!(serde_json::from_str::<MetricsRegistry>(r#"{"bogus": 1}"#).is_err());
    }

    #[test]
    fn doc_round_trips_and_pins_schema() {
        let mut metrics = MetricsRegistry::new();
        metrics.absorb(&sample_set(2));
        let doc = MetricsDoc {
            experiment: "E13".into(),
            mode: "quick".into(),
            metrics,
        };
        let text = serde_json::to_string(&doc).unwrap();
        let back: MetricsDoc = serde_json::from_str(&text).unwrap();
        assert_eq!(back, doc);
        let bad = text.replace("metrics/v1", "metrics/v0");
        assert!(serde_json::from_str::<MetricsDoc>(&bad).is_err());
    }
}
