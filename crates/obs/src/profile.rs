//! Span profiles and resource samples built from trace events.
//!
//! The trace plane already records `span_start`/`span_end` pairs with
//! monotonic wall-clock durations; this module folds them into per-phase
//! profiles. Spans nest, so each occurrence gets a **call path** — the
//! `;`-joined names of the enclosing spans plus its own — and two times:
//! *total* (the span's own duration) and *self* (total minus the time spent
//! in direct children). Self-times partition wall-clock exactly: summed over
//! every path of a trial they equal the trial's root-span totals, which is
//! what makes the folded-stack export (`path weight` lines, one per call
//! path) render as a well-formed flamegraph.

use crate::event::{EventData, TraceEvent};
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// One call path's aggregated timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The `;`-joined span names from root to this span.
    pub path: String,
    /// How many spans closed on this path.
    pub count: u64,
    /// Summed span durations in microseconds.
    pub total_micros: u64,
    /// Summed durations minus time in direct children.
    pub self_micros: u64,
}

/// A per-phase self-time/total-time profile aggregated from span events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanProfile {
    entries: Vec<ProfileEntry>,
    root_micros: u64,
    orphan_ends: u64,
    unclosed_starts: u64,
}

/// A span frame still open while scanning one trial's events.
struct Frame {
    name: String,
    child_micros: u64,
}

impl SpanProfile {
    /// Aggregate every span in `events` into a profile.
    ///
    /// Events are grouped by trial (span stacks never cross trials) and
    /// scanned in order. A `span_end` whose name does not match the
    /// innermost open span is counted as an orphan and skipped; spans still
    /// open when their trial's events run out are counted as unclosed.
    /// Both counts are zero for any trace the workspace's producers write.
    pub fn from_events(events: &[TraceEvent]) -> SpanProfile {
        let mut by_trial: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        for e in events {
            by_trial.entry(e.trial).or_default().push(e);
        }
        let mut paths: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        let mut profile = SpanProfile::default();
        for (_, trial_events) in by_trial {
            let mut stack: Vec<Frame> = Vec::new();
            for e in trial_events {
                match &e.data {
                    EventData::SpanStart { name } => stack.push(Frame {
                        name: name.clone(),
                        child_micros: 0,
                    }),
                    EventData::SpanEnd { name, micros } => {
                        if stack.last().is_none_or(|f| f.name != *name) {
                            profile.orphan_ends += 1;
                            continue;
                        }
                        let frame = stack.pop().expect("matched above");
                        let path = stack
                            .iter()
                            .map(|f| f.name.as_str())
                            .chain([name.as_str()])
                            .collect::<Vec<_>>()
                            .join(";");
                        // Span timings come from one monotonic clock, so a
                        // child's window is contained in its parent's; the
                        // saturation only guards rounding of truncated
                        // microsecond readings.
                        let self_micros = micros.saturating_sub(frame.child_micros);
                        let slot = paths.entry(path).or_insert((0, 0, 0));
                        slot.0 += 1;
                        slot.1 += micros;
                        slot.2 += self_micros;
                        match stack.last_mut() {
                            Some(parent) => parent.child_micros += micros,
                            None => profile.root_micros += micros,
                        }
                    }
                    _ => {}
                }
            }
            profile.unclosed_starts += stack.len() as u64;
        }
        profile.entries = paths
            .into_iter()
            .map(|(path, (count, total_micros, self_micros))| ProfileEntry {
                path,
                count,
                total_micros,
                self_micros,
            })
            .collect();
        profile
    }

    /// The aggregated call paths, sorted by path.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Summed duration of all root (depth-1) spans. Equals the sum of every
    /// entry's `self_micros` when the trace had no orphan or unclosed spans.
    pub fn root_micros(&self) -> u64 {
        self.root_micros
    }

    /// `span_end` events with no matching open span.
    pub fn orphan_ends(&self) -> u64 {
        self.orphan_ends
    }

    /// Spans still open at the end of their trial's events.
    pub fn unclosed_starts(&self) -> u64 {
        self.unclosed_starts
    }

    /// Whether no span was aggregated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The folded-stack export: one `path self_micros` line per call path,
    /// sorted by path — the format flamegraph renderers consume.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.path);
            out.push(' ');
            out.push_str(&e.self_micros.to_string());
            out.push('\n');
        }
        out
    }
}

/// A point-in-time memory sample read from `/proc/self/status`.
///
/// Allocation counts would need a global allocator hook, which the
/// workspace's `forbid(unsafe_code)` rules out, so the resident-set numbers
/// are the resource sample. Wall-clock-adjacent and inherently
/// nondeterministic: reported through telemetry files, never through the
/// canonical metrics document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSample {
    /// Peak resident set size (`VmHWM`) in bytes.
    pub peak_rss_bytes: u64,
    /// Current resident set size (`VmRSS`) in bytes.
    pub current_rss_bytes: u64,
}

impl ResourceSample {
    /// Sample the current process, or `None` where `/proc` is unavailable.
    pub fn capture() -> Option<ResourceSample> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        Some(ResourceSample {
            peak_rss_bytes: read_kb_line(&status, "VmHWM:")?,
            current_rss_bytes: read_kb_line(&status, "VmRSS:")?,
        })
    }
}

fn read_kb_line(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

impl Serialize for ResourceSample {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("peak_rss_bytes".into(), Value::U64(self.peak_rss_bytes)),
            (
                "current_rss_bytes".into(),
                Value::U64(self.current_rss_bytes),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trial: u64, seq: u64, data: EventData) -> TraceEvent {
        TraceEvent { trial, seq, data }
    }

    fn start(trial: u64, seq: u64, name: &str) -> TraceEvent {
        ev(trial, seq, EventData::SpanStart { name: name.into() })
    }

    fn end(trial: u64, seq: u64, name: &str, micros: u64) -> TraceEvent {
        ev(
            trial,
            seq,
            EventData::SpanEnd {
                name: name.into(),
                micros,
            },
        )
    }

    #[test]
    fn nested_spans_get_call_paths_and_self_times() {
        let events = vec![
            start(0, 0, "trial"),
            start(0, 1, "phase1"),
            end(0, 2, "phase1", 30),
            start(0, 3, "phase2"),
            end(0, 4, "phase2", 50),
            end(0, 5, "trial", 100),
        ];
        let p = SpanProfile::from_events(&events);
        let by_path: BTreeMap<&str, &ProfileEntry> =
            p.entries().iter().map(|e| (e.path.as_str(), e)).collect();
        assert_eq!(by_path.len(), 3);
        assert_eq!(by_path["trial"].total_micros, 100);
        assert_eq!(by_path["trial"].self_micros, 20);
        assert_eq!(by_path["trial;phase1"].self_micros, 30);
        assert_eq!(by_path["trial;phase2"].self_micros, 50);
        assert_eq!(p.root_micros(), 100);
        let self_sum: u64 = p.entries().iter().map(|e| e.self_micros).sum();
        assert_eq!(self_sum, p.root_micros());
        assert_eq!(p.orphan_ends(), 0);
        assert_eq!(p.unclosed_starts(), 0);
    }

    #[test]
    fn repeated_paths_aggregate_and_trials_are_independent() {
        let events = vec![
            start(0, 0, "trial"),
            end(0, 1, "trial", 10),
            start(1, 0, "trial"),
            start(1, 1, "inner"),
            end(1, 2, "inner", 4),
            end(1, 3, "trial", 9),
        ];
        let p = SpanProfile::from_events(&events);
        let trial = p.entries().iter().find(|e| e.path == "trial").unwrap();
        assert_eq!(trial.count, 2);
        assert_eq!(trial.total_micros, 19);
        assert_eq!(trial.self_micros, 15);
        assert_eq!(p.root_micros(), 19);
    }

    #[test]
    fn malformed_traces_are_counted_not_crashed() {
        let events = vec![
            end(0, 0, "never-opened", 5),
            start(0, 1, "left-open"),
            start(1, 0, "outer"),
            end(1, 1, "mismatched", 5),
            end(1, 2, "outer", 7),
        ];
        let p = SpanProfile::from_events(&events);
        assert_eq!(p.orphan_ends(), 2);
        assert_eq!(p.unclosed_starts(), 1);
        assert_eq!(p.root_micros(), 7);
    }

    #[test]
    fn folded_output_is_sorted_lines() {
        let events = vec![
            start(0, 0, "b"),
            end(0, 1, "b", 2),
            start(0, 2, "a"),
            end(0, 3, "a", 1),
        ];
        let p = SpanProfile::from_events(&events);
        assert_eq!(p.folded(), "a 1\nb 2\n");
        assert!(SpanProfile::default().folded().is_empty());
        assert!(SpanProfile::default().is_empty());
    }

    #[test]
    fn resource_sample_reads_proc() {
        // /proc is always present on the platforms CI runs on.
        let s = ResourceSample::capture().expect("/proc/self/status");
        assert!(s.peak_rss_bytes > 0);
        assert!(s.peak_rss_bytes >= s.current_rss_bytes);
    }

    #[test]
    fn kb_lines_parse() {
        let status = "Name:\tx\nVmHWM:\t  1234 kB\nVmRSS:\t  1000 kB\n";
        assert_eq!(read_kb_line(status, "VmHWM:"), Some(1234 * 1024));
        assert_eq!(read_kb_line(status, "VmRSS:"), Some(1024000));
        assert_eq!(read_kb_line(status, "VmPeak:"), None);
    }
}
