//! Where completed traces go.

use crate::event::TraceEvent;
use serde::Deserialize;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A consumer of trace events.
///
/// Sinks are driven single-threaded and in trial order (the trial harness
/// buffers per-trial events and flushes them after the parallel run), so
/// implementations never need interior synchronization.
pub trait TraceSink {
    /// Consume one event.
    fn record(&mut self, event: &TraceEvent);

    /// Push any buffered output to its destination.
    fn flush(&mut self) {}
}

/// Discards everything. Producers hold `Option<&Trace>`, so a disabled trace
/// never even reaches a sink — `NullSink` exists for call sites that want an
/// unconditional `&mut dyn TraceSink`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory, in arrival order.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The collected events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, keeping the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Writes events as buffered JSON lines (one event per line).
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Create (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(FileSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        // Trace output is best-effort telemetry: an I/O error here must not
        // abort the experiment producing it.
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Why a trace file failed to read back.
#[derive(Debug)]
pub enum TraceReadError {
    /// The file could not be opened or read.
    Io(std::io::Error),
    /// A line was not a valid trace event.
    Line {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read error: {e}"),
            TraceReadError::Line { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

/// Read a JSON-lines trace file back into events, validating every line
/// against the schema.
///
/// # Errors
///
/// [`TraceReadError::Io`] on I/O failure, [`TraceReadError::Line`] (with the
/// 1-based line number) on the first malformed line.
pub fn read_trace(path: &Path) -> Result<Vec<TraceEvent>, TraceReadError> {
    let file = File::open(path).map_err(TraceReadError::Io)?;
    let mut events = Vec::new();
    for (i, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(TraceReadError::Io)?;
        if line.is_empty() {
            continue;
        }
        let event = TraceEvent::from_str_line(&line).map_err(|message| TraceReadError::Line {
            line: i + 1,
            message,
        })?;
        events.push(event);
    }
    Ok(events)
}

impl TraceEvent {
    /// Parse one JSON line into an event.
    fn from_str_line(line: &str) -> Result<TraceEvent, String> {
        let value: serde::Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        TraceEvent::from_value(&value).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;

    fn event(seq: u64) -> TraceEvent {
        TraceEvent {
            trial: 2,
            seq,
            data: EventData::SpanStart {
                name: format!("s{seq}"),
            },
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        for s in 0..4 {
            sink.record(&event(s));
        }
        assert_eq!(sink.events().len(), 4);
        assert_eq!(sink.events()[3], event(3));
    }

    #[test]
    fn file_sink_round_trips_through_read_trace() {
        let mut path = std::env::temp_dir();
        path.push(format!("lcl-obs-sink-{}.jsonl", std::process::id()));
        {
            let mut sink = FileSink::create(&path).unwrap();
            for s in 0..3 {
                sink.record(&event(s));
            }
            sink.flush();
        }
        let events = read_trace(&path).unwrap();
        assert_eq!(events, vec![event(0), event(1), event(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_carry_their_line_number() {
        let mut path = std::env::temp_dir();
        path.push(format!("lcl-obs-bad-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"trial\":0,\"seq\":0,\"event\":\"span_start\",\"name\":\"a\"}\nnot json\n",
        )
        .unwrap();
        match read_trace(&path).unwrap_err() {
            TraceReadError::Line { line, .. } => assert_eq!(line, 2),
            other => panic!("expected line error, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
