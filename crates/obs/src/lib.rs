//! Observability plane for the LOCAL simulator.
//!
//! The paper's central quantities — graph shattering leaving `O(log n)`-size
//! components (Theorem 3), the live-vertex decay of Theorem 10 Phase 1, the
//! message volume of the round engine — are claims the experiments assert but
//! could not previously *watch happen*. This crate provides the pieces:
//!
//! * [`TraceEvent`] / [`EventData`]: structured events (run lifecycle,
//!   per-round progress, phase spans, recovery attempts, adversary-search
//!   iterations, histograms, and the sweep fabric's worker lifecycle —
//!   spawns, deaths, lease grants/completions/reclaims) with a flat
//!   JSON-lines encoding, ordered by `(trial, seq)`.
//! * [`Trace`]: a per-trial event buffer with a monotonically increasing
//!   sequence number and RAII [`Span`](trace::Span)s carrying monotonic
//!   wall-clock timings. Producers hold an `Option<&Trace>`, so the disabled
//!   hot path is a single branch — no allocation, no virtual call.
//! * [`TraceSink`]: where completed trials' events go — [`NullSink`],
//!   in-memory [`MemorySink`], or a buffered JSON-lines [`FileSink`].
//! * [`PowHistogram`]: fixed-bin power-of-two histograms with exact serde
//!   round-tripping and quantile estimates (messages per vertex, halt
//!   rounds, component sizes).
//! * [`MetricSet`] / [`MetricsRegistry`]: the metrics plane — typed
//!   counters, gauges, and histograms keyed by the static [`MetricId`]
//!   table, recorded per trial and folded in trial order into one mergeable
//!   [`MetricsDoc`] whose bytes are thread-count- and
//!   process-count-invariant.
//! * [`SpanProfile`] / [`ResourceSample`]: profiling — span events folded
//!   into per-phase self-time/total-time call-path profiles with a
//!   flamegraph-compatible folded export, plus peak-RSS samples.
//! * [`progress`] / [`ProgressMeter`]: stderr progress behind `--quiet`,
//!   from one-shot notes to a rate-limited meter with throughput and ETA.
//!
//! Everything except span timings (`micros` on `span_end` events) and
//! resource samples is deterministic: two runs with the same seeds produce
//! byte-identical traces after [`TraceEvent::scrubbed`] and byte-identical
//! metrics documents, regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod metrics;
mod profile;
mod progress;
mod sink;
mod trace;

pub use event::{EventData, TraceEvent};
pub use hist::PowHistogram;
pub use metrics::{
    MetricDef, MetricId, MetricKind, MetricSet, MetricsDoc, MetricsRegistry, METRICS_SCHEMA,
};
pub use profile::{ProfileEntry, ResourceSample, SpanProfile};
pub use progress::{progress, render_progress, ProgressMeter};
pub use sink::{read_trace, FileSink, MemorySink, NullSink, TraceReadError, TraceSink};
pub use trace::{Span, Trace};
