//! Fixed-bin power-of-two histograms.

use serde::{DeError, Deserialize, Serialize, Value};

/// Number of bins: one for zero plus one per possible bit length of a `u64`.
const BINS: usize = 65;

/// A power-of-two histogram over `u64` samples.
///
/// Bin 0 counts exact zeros; bin `b ≥ 1` counts values whose bit length is
/// `b`, i.e. the half-open doubling range `[2^(b-1), 2^b)`. The bin layout is
/// fixed, so merging histograms from different runs is exact, and the sparse
/// serde encoding (`{"total": t, "bins": [[bin, count], ...]}`) round-trips
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowHistogram {
    bins: [u64; BINS],
}

impl Default for PowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PowHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        PowHistogram { bins: [0; BINS] }
    }

    /// The bin a value falls into: 0 for 0, otherwise the bit length.
    pub fn bin_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` range of values a bin covers.
    pub fn bin_bounds(bin: usize) -> (u64, u64) {
        match bin {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.bins[Self::bin_of(value)] += 1;
    }

    /// Record `count` samples of the same value.
    pub fn record_n(&mut self, value: u64, count: u64) {
        self.bins[Self::bin_of(value)] += count;
    }

    /// Add every count of `other` into `self`.
    pub fn merge(&mut self, other: &PowHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(|&c| c == 0)
    }

    /// The count in one bin (0 for out-of-range bins).
    pub fn count(&self, bin: usize) -> u64 {
        self.bins.get(bin).copied().unwrap_or(0)
    }

    /// The non-empty bins, ascending, as `(bin, count)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
    }

    /// The highest non-empty bin, if any sample was recorded.
    pub fn max_bin(&self) -> Option<usize> {
        self.nonzero().last().map(|(b, _)| b)
    }

    /// An upper-bound quantile estimate: the high bound of the first bin
    /// whose cumulative count reaches rank `⌈q·total⌉`.
    ///
    /// Bins only know their `[lo, hi]` range, so the estimate is exact for
    /// bin 0 (zeros) and otherwise conservative by at most the bin's width
    /// (a factor `< 2`). `None` when the histogram is empty; `q` is clamped
    /// to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (bin, count) in self.nonzero() {
            cumulative += count;
            if cumulative >= rank {
                return Some(Self::bin_bounds(bin).1);
            }
        }
        None
    }
}

impl Serialize for PowHistogram {
    fn to_value(&self) -> Value {
        let bins: Vec<Value> = self
            .nonzero()
            .map(|(b, c)| Value::Array(vec![Value::U64(b as u64), Value::U64(c)]))
            .collect();
        Value::Object(vec![
            ("total".into(), Value::U64(self.total())),
            ("bins".into(), Value::Array(bins)),
        ])
    }
}

impl Deserialize for PowHistogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut h = PowHistogram::new();
        for entry in Vec::<(usize, u64)>::from_value(v.field("bins")?)? {
            let (bin, count) = entry;
            if bin >= BINS {
                return Err(DeError(format!("histogram bin {bin} out of range")));
            }
            h.bins[bin] += count;
        }
        let total = u64::from_value(v.field("total")?)?;
        if total != h.total() {
            return Err(DeError(format!(
                "histogram total {total} does not match bin sum {}",
                h.total()
            )));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_follow_bit_length() {
        assert_eq!(PowHistogram::bin_of(0), 0);
        assert_eq!(PowHistogram::bin_of(1), 1);
        assert_eq!(PowHistogram::bin_of(2), 2);
        assert_eq!(PowHistogram::bin_of(3), 2);
        assert_eq!(PowHistogram::bin_of(4), 3);
        assert_eq!(PowHistogram::bin_of(u64::MAX), 64);
        for bin in 0..BINS {
            let (lo, hi) = PowHistogram::bin_bounds(bin);
            assert_eq!(PowHistogram::bin_of(lo), bin);
            assert_eq!(PowHistogram::bin_of(hi), bin);
        }
    }

    #[test]
    fn record_merge_total() {
        let mut a = PowHistogram::new();
        a.record(0);
        a.record(5);
        a.record_n(7, 3);
        let mut b = PowHistogram::new();
        b.record(1024);
        b.merge(&a);
        assert_eq!(b.total(), 6);
        assert_eq!(b.count(0), 1);
        assert_eq!(b.count(3), 4);
        assert_eq!(b.count(11), 1);
        assert_eq!(b.max_bin(), Some(11));
        assert!(PowHistogram::new().is_empty());
    }

    #[test]
    fn serde_round_trips_exactly() {
        let mut h = PowHistogram::new();
        h.record(0);
        h.record_n(3, 9);
        h.record(u64::MAX);
        let text = serde_json::to_string(&h).unwrap();
        let back: PowHistogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
        // An empty histogram round-trips too.
        let e = PowHistogram::new();
        let back: PowHistogram = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn quantiles_come_from_bin_bounds() {
        assert_eq!(PowHistogram::new().quantile(0.5), None);
        let mut zeros = PowHistogram::new();
        zeros.record_n(0, 10);
        assert_eq!(zeros.quantile(0.5), Some(0));
        assert_eq!(zeros.quantile(0.99), Some(0));
        let mut h = PowHistogram::new();
        h.record_n(1, 50); // bin 1: [1, 1]
        h.record_n(6, 40); // bin 3: [4, 7]
        h.record_n(1000, 10); // bin 10: [512, 1023]
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(7));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.quantile(1.0), Some(1023));
        // Out-of-range arguments clamp instead of panicking.
        assert_eq!(h.quantile(7.0), Some(1023));
        assert_eq!(h.quantile(-1.0), Some(1));
    }

    #[test]
    fn single_bin_serde_round_trips_exactly() {
        let mut h = PowHistogram::new();
        h.record_n(42, 7); // one bin (bin 6) populated, nothing else
        let text = serde_json::to_string(&h).unwrap();
        assert_eq!(text, r#"{"total":7,"bins":[[6,7]]}"#);
        let back: PowHistogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    #[test]
    fn corrupt_totals_are_rejected() {
        let bad = r#"{"total": 5, "bins": [[1, 2]]}"#;
        assert!(serde_json::from_str::<PowHistogram>(bad).is_err());
        let oob = r#"{"total": 1, "bins": [[99, 1]]}"#;
        assert!(serde_json::from_str::<PowHistogram>(oob).is_err());
    }
}
