//! The constructive reductions between Δ-sinkless coloring and Δ-sinkless
//! orientation (the two directions behind Lemmas 1 and 2 of Brandt et al.,
//! which Theorem 4 iterates).
//!
//! On a Δ-regular graph with a proper Δ-edge coloring ψ:
//!
//! * **Coloring → orientation** ([`orientation_from_coloring`], Lemma 1's
//!   constructive core): orient each edge `e = {u, v}` *out of* the endpoint
//!   whose vertex color equals ψ(e). Every vertex sees each color exactly
//!   once among its incident edges, so `v`'s "color-matching" edge is
//!   out-going for `v` — unless both endpoints match, which is precisely a
//!   forbidden configuration of the coloring. Edges claimed by neither
//!   endpoint are oriented by an arbitrary local rule (here: toward the
//!   endpoint whose color is larger, tie impossible — equal colors with
//!   ψ(e) ∉ {them} is allowed and broken by port… see the code). Hence:
//!   a *valid* sinkless coloring yields a *valid* sinkless orientation, in
//!   one round.
//!
//! * **Orientation → coloring** ([`coloring_from_orientation`], Lemma 2's
//!   constructive core): each vertex picks the ψ-color of one of its
//!   out-edges. For any edge `e = {u, v}`, at most one endpoint has `e`
//!   out-going, and a proper edge coloring prevents the other endpoint from
//!   reproducing ψ(e) from a different out-edge — so *no* forbidden
//!   configuration can arise: a valid sinkless orientation yields a valid
//!   sinkless coloring, in one round.
//!
//! Together these make the round-elimination currency of the paper's lower
//! bound concrete and testable (see the round-trip tests below).

use local_graphs::edge_coloring::EdgeColoring;
use local_graphs::Graph;
use local_lcl::problems::Orientation;
use local_lcl::Labeling;

/// One-round reduction: a Δ-sinkless coloring into a Δ-sinkless orientation.
///
/// If `colors` is a valid sinkless coloring, the result is a valid sinkless
/// orientation. If `colors` contains forbidden configurations, the affected
/// edges fall back to the larger-color rule and the result may contain
/// sinks — mirroring how failure probability transfers in Lemma 1.
///
/// # Panics
///
/// Panics if the graph is not Δ-regular for `delta`, `psi` is not a
/// Δ-edge-coloring, or the label vector lengths mismatch.
pub fn orientation_from_coloring(
    g: &Graph,
    delta: usize,
    psi: &EdgeColoring,
    colors: &Labeling<usize>,
) -> Labeling<Orientation> {
    assert!(
        g.is_regular(delta),
        "sinkless problems live on Δ-regular graphs"
    );
    assert!(psi.num_colors() <= delta, "ψ must be a Δ-edge coloring");
    assert_eq!(colors.len(), g.n(), "one color per vertex");
    let mut labels: Vec<Orientation> = Vec::with_capacity(g.n());
    for v in g.vertices() {
        let ports: Vec<bool> = g
            .neighbors(v)
            .iter()
            .map(|nb| {
                let e_color = psi.color(nb.edge);
                let mine = *colors.get(v) == e_color;
                let theirs = *colors.get(nb.node) == e_color;
                match (mine, theirs) {
                    (true, false) => true,  // I claim it: out for me.
                    (false, true) => false, // They claim it: in for me.
                    (true, true) => {
                        // Forbidden configuration of the input coloring: no
                        // consistent claim. Fall through to the tie rule so
                        // the orientation stays edge-consistent; the failure
                        // surfaces as a possible sink, as in Lemma 1.
                        tie_rule(*colors.get(v), *colors.get(nb.node), v, nb.node)
                    }
                    (false, false) => tie_rule(*colors.get(v), *colors.get(nb.node), v, nb.node),
                }
            })
            .collect();
        labels.push(Orientation(ports));
    }
    Labeling::new(labels)
}

/// Edge-consistent arbitrary rule for unclaimed edges: out of the endpoint
/// with the larger color; for equal colors, out of the endpoint that is
/// "first" under a fixed symmetric comparison the two endpoints agree on.
///
/// Note the `v`/`u` indices are simulator bookkeeping standing in for any
/// locally-shared edge identifier (e.g. the pair of port numbers, which both
/// endpoints learn in one exchange); no global ID is required.
fn tie_rule(my_color: usize, their_color: usize, v: usize, u: usize) -> bool {
    if my_color != their_color {
        my_color > their_color
    } else {
        v > u
    }
}

/// One-round reduction: a Δ-sinkless orientation into a Δ-sinkless coloring.
///
/// Each vertex takes the ψ-color of its first out-edge. If `orientation` is
/// valid (consistent, no sinks), the output has *no* forbidden
/// configuration. Vertices that are sinks (invalid input) fall back to
/// color 0, and the failure may surface as a forbidden edge — mirroring
/// Lemma 2's probability transfer.
///
/// # Panics
///
/// Panics on the same structural mismatches as
/// [`orientation_from_coloring`].
pub fn coloring_from_orientation(
    g: &Graph,
    delta: usize,
    psi: &EdgeColoring,
    orientation: &Labeling<Orientation>,
) -> Labeling<usize> {
    assert!(
        g.is_regular(delta),
        "sinkless problems live on Δ-regular graphs"
    );
    assert!(psi.num_colors() <= delta, "ψ must be a Δ-edge coloring");
    assert_eq!(orientation.len(), g.n(), "one orientation per vertex");
    let labels: Vec<usize> = g
        .vertices()
        .map(|v| {
            let o = orientation.get(v);
            g.neighbors(v)
                .iter()
                .enumerate()
                .find(|(p, _)| o.outgoing(*p))
                .map_or(0, |(_, nb)| psi.color(nb.edge))
        })
        .collect();
    Labeling::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::sinkless_orientation;
    use local_graphs::edge_coloring::konig;
    use local_graphs::{analysis, gen};
    use local_lcl::problems::{SinklessColoring, SinklessOrientation};
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n_side: usize, d: usize, seed: u64) -> (Graph, EdgeColoring) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_bipartite_regular(n_side, d, &mut rng).unwrap();
        let psi = konig(&g).unwrap();
        (g, psi)
    }

    #[test]
    fn valid_orientation_yields_valid_coloring() {
        let (g, psi) = instance(40, 3, 1);
        // Get a valid sinkless orientation via the repair algorithm.
        let out = (0..20)
            .find_map(|seed| {
                let o = sinkless_orientation(&g, seed, 40).unwrap();
                (o.sinks == 0).then_some(o)
            })
            .expect("40 repair phases succeed quickly");
        SinklessOrientation::new(3)
            .validate(&g, &out.labels)
            .expect("valid orientation");
        let colors = coloring_from_orientation(&g, 3, &psi, &out.labels);
        SinklessColoring::new(3, psi)
            .validate(&g, &colors)
            .expect("Lemma 2 direction: no forbidden configuration can appear");
    }

    #[test]
    fn proper_coloring_yields_valid_orientation() {
        let (g, psi) = instance(32, 3, 2);
        // Bipartite ⇒ proper 2-coloring ⊂ Δ-coloring ⊂ sinkless coloring.
        let side = analysis::bipartition(&g).unwrap();
        let colors: Labeling<usize> = side.iter().map(|&s| s as usize).collect();
        SinklessColoring::new(3, psi.clone())
            .validate(&g, &colors)
            .expect("proper colorings are sinkless");
        let orientation = orientation_from_coloring(&g, 3, &psi, &colors);
        SinklessOrientation::new(3)
            .validate(&g, &orientation)
            .expect("Lemma 1 direction: valid coloring gives sinkless orientation");
    }

    #[test]
    fn round_trip_preserves_validity() {
        let (g, psi) = instance(24, 4, 3);
        let side = analysis::bipartition(&g).unwrap();
        let colors: Labeling<usize> = side.iter().map(|&s| s as usize).collect();
        let orientation = orientation_from_coloring(&g, 4, &psi, &colors);
        SinklessOrientation::new(4)
            .validate(&g, &orientation)
            .unwrap();
        let colors2 = coloring_from_orientation(&g, 4, &psi, &orientation);
        SinklessColoring::new(4, psi)
            .validate(&g, &colors2)
            .unwrap();
    }

    #[test]
    fn orientation_is_always_edge_consistent_even_on_bad_input() {
        // Garbage coloring in, edge-consistent orientation out (sinks may
        // appear; inconsistencies must not).
        let (g, psi) = instance(16, 3, 4);
        let garbage: Labeling<usize> = (0..g.n()).map(|v| v % 3).collect();
        let orientation = orientation_from_coloring(&g, 3, &psi, &garbage);
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                let mine = orientation.get(v).outgoing(p);
                let theirs = orientation.get(nb.node).outgoing(nb.back_port);
                assert_ne!(mine, theirs, "edge ({v},{}) inconsistent", nb.node);
            }
        }
    }

    #[test]
    fn failure_transfers_not_amplifies_in_lemma2_direction() {
        // Even from a *random* orientation (with sinks), the derived
        // coloring's forbidden-edge count is bounded by the sink count:
        // sinks are the only source of bad colors.
        let (g, psi) = instance(48, 3, 5);
        let o = sinkless_orientation(&g, 9, 0).unwrap(); // no repair: sinks likely
        let colors = coloring_from_orientation(&g, 3, &psi, &o.labels);
        let problem = SinklessColoring::new(3, psi);
        let violations = problem.violations(&g, &colors).len();
        // Each violation involves at least one fallback (sink) endpoint;
        // each sink can poison at most Δ edges with 2 reports each.
        assert!(
            violations <= 2 * 3 * o.sinks,
            "violations {violations} vs sinks {}",
            o.sinks
        );
    }
}
