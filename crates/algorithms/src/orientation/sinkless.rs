//! Randomized sinkless orientation with a tunable round budget.
//!
//! Algorithm: orient every edge by comparing independent random endpoint
//! values (round 1–2), then run repair phases — every sink picks a random
//! incident edge and demands it point outward, contested edges resolved by
//! fresh random priorities. The probability that a vertex is still a sink
//! decays rapidly with the number of phases; the truncation experiment (E5)
//! measures this decay, which is the executable face of the round-elimination
//! lower bound (failure cannot hit 0 in `o(log log n)` rounds by Theorem 4).
//!
//! Note: the `O(log log n)`-round algorithm of Ghaffari–Su relies on
//! distributed Lovász-local-lemma machinery; this repair algorithm is the
//! documented substitution (DESIGN.md) — it exercises the same problem and
//! exposes the same measurable failure/round tradeoff.

use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::problems::Orientation;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit, SimError};
use rand::Rng;

/// Public state: per-port direction beliefs plus this phase's per-port
/// signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkState {
    /// `dirs[p] = true` means "my port `p` is outgoing".
    dirs: Vec<bool>,
    /// Per-port signal: initial random draw (phase 0) or flip priority.
    signal: Vec<Option<u64>>,
}

/// The repair algorithm with a fixed phase budget.
#[derive(Debug, Clone)]
pub struct SinklessRepair {
    /// Number of repair phases (each 2 rounds) after the initial
    /// orientation (2 rounds).
    pub phases: u32,
}

impl SyncAlgorithm for SinklessRepair {
    type State = SkState;
    type Output = Orientation;

    fn init(&self, init: &NodeInit<'_>) -> SkState {
        SkState {
            dirs: vec![false; init.degree],
            signal: vec![None; init.degree],
        }
    }

    #[allow(clippy::needless_range_loop)] // ports index three parallel arrays
    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &SkState,
        neighbors: &[SkState],
    ) -> SyncStep<SkState, Orientation> {
        let deg = ctx.degree();
        let mut next = state.clone();
        if round == 1 {
            // Draw initial per-port values.
            for p in 0..deg {
                next.signal[p] = Some(ctx.rng().gen());
            }
            return SyncStep::Continue(next);
        }
        if round == 2 {
            // Orient: higher value exports the edge. (Ties leave both sides
            // believing "incoming" — consistent repair fixes them later via
            // flips; with 64-bit draws ties are negligible.)
            for p in 0..deg {
                let mine = state.signal[p];
                let theirs = neighbors[p].signal[ctx.back_port(p)];
                next.dirs[p] = match (mine, theirs) {
                    (Some(a), Some(b)) => a > b,
                    // A missing draw happens only in faulty runs (a dropped
                    // round-1 message leaves the stale init state visible):
                    // claim the edge outgoing; partial validation charges
                    // any inconsistency to the vertex with the damaged view.
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                next.signal[p] = None;
            }
            return SyncStep::Continue(next);
        }
        // Repair phases: odd rounds announce flips, even rounds resolve.
        let phase_round = round - 2;
        if phase_round % 2 == 1 {
            for p in 0..deg {
                next.signal[p] = None;
            }
            let is_sink = deg > 0 && !state.dirs.iter().any(|&d| d);
            if is_sink && phase_round / 2 < self.phases {
                let p = ctx.rng().gen_range(0..deg as u64) as usize;
                next.signal[p] = Some(ctx.rng().gen());
            }
            SyncStep::Continue(next)
        } else {
            for p in 0..deg {
                let mine = state.signal[p];
                let theirs = neighbors[p].signal[ctx.back_port(p)];
                match (mine, theirs) {
                    (Some(a), Some(b)) => next.dirs[p] = a > b,
                    (Some(_), None) => next.dirs[p] = true,
                    (None, Some(_)) => next.dirs[p] = false,
                    (None, None) => {}
                }
                next.signal[p] = None;
            }
            if phase_round / 2 >= self.phases {
                let out = Orientation(next.dirs.clone());
                return SyncStep::Decide(next, out);
            }
            SyncStep::Continue(next)
        }
    }
}

/// The outcome of a sinkless-orientation run.
#[derive(Debug, Clone)]
pub struct SinklessOutcome {
    /// Per-vertex orientation labels (consistent across edges by
    /// construction).
    pub labels: Labeling<Orientation>,
    /// Rounds used (2 initial + 2 per repair phase).
    pub rounds: u32,
    /// How many vertices ended as sinks (failures).
    pub sinks: usize,
}

/// Run the repair algorithm with the given phase budget.
///
/// # Errors
///
/// Engine round-limit errors (the protocol has a fixed schedule, so this
/// indicates a budget/max-round mismatch only).
pub fn sinkless_orientation(
    g: &Graph,
    seed: u64,
    phases: u32,
) -> Result<SinklessOutcome, SimError> {
    let algo = SinklessRepair { phases };
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &algo,
        &ExecSpec::rounds(2 * phases + 6),
    )
    .strict()?;
    let sinks = out
        .outputs
        .iter()
        .enumerate()
        .filter(|(v, o)| g.degree(*v) > 0 && !o.has_out_edge())
        .count();
    Ok(SinklessOutcome {
        labels: Labeling::new(out.outputs),
        rounds: out.rounds,
        sinks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::SinklessOrientation;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn orientations_are_consistent_across_edges() {
        let mut rng = StdRng::seed_from_u64(50);
        let g = gen::random_regular(40, 3, &mut rng).unwrap();
        let out = sinkless_orientation(&g, 1, 6).unwrap();
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                let mine = out.labels.get(v).outgoing(p);
                let theirs = out.labels.get(nb.node).outgoing(nb.back_port);
                assert_ne!(mine, theirs, "edge ({v},{}) inconsistent", nb.node);
            }
        }
    }

    #[test]
    fn enough_phases_remove_all_sinks_whp() {
        let mut rng = StdRng::seed_from_u64(51);
        let g = gen::random_regular(60, 3, &mut rng).unwrap();
        let mut solved = 0;
        for seed in 0..10 {
            let out = sinkless_orientation(&g, seed, 30).unwrap();
            if out.sinks == 0 {
                solved += 1;
                let problem = SinklessOrientation::new(3);
                assert!(problem.validate(&g, &out.labels).is_ok());
            }
        }
        assert!(
            solved >= 8,
            "30 phases should almost always succeed: {solved}/10"
        );
    }

    #[test]
    fn zero_phases_leave_sinks_sometimes() {
        let mut rng = StdRng::seed_from_u64(52);
        let g = gen::random_regular(100, 3, &mut rng).unwrap();
        let mut total_sinks = 0;
        for seed in 0..20 {
            total_sinks += sinkless_orientation(&g, seed, 0).unwrap().sinks;
        }
        // Expected sinks per run = n·2^-Δ = 12.5, over 20 runs ≈ 250.
        assert!(total_sinks > 50, "random orientation must produce sinks");
    }

    #[test]
    fn failure_decays_with_phases() {
        let mut rng = StdRng::seed_from_u64(53);
        let g = gen::random_regular(120, 3, &mut rng).unwrap();
        let sinks_at = |phases: u32| -> usize {
            (0..15)
                .map(|seed| sinkless_orientation(&g, seed, phases).unwrap().sinks)
                .sum()
        };
        let none = sinks_at(0);
        let many = sinks_at(12);
        assert!(
            many * 4 <= none.max(4),
            "12 repair phases must cut sinks sharply: {none} -> {many}"
        );
    }

    #[test]
    fn rounds_match_schedule() {
        let mut rng = StdRng::seed_from_u64(54);
        let g = gen::random_regular(20, 3, &mut rng).unwrap();
        let out = sinkless_orientation(&g, 7, 5).unwrap();
        assert_eq!(out.rounds, 2 + 2 * 5);
    }

    #[test]
    fn reproducible() {
        let mut rng = StdRng::seed_from_u64(55);
        let g = gen::random_regular(30, 3, &mut rng).unwrap();
        let a = sinkless_orientation(&g, 9, 4).unwrap();
        let b = sinkless_orientation(&g, 9, 4).unwrap();
        assert_eq!(a.sinks, b.sinks);
        assert_eq!(a.labels, b.labels);
    }
}
