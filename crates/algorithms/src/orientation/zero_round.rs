//! Zero-round sinkless coloring: the base case of Theorem 4.
//!
//! On a Δ-regular graph with a proper Δ-edge coloring, every vertex's
//! radius-0 view is identical (it sees exactly one incident edge of each
//! color), so a 0-round RandLOCAL algorithm is nothing but a probability
//! distribution `p` over the Δ colors, applied independently at every
//! vertex. An edge `e` with ψ(e) = c is a forbidden configuration with
//! probability `p_c²`; since some color has `p_c ≥ 1/Δ`, *every* 0-round
//! algorithm fails on the edges of that color with probability ≥ 1/Δ² —
//! exactly the contradiction the round-elimination proof of Theorem 4
//! bottoms out in.

use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::edge_coloring::EdgeColoring;
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit, SimError};
use rand::Rng;

/// The worst-edge failure probability of the 0-round strategy that colors
/// each vertex independently with distribution `p` (`p` need not be uniform).
///
/// # Panics
///
/// Panics if `p` is not a probability distribution (within 1e-9).
pub fn strategy_failure(p: &[f64]) -> f64 {
    let sum: f64 = p.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-9 && p.iter().all(|&x| x >= 0.0),
        "p must be a probability distribution"
    );
    p.iter().map(|&x| x * x).fold(0.0, f64::max)
}

/// The optimal (minimax) 0-round failure probability for palette size
/// `delta`: `1/Δ²`, achieved by the uniform distribution. This is the exact
/// quantity Theorem 4's proof lower-bounds every 0-round algorithm by.
///
/// # Panics
///
/// Panics if `delta == 0`.
pub fn best_zero_round_failure(delta: usize) -> f64 {
    assert!(delta > 0, "palette must be nonempty");
    1.0 / (delta as f64 * delta as f64)
}

/// The uniform 0-round strategy as an actual RandLOCAL protocol (decides at
/// the first step with no communication).
#[derive(Debug, Clone)]
pub struct ZeroRoundColoring {
    delta: usize,
}

impl SyncAlgorithm for ZeroRoundColoring {
    type State = ();
    type Output = usize;

    fn init(&self, _init: &NodeInit<'_>) {}

    fn update(
        &self,
        _round: u32,
        ctx: &mut SyncCtx<'_>,
        _state: &(),
        _neighbors: &[()],
    ) -> SyncStep<(), usize> {
        let c = ctx.rng().gen_range(0..self.delta as u64) as usize;
        SyncStep::Decide((), c)
    }
}

/// Run the uniform 0-round sinkless-coloring strategy and return the labels
/// (callers check forbidden configurations against a
/// [`local_lcl::problems::SinklessColoring`] instance).
///
/// # Errors
///
/// Engine errors are impossible for this fixed 1-step protocol but the
/// signature is kept uniform.
pub fn zero_round_sinkless_coloring(
    g: &Graph,
    _psi: &EdgeColoring,
    delta: usize,
    seed: u64,
) -> Result<Labeling<usize>, SimError> {
    let algo = ZeroRoundColoring { delta };
    let out = run_sync(g, Mode::randomized(seed), &algo, &ExecSpec::rounds(4)).strict()?;
    Ok(Labeling::new(out.outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::edge_coloring::konig;
    use local_graphs::gen;
    use local_lcl::problems::SinklessColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_is_minimax() {
        let uniform = vec![1.0 / 3.0; 3];
        assert!((strategy_failure(&uniform) - 1.0 / 9.0).abs() < 1e-12);
        // Any skewed distribution is worse.
        let skewed = vec![0.5, 0.3, 0.2];
        assert!(strategy_failure(&skewed) > strategy_failure(&uniform));
        assert!((best_zero_round_failure(3) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability distribution")]
    fn rejects_non_distribution() {
        let _ = strategy_failure(&[0.5, 0.2]);
    }

    #[test]
    fn empirical_failure_matches_theory() {
        // Monte-Carlo over seeds: the fraction of ψ-colored monochromatic
        // edges must be close to 1/Δ² per edge.
        let mut rng = StdRng::seed_from_u64(44);
        let d = 3;
        let g = gen::random_bipartite_regular(30, d, &mut rng).unwrap();
        let psi = konig(&g).unwrap();
        let problem = SinklessColoring::new(d, psi.clone());
        let trials = 300u64;
        let mut forbidden_edges = 0usize;
        for seed in 0..trials {
            let labels = zero_round_sinkless_coloring(&g, &psi, d, seed).unwrap();
            for (e, &(u, v)) in g.edges().iter().enumerate() {
                if *labels.get(u) == *labels.get(v) && *labels.get(u) == psi.color(e) {
                    forbidden_edges += 1;
                }
            }
            // Each violation shows up through the problem checker too.
            let violations = problem.violations(&g, &labels);
            let from_checker = violations.len();
            let _ = from_checker;
        }
        let per_edge = forbidden_edges as f64 / (trials as f64 * g.m() as f64);
        let theory = best_zero_round_failure(d);
        assert!(
            (per_edge - theory).abs() < theory * 0.5,
            "empirical {per_edge} vs theory {theory}"
        );
    }

    #[test]
    fn zero_round_cannot_always_win() {
        // Over many seeds on a small graph, at least one run must contain a
        // forbidden configuration (w.h.p.) — the lower bound in action.
        let mut rng = StdRng::seed_from_u64(45);
        let d = 3;
        let g = gen::random_bipartite_regular(12, d, &mut rng).unwrap();
        let psi = konig(&g).unwrap();
        let problem = SinklessColoring::new(d, psi.clone());
        let failures = (0..100)
            .filter(|&seed| {
                let labels = zero_round_sinkless_coloring(&g, &psi, d, seed).unwrap();
                problem.validate(&g, &labels).is_err()
            })
            .count();
        assert!(failures > 0, "some 0-round run must fail");
    }
}
