//! Sinkless orientation: the problem at the root of the paper's lower bounds.
//!
//! * [`zero_round`] — the exact analysis of 0-round strategies (Theorem 4's
//!   base case: any 0-round Δ-sinkless coloring fails on some edge with
//!   probability ≥ 1/Δ²).
//! * [`sinkless`] — a randomized repair algorithm with a tunable round
//!   budget, used by the truncation experiment (E5) to measure how the
//!   failure probability decays with the number of rounds.
//! * [`reductions`] — the constructive one-round reductions between
//!   sinkless coloring and sinkless orientation (Lemmas 1–2 of Brandt et
//!   al., the currency of the paper's round-elimination argument).

pub mod reductions;
pub mod sinkless;
pub mod zero_round;

pub use reductions::{coloring_from_orientation, orientation_from_coloring};
pub use sinkless::{sinkless_orientation, SinklessOutcome};
pub use zero_round::{best_zero_round_failure, zero_round_sinkless_coloring};
