//! Shattering-style self-healing: finish a faulty run's partial labeling.
//!
//! The paper's Theorem 10 structure — a randomized phase solves most
//! vertices, a deterministic finisher cleans up the small residual
//! components — is exactly a recovery algorithm if the "unsolved" vertices
//! are the ones a fault silenced. [`recover`] drives it generically:
//!
//! 1. The *core* is every unlabeled vertex plus every labeled vertex whose
//!    radius-1 view violates the problem (a dropped message can leave two
//!    halted neighbors mutually inconsistent, so non-`Halted` alone is not
//!    enough).
//! 2. The core is dilated by a boundary radius into a
//!    [`Residue`](local_model::Residue); everything outside stays *frozen*.
//! 3. A per-problem [`Finisher`] relabels only the residue, treating the
//!    frozen boundary labels as constraints.
//! 4. The finisher's labels are spliced into a complete labeling and gated
//!    by [`check_complete`]; on failure the radius escalates (1 → 2 → …)
//!    until [`RecoveryPolicy::max_radius`], and any vertex the failed
//!    splice left violating is absorbed into the core — so a defect the
//!    relabeling pushed just past the frontier is *surrounded* on the next
//!    attempt rather than chased by radius alone. Exhaustion reports a
//!    typed [`RecoveryError`].
//!
//! Six finishers cover the workload catalog: [`SinklessFinisher`]
//! (cycle-seeded BFS orientation), [`GreedyColoringFinisher`] (boundary-first
//! greedy Δ-coloring), [`LubyRestartFinisher`] (a fresh Luby run on the
//! residue, restricted away from frozen MIS members),
//! [`EdgeGreedyFinisher`] (edge recoloring against frozen port
//! announcements), [`RulingSetFinisher`] (retain-then-join sweeps at ruling
//! distance `k`), and [`DefectiveGreedyFinisher`] (defect-budgeted greedy
//! recoloring with an improving-flip cleanup).

use crate::mis::luby::Luby;
use crate::sync::run_sync;
use local_graphs::Graph;
use local_lcl::problems::Orientation;
use local_lcl::{check_complete, check_partial, Labeling, LclProblem};
use local_model::{
    derived_u64, AttemptRecord, Breach, Budget, ExecSpec, FaultPlan, Mode, RecoveryError, Residue,
};
use local_obs::{EventData, MetricId, MetricSet, Trace};
use std::collections::VecDeque;

/// How hard [`recover`] tries: the escalation ladder and the per-attempt
/// watchdog budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Largest boundary radius tried (attempt `k` uses radius `k`).
    pub max_radius: u32,
    /// Watchdog budget each finisher attempt runs under.
    pub budget: Budget,
}

// Hand-written because `Budget` serializes by hand (see `local_model`).
impl serde::Serialize for RecoveryPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("max_radius".to_string(), self.max_radius.to_value()),
            ("budget".to_string(), self.budget.to_value()),
        ])
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_radius: 3,
            budget: Budget::rounds(100_000),
        }
    }
}

/// A successful recovery: the complete labeling plus how much it cost.
#[derive(Debug, Clone)]
pub struct Recovery<L> {
    /// The complete labeling, verified by [`check_complete`].
    pub labels: Labeling<L>,
    /// Attempts consumed (0 if the partial labeling was already complete and
    /// valid; otherwise the radius of the successful attempt).
    pub attempts: u32,
    /// The boundary radius of the successful attempt (0 if none was needed).
    pub radius: u32,
    /// Core vertices of the successful attempt: the unlabeled/violating
    /// vertices the recovery started from, plus any violations absorbed
    /// from earlier failed splices.
    pub core_size: usize,
    /// Residue vertices relabeled by the successful attempt.
    pub residue_size: usize,
    /// Extra rounds the successful finisher attempt paid.
    pub extra_rounds: u32,
}

/// What a [`Finisher`] attempt produced: one label per residue member (in
/// local index order) and the rounds the finishing pass cost.
#[derive(Debug, Clone)]
pub struct Finish<L> {
    /// Labels for `residue.members()`, by local index.
    pub labels: Vec<L>,
    /// Round cost of the pass (BFS depth for the deterministic finishers,
    /// decided rounds for the Luby restart).
    pub rounds: u32,
}

/// A problem-specific deterministic finisher: relabel the residue so the
/// spliced labeling satisfies the problem, treating labels outside the
/// residue as frozen constraints.
pub trait Finisher<P: LclProblem> {
    /// Run one attempt at the given boundary radius.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Infeasible`] if the frozen boundary admits no valid
    /// completion at this radius (the driver escalates);
    /// [`RecoveryError::Budget`] if the attempt breached `budget` (the
    /// driver gives up).
    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<P::Label>],
        budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<P::Label>, RecoveryError>;

    /// A short name identifying the finisher in trace `recovery` events.
    fn name(&self) -> &'static str {
        "finisher"
    }
}

/// Recover a complete valid labeling from a partial one by escalating
/// residue repair (see the module docs for the drive cycle).
///
/// # Errors
///
/// [`RecoveryError::Budget`] as soon as any attempt breaches its budget;
/// otherwise the last attempt's [`RecoveryError::Infeasible`], or
/// [`RecoveryError::Exhausted`] if every radius spliced but failed
/// verification.
///
/// # Panics
///
/// Panics if `partial.len() != g.n()`.
pub fn recover<P, F>(
    problem: &P,
    g: &Graph,
    partial: &[Option<P::Label>],
    finisher: &F,
    policy: &RecoveryPolicy,
) -> Result<Recovery<P::Label>, RecoveryError>
where
    P: LclProblem,
    F: Finisher<P>,
{
    recover_traced(problem, g, partial, finisher, policy, None)
}

/// [`recover`] with an optional trace sink: every escalation attempt emits a
/// `recovery` event carrying the core/residue sizes, the finisher used, and
/// whether the spliced labeling verified.
///
/// # Errors
///
/// Same contract as [`recover`].
///
/// # Panics
///
/// Panics if `partial.len() != g.n()`.
pub fn recover_traced<P, F>(
    problem: &P,
    g: &Graph,
    partial: &[Option<P::Label>],
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
) -> Result<Recovery<P::Label>, RecoveryError>
where
    P: LclProblem,
    F: Finisher<P>,
{
    drive(problem, g, partial, finisher, policy, trace, None).0
}

/// [`recover_traced`] with an optional per-trial metric recorder: every
/// escalation attempt adds to the `recovery_*` counters (attempts, core and
/// residue sizes, ok/failed verdicts, extra rounds) and raises the
/// `recovery_radius_max` gauge.
///
/// # Errors
///
/// Same contract as [`recover`].
///
/// # Panics
///
/// Panics if `partial.len() != g.n()`.
pub fn recover_metered<P, F>(
    problem: &P,
    g: &Graph,
    partial: &[Option<P::Label>],
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
) -> Result<Recovery<P::Label>, RecoveryError>
where
    P: LclProblem,
    F: Finisher<P>,
{
    drive(problem, g, partial, finisher, policy, trace, metrics).0
}

/// The graceful end of a failed recovery: a typed census of what survived
/// plus the full escalation trail, instead of a bare [`RecoveryError`].
///
/// Adversarial trials consume this (via [`recover_report`]) so every fault
/// plan produces a *scored* row — a plan that wrecks recovery outright is
/// the most interesting one, not an error to discard. The census fields are
/// [`check_partial`] over the input partial labeling (what stands when
/// recovery gives up); `trail` is shared verbatim with
/// [`RecoveryError::Exhausted`].
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRun {
    /// Total vertices in the graph.
    pub n: usize,
    /// Vertices still carrying a label in the surviving partial labeling.
    pub labeled: usize,
    /// Labeled vertices whose full radius-1 view was checkable.
    pub checked: usize,
    /// Checked vertices whose view satisfied the problem.
    pub valid: usize,
    /// Labeled vertices skipped because a neighbor is unlabeled.
    pub skipped: usize,
    /// Residual violations among the checked vertices.
    pub violations: usize,
    /// The per-attempt escalation history (one record per radius tried).
    pub trail: Vec<AttemptRecord>,
    /// The terminal error recovery gave up with.
    pub error: RecoveryError,
}

impl DegradedRun {
    /// Fraction of vertices with a *valid* surviving label, in `[0, 1]`.
    pub fn surviving_fraction(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.valid as f64 / self.n as f64
        }
    }
}

// Hand-written because `AttemptRecord` and `RecoveryError` serialize by hand.
impl serde::Serialize for DegradedRun {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("n".to_string(), self.n.to_value()),
            ("labeled".to_string(), self.labeled.to_value()),
            ("checked".to_string(), self.checked.to_value()),
            ("valid".to_string(), self.valid.to_value()),
            ("skipped".to_string(), self.skipped.to_value()),
            ("violations".to_string(), self.violations.to_value()),
            (
                "surviving_fraction".to_string(),
                self.surviving_fraction().to_value(),
            ),
            ("trail".to_string(), self.trail.to_value()),
            ("error".to_string(), self.error.to_value()),
        ])
    }
}

/// [`recover_traced`] with graceful degradation: a failure comes back as a
/// scored [`DegradedRun`] report (surviving census + attempt trail + the
/// typed error) instead of a bare [`RecoveryError`], so callers that must
/// always produce a row — the adversary search above all — never special-case
/// the error path.
///
/// # Errors
///
/// Never fails in the `RecoveryError` sense; the `Err` arm *is* the report.
///
/// # Panics
///
/// Panics if `partial.len() != g.n()`.
pub fn recover_report<P, F>(
    problem: &P,
    g: &Graph,
    partial: &[Option<P::Label>],
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
) -> Result<Recovery<P::Label>, Box<DegradedRun>>
where
    P: LclProblem,
    F: Finisher<P>,
{
    let (result, trail) = drive(problem, g, partial, finisher, policy, trace, None);
    match result {
        Ok(rec) => Ok(rec),
        Err(error) => {
            let verdict = check_partial(problem, g, partial);
            Err(Box::new(DegradedRun {
                n: g.n(),
                labeled: partial.iter().filter(|l| l.is_some()).count(),
                checked: verdict.checked,
                valid: verdict.valid,
                skipped: verdict.skipped,
                violations: verdict.violations.len(),
                trail,
                error,
            }))
        }
    }
}

/// The escalation loop shared by [`recover_traced`] (which returns the bare
/// result) and [`recover_report`] (which folds the trail into a
/// [`DegradedRun`] on failure). Always returns the per-attempt trail, error
/// or not.
fn drive<P, F>(
    problem: &P,
    g: &Graph,
    partial: &[Option<P::Label>],
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
) -> (
    Result<Recovery<P::Label>, RecoveryError>,
    Vec<AttemptRecord>,
)
where
    P: LclProblem,
    F: Finisher<P>,
{
    assert_eq!(partial.len(), g.n(), "labeling must cover every vertex");
    let _span = trace.map(|t| t.span("recover"));
    let verdict = check_partial(problem, g, partial);
    let mut core = vec![false; g.n()];
    let mut core_size = 0usize;
    for (v, label) in partial.iter().enumerate() {
        if label.is_none() {
            core[v] = true;
            core_size += 1;
        }
    }
    for violation in &verdict.violations {
        if !core[violation.vertex] {
            core[violation.vertex] = true;
            core_size += 1;
        }
    }
    if core_size == 0 {
        let labels: Labeling<P::Label> = partial
            .iter()
            .map(|l| l.clone().expect("no holes when the core is empty"))
            .collect();
        return (
            Ok(Recovery {
                labels,
                attempts: 0,
                radius: 0,
                core_size: 0,
                residue_size: 0,
                extra_rounds: 0,
            }),
            Vec::new(),
        );
    }

    let emit = |attempt: u32, core_size: usize, residue_size: usize, ok: bool, extra: u32| {
        if let Some(ms) = metrics {
            ms.incr(MetricId::RecoveryAttempts);
            ms.incr(if ok {
                MetricId::RecoveryOk
            } else {
                MetricId::RecoveryFailed
            });
            ms.add(MetricId::RecoveryCore, core_size as u64);
            ms.add(MetricId::RecoveryResidue, residue_size as u64);
            ms.add(MetricId::RecoveryExtraRounds, u64::from(extra));
            ms.gauge_max(MetricId::RecoveryRadiusMax, u64::from(attempt));
        }
        if let Some(tr) = trace {
            tr.emit(EventData::Recovery {
                attempt,
                radius: attempt,
                core: core_size as u64,
                residue: residue_size as u64,
                finisher: finisher.name().to_string(),
                ok,
                extra_rounds: extra,
            });
        }
    };

    let mut last_violations = verdict.violations.len();
    let mut last_infeasible: Option<RecoveryError> = None;
    let mut trail: Vec<AttemptRecord> = Vec::new();
    let record = |trail: &mut Vec<AttemptRecord>,
                  attempt: u32,
                  core_size: usize,
                  residue_size: usize,
                  violations: usize,
                  breach: Option<local_model::Breach>,
                  infeasible: Option<String>| {
        trail.push(AttemptRecord {
            attempt,
            radius: attempt,
            core_size,
            residue_size,
            violations,
            breach,
            infeasible,
        });
    };
    for attempt in 1..=policy.max_radius {
        let residue = Residue::extract(g, &core, attempt);
        match finisher.finish(g, &residue, partial, &policy.budget, attempt) {
            Err(err @ RecoveryError::Budget { .. }) => {
                emit(attempt, core_size, residue.len(), false, 0);
                let breach = match err {
                    RecoveryError::Budget { breach, .. } => Some(breach),
                    _ => None,
                };
                record(
                    &mut trail,
                    attempt,
                    core_size,
                    residue.len(),
                    0,
                    breach,
                    None,
                );
                return (Err(err), trail);
            }
            Err(err) => {
                emit(attempt, core_size, residue.len(), false, 0);
                let reason = match &err {
                    RecoveryError::Infeasible { reason, .. } => Some(reason.clone()),
                    _ => None,
                };
                record(
                    &mut trail,
                    attempt,
                    core_size,
                    residue.len(),
                    0,
                    None,
                    reason,
                );
                last_infeasible = Some(err);
                continue;
            }
            Ok(finish) => {
                assert_eq!(
                    finish.labels.len(),
                    residue.len(),
                    "finisher must label every residue member"
                );
                let labels: Labeling<P::Label> = g
                    .vertices()
                    .map(|v| match residue.local(v) {
                        Some(i) => finish.labels[i].clone(),
                        None => partial[v]
                            .clone()
                            .expect("unlabeled vertices are in the core"),
                    })
                    .collect();
                let spliced = check_complete(problem, g, &labels);
                emit(
                    attempt,
                    core_size,
                    residue.len(),
                    spliced.violations.is_empty(),
                    finish.rounds,
                );
                record(
                    &mut trail,
                    attempt,
                    core_size,
                    residue.len(),
                    spliced.violations.len(),
                    None,
                    None,
                );
                if spliced.violations.is_empty() {
                    return (
                        Ok(Recovery {
                            labels,
                            attempts: attempt,
                            radius: attempt,
                            core_size,
                            residue_size: residue.len(),
                            extra_rounds: finish.rounds,
                        }),
                        trail,
                    );
                }
                // Shattering-style escalation: a defect the splice could not
                // clear — including one the finisher's own relabeling pushed
                // just past the residue frontier — joins the damaged core,
                // so the next attempt's residue is grown around it instead
                // of chasing it with radius alone.
                for violation in &spliced.violations {
                    if !core[violation.vertex] {
                        core[violation.vertex] = true;
                        core_size += 1;
                    }
                }
                last_violations = spliced.violations.len();
                last_infeasible = None;
            }
        }
    }
    let err = last_infeasible.unwrap_or(RecoveryError::Exhausted {
        attempts: policy.max_radius,
        max_radius: policy.max_radius,
        violations: last_violations,
        trail: trail.clone(),
    });
    (Err(err), trail)
}

fn infeasible(attempt: u32, reason: impl Into<String>) -> RecoveryError {
    RecoveryError::Infeasible {
        attempt,
        reason: reason.into(),
    }
}

/// Orient every residue member so it has an out-edge, consistently with the
/// frozen boundary: boundary edges are forced (the mirror of the frozen
/// side's declared direction), then a BFS from the already-satisfied members
/// orients free edges child → parent; components with no satisfied vertex get
/// a cycle oriented cyclically first. A residue tree component with no
/// possible out-edge is [`RecoveryError::Infeasible`] — escalation unfreezes
/// its boundary and typically supplies one.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinklessFinisher;

impl Finisher<local_lcl::problems::SinklessOrientation> for SinklessFinisher {
    fn name(&self) -> &'static str {
        "sinkless"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<Orientation>],
        budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<Orientation>, RecoveryError> {
        let m = residue.len();
        let mut out: Vec<Vec<Option<bool>>> = residue
            .members()
            .iter()
            .map(|&v| vec![None; g.degree(v)])
            .collect();
        let mut satisfied = vec![false; m];
        let mut depth = vec![0u32; m];

        // Boundary edges are forced: mirror the frozen side's declaration.
        for (i, &v) in residue.members().iter().enumerate() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                if residue.contains(nb.node) {
                    continue;
                }
                let frozen = partial[nb.node]
                    .as_ref()
                    .ok_or_else(|| infeasible(attempt, "unlabeled vertex outside the residue"))?;
                let theirs = *frozen.0.get(nb.back_port).ok_or_else(|| {
                    infeasible(
                        attempt,
                        format!("malformed frozen orientation at vertex {}", nb.node),
                    )
                })?;
                out[i][p] = Some(!theirs);
                if !theirs {
                    satisfied[i] = true;
                }
            }
        }

        let mut queue: VecDeque<usize> = (0..m).filter(|&i| satisfied[i]).collect();
        let mut rounds =
            drain_orientation_queue(g, residue, &mut queue, &mut out, &mut satisfied, &mut depth);

        // Components with no satisfied vertex need a cycle to host out-edges.
        let mut dfs_state: Vec<u8> = vec![0; m];
        let mut dfs_parent: Vec<Option<usize>> = vec![None; m];
        for start in 0..m {
            if satisfied[start] {
                continue;
            }
            let cycle = find_free_cycle(
                g,
                residue,
                &satisfied,
                &out,
                start,
                &mut dfs_state,
                &mut dfs_parent,
            )
            .ok_or_else(|| {
                infeasible(
                    attempt,
                    format!(
                        "residue component of vertex {} is a tree with no available out-edge",
                        residue.global(start)
                    ),
                )
            })?;
            // Orient the cycle cyclically: every cycle vertex gains an out-edge.
            let k = cycle.len();
            for t in 0..k {
                let a = cycle[t];
                let b = cycle[(t + 1) % k];
                let ga = residue.global(a);
                let gb = residue.global(b);
                let (p, nb) = g
                    .neighbors(ga)
                    .iter()
                    .enumerate()
                    .find(|(_, nb)| nb.node == gb)
                    .expect("cycle edges exist in the graph");
                out[a][p] = Some(true);
                out[b][nb.back_port] = Some(false);
                satisfied[a] = true;
                depth[a] = 0;
            }
            queue.extend(cycle);
            rounds = rounds.max(drain_orientation_queue(
                g,
                residue,
                &mut queue,
                &mut out,
                &mut satisfied,
                &mut depth,
            ));
        }

        // Leftover free edges (both endpoints already satisfied): orient
        // low-to-high local index, deterministically.
        for i in 0..m {
            let v = residue.global(i);
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                if out[i][p].is_some() {
                    continue;
                }
                let j = residue
                    .local(nb.node)
                    .expect("all boundary ports were forced");
                out[i][p] = Some(true);
                out[j][nb.back_port] = Some(false);
            }
        }

        if rounds > budget.max_rounds {
            return Err(RecoveryError::Budget {
                attempt,
                breach: Breach::Rounds,
            });
        }
        let labels = out
            .into_iter()
            .map(|ports| {
                Orientation(
                    ports
                        .into_iter()
                        .map(|d| d.expect("every port was oriented"))
                        .collect(),
                )
            })
            .collect();
        Ok(Finish { labels, rounds })
    }
}

/// BFS from the satisfied set: each free edge to an unsatisfied member is
/// oriented out of that member (toward the satisfied side), satisfying it.
/// Returns the maximum BFS depth reached.
fn drain_orientation_queue(
    g: &Graph,
    residue: &Residue,
    queue: &mut VecDeque<usize>,
    out: &mut [Vec<Option<bool>>],
    satisfied: &mut [bool],
    depth: &mut [u32],
) -> u32 {
    let mut max_depth = 0;
    while let Some(i) = queue.pop_front() {
        max_depth = max_depth.max(depth[i]);
        let v = residue.global(i);
        for (p, nb) in g.neighbors(v).iter().enumerate() {
            let Some(j) = residue.local(nb.node) else {
                continue;
            };
            if out[i][p].is_none() && !satisfied[j] {
                out[i][p] = Some(false);
                out[j][nb.back_port] = Some(true);
                satisfied[j] = true;
                depth[j] = depth[i] + 1;
                queue.push_back(j);
            }
        }
    }
    max_depth
}

/// Find a cycle in the free subgraph (unassigned member-member edges among
/// unsatisfied members) of `start`'s component, as a list of local indices in
/// cycle order. `None` means the component is a tree.
///
/// Iterative DFS that emulates recursion (a vertex stays "gray" while its
/// neighbor cursor is on the stack), so a gray non-parent neighbor is always
/// an ancestor and the parent chain yields a simple cycle.
fn find_free_cycle(
    g: &Graph,
    residue: &Residue,
    satisfied: &[bool],
    out: &[Vec<Option<bool>>],
    start: usize,
    state: &mut [u8],
    parent: &mut [Option<usize>],
) -> Option<Vec<usize>> {
    debug_assert_eq!(state[start], 0, "components are visited once");
    let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
    state[start] = 1;
    parent[start] = None;
    while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
        let gu = residue.global(u);
        let neighbors = g.neighbors(gu);
        let mut advanced = false;
        while *cursor < neighbors.len() {
            let p = *cursor;
            *cursor += 1;
            let nb = &neighbors[p];
            let Some(j) = residue.local(nb.node) else {
                continue;
            };
            if out[u][p].is_some() || satisfied[j] {
                continue;
            }
            match state[j] {
                0 => {
                    state[j] = 1;
                    parent[j] = Some(u);
                    stack.push((j, 0));
                    advanced = true;
                    break;
                }
                1 if parent[u] != Some(j) => {
                    // Back edge u → j: the cycle is j's descendants down to u.
                    let mut cycle = vec![u];
                    let mut w = u;
                    while w != j {
                        w = parent[w].expect("ancestor chain reaches the back edge target");
                        cycle.push(w);
                    }
                    return Some(cycle);
                }
                _ => {}
            }
        }
        if !advanced {
            state[u] = 2;
            stack.pop();
        }
    }
    None
}

/// Greedy coloring of the residue against the frozen boundary: members are
/// colored in BFS order seeded from the boundary-adjacent members (then from
/// the lowest-index member of any interior component), each taking the
/// smallest palette color unused by its already-colored and frozen
/// neighbors. Runs out of palette → [`RecoveryError::Infeasible`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyColoringFinisher {
    /// Palette size (colors `0..palette`).
    pub palette: usize,
}

impl Finisher<local_lcl::problems::VertexColoring> for GreedyColoringFinisher {
    fn name(&self) -> &'static str {
        "greedy-coloring"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<usize>],
        budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<usize>, RecoveryError> {
        let m = residue.len();
        let mut color: Vec<Option<usize>> = vec![None; m];
        let mut seen = vec![false; m];
        let mut depth = vec![0u32; m];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, &v) in residue.members().iter().enumerate() {
            if g.neighbors(v).iter().any(|nb| !residue.contains(nb.node)) {
                seen[i] = true;
                queue.push_back(i);
            }
        }
        let mut rounds = 0u32;
        let mut cursor = 0usize;
        loop {
            while let Some(i) = queue.pop_front() {
                rounds = rounds.max(depth[i]);
                let v = residue.global(i);
                let mut used = vec![false; self.palette];
                for nb in g.neighbors(v) {
                    let c = match residue.local(nb.node) {
                        Some(j) => color[j],
                        None => Some(*partial[nb.node].as_ref().ok_or_else(|| {
                            infeasible(attempt, "unlabeled vertex outside the residue")
                        })?),
                    };
                    if let Some(c) = c {
                        if c < self.palette {
                            used[c] = true;
                        }
                    }
                }
                let Some(c) = (0..self.palette).find(|&c| !used[c]) else {
                    return Err(infeasible(
                        attempt,
                        format!(
                            "no free color at vertex {v}: all {} palette colors used by neighbors",
                            self.palette
                        ),
                    ));
                };
                color[i] = Some(c);
                for nb in g.neighbors(v) {
                    if let Some(j) = residue.local(nb.node) {
                        if !seen[j] {
                            seen[j] = true;
                            depth[j] = depth[i] + 1;
                            queue.push_back(j);
                        }
                    }
                }
            }
            while cursor < m && seen[cursor] {
                cursor += 1;
            }
            if cursor >= m {
                break;
            }
            seen[cursor] = true;
            depth[cursor] = 0;
            queue.push_back(cursor);
        }
        if rounds > budget.max_rounds {
            return Err(RecoveryError::Budget {
                attempt,
                breach: Breach::Rounds,
            });
        }
        let labels = color
            .into_iter()
            .map(|c| c.expect("BFS reaches every member"))
            .collect();
        Ok(Finish { labels, rounds })
    }
}

/// Restart Luby's MIS on the residue: members adjacent to a frozen MIS
/// member are knocked out (decided `false`), the rest run
/// [`Luby`] restricted to the residue's induced subgraph under the attempt's
/// derived seed and the watchdog budget.
#[derive(Debug, Clone, Copy)]
pub struct LubyRestartFinisher {
    /// Seed the per-attempt Luby streams are derived from.
    pub seed: u64,
}

/// Stream tag for per-attempt Luby restart seeds.
const LUBY_RESTART_STREAM: u64 = 0x13F1;

impl Finisher<local_lcl::problems::Mis> for LubyRestartFinisher {
    fn name(&self) -> &'static str {
        "luby-restart"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<bool>],
        budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<bool>, RecoveryError> {
        let members = residue.members();
        // Retain the prior MIS wherever it is locally consistent (greedy in
        // ascending order among conflicting prior members). Vertices just
        // outside the residue keep whatever witness they had, so the
        // restart cannot strand them by rolling dice it had no reason to
        // roll.
        let mut retained = vec![false; members.len()];
        for (i, &v) in members.iter().enumerate() {
            if partial[v] != Some(true) {
                continue;
            }
            let blocked = g
                .neighbors(v)
                .iter()
                .any(|nb| match residue.local(nb.node) {
                    Some(j) => retained[j],
                    None => partial[nb.node] == Some(true),
                });
            if !blocked {
                retained[i] = true;
            }
        }
        // The restart only decides members that are neither retained nor
        // dominated by a true vertex (retained or frozen).
        let active: Vec<bool> = members
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                !retained[i]
                    && !g
                        .neighbors(v)
                        .iter()
                        .any(|nb| match residue.local(nb.node) {
                            Some(j) => retained[j],
                            None => partial[nb.node] == Some(true),
                        })
            })
            .collect();
        let algo = Luby::restricted(active);
        let seed = derived_u64(
            self.seed,
            LUBY_RESTART_STREAM.wrapping_add(u64::from(attempt)),
        );
        let run = run_sync(
            residue.graph(),
            Mode::randomized(seed),
            &algo,
            &ExecSpec::default()
                .with_budget(*budget)
                .with_faults(&FaultPlan::none()),
        );
        if let Some(breach) = run.breach {
            return Err(RecoveryError::Budget { attempt, breach });
        }
        let mut labels: Vec<bool> = run
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| retained[i] || *o.output().expect("unbreached fault-free runs halt"))
            .collect();
        // Deterministic maximality sweep: join any member left without a
        // certificate (ascending order preserves independence — a flip
        // gives every neighbor a witness, so no later flip can conflict).
        let mut swept = false;
        for i in 0..members.len() {
            if labels[i] {
                continue;
            }
            let has_witness =
                g.neighbors(members[i])
                    .iter()
                    .any(|nb| match residue.local(nb.node) {
                        Some(j) => labels[j],
                        None => partial[nb.node] == Some(true),
                    });
            if !has_witness {
                labels[i] = true;
                swept = true;
            }
        }
        Ok(Finish {
            labels,
            rounds: run.max_decided_round() + u32::from(swept),
        })
    }
}

/// Greedy edge recoloring of the residue against the frozen boundary.
///
/// Boundary edges are pinned: the frozen endpoint cannot change its
/// announcement, and edge consistency forces the residue endpoint to copy
/// it (a duplicated or out-of-palette pin is
/// [`RecoveryError::Infeasible`], escalating the radius). Interior edges
/// are then colored in ascending `(vertex, port)` order with the smallest
/// palette color free at both endpoints — on a graph of maximum degree Δ
/// an interior edge sees at most `2(Δ−1)` constraints, so any palette
/// `> 2(Δ−1)` never starves.
#[derive(Debug, Clone, Copy)]
pub struct EdgeGreedyFinisher {
    /// Palette size (colors `0..palette`).
    pub palette: usize,
}

impl Finisher<local_lcl::problems::EdgeKColoring> for EdgeGreedyFinisher {
    fn name(&self) -> &'static str {
        "edge-greedy"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<local_lcl::problems::PortColors>],
        _budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<local_lcl::problems::PortColors>, RecoveryError> {
        let members = residue.members();
        let mut out: Vec<Vec<Option<usize>>> = members
            .iter()
            .map(|&v| vec![None; g.neighbors(v).len()])
            .collect();
        // Boundary edges copy the frozen side's announcement.
        for (i, &v) in members.iter().enumerate() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                if residue.contains(nb.node) {
                    continue;
                }
                let frozen = partial[nb.node]
                    .as_ref()
                    .ok_or_else(|| infeasible(attempt, "unlabeled vertex outside the residue"))?;
                let &c = frozen.0.get(nb.back_port).ok_or_else(|| {
                    infeasible(
                        attempt,
                        format!("frozen neighbor {} mislabeled its ports", nb.node),
                    )
                })?;
                if c >= self.palette {
                    return Err(infeasible(
                        attempt,
                        format!("frozen edge color {c} outside palette {}", self.palette),
                    ));
                }
                if out[i].iter().flatten().any(|&c2| c2 == c) {
                    return Err(infeasible(
                        attempt,
                        format!("frozen boundary forces duplicate color {c} at vertex {v}"),
                    ));
                }
                out[i][p] = Some(c);
            }
        }
        // Interior edges: ascending (vertex, port), smallest color free at
        // both endpoints; each edge is colored at its first encounter.
        for i in 0..members.len() {
            let v = members[i];
            for p in 0..g.neighbors(v).len() {
                if out[i][p].is_some() {
                    continue;
                }
                let nb = &g.neighbors(v)[p];
                let j = residue
                    .local(nb.node)
                    .expect("interior edges keep both endpoints in the residue");
                let free = (0..self.palette).find(|c| {
                    !out[i].iter().flatten().any(|u| u == c)
                        && !out[j].iter().flatten().any(|u| u == c)
                });
                let Some(c) = free else {
                    return Err(infeasible(
                        attempt,
                        format!(
                            "no free color on edge {v}–{}: all {} palette colors used",
                            nb.node, self.palette
                        ),
                    ));
                };
                let back = nb.back_port;
                out[i][p] = Some(c);
                out[j][back] = Some(c);
            }
        }
        let labels = out
            .into_iter()
            .map(|ports| {
                local_lcl::problems::PortColors(
                    ports
                        .into_iter()
                        .map(|c| c.expect("every port is boundary-pinned or edge-colored"))
                        .collect(),
                )
            })
            .collect();
        Ok(Finish { labels, rounds: 0 })
    }
}

/// Deterministic ruling-set repair at ruling distance `k`: prior members
/// inside the residue are retained in ascending order wherever no member
/// (kept or frozen) is already within distance `k`, then a second ascending
/// sweep joins any residue vertex still lacking a member in its radius-`k`
/// ball. Both sweeps preserve pairwise distance `> k` by construction, so
/// the splice can only fail at frozen vertices whose former witness was
/// dropped — which the violation-absorption loop then pulls into the core.
#[derive(Debug, Clone, Copy)]
pub struct RulingSetFinisher {
    /// Ruling distance `k`.
    pub k: usize,
}

impl Finisher<local_lcl::problems::RulingSet> for RulingSetFinisher {
    fn name(&self) -> &'static str {
        "ruling-sweep"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<bool>],
        _budget: &Budget,
        _attempt: u32,
    ) -> Result<Finish<bool>, RecoveryError> {
        let members = residue.members();
        let mut labels = vec![false; members.len()];
        // Is any member (tentative residue labels or frozen) within
        // distance k of v?
        let covered = |labels: &[bool], v: usize| -> bool {
            let mut dist = vec![usize::MAX; g.n()];
            let mut queue = VecDeque::new();
            dist[v] = 0;
            queue.push_back(v);
            while let Some(u) = queue.pop_front() {
                if dist[u] == self.k {
                    continue;
                }
                for nb in g.neighbors(u) {
                    if dist[nb.node] != usize::MAX {
                        continue;
                    }
                    dist[nb.node] = dist[u] + 1;
                    let member = match residue.local(nb.node) {
                        Some(j) => labels[j],
                        None => partial[nb.node] == Some(true),
                    };
                    if member {
                        return true;
                    }
                    queue.push_back(nb.node);
                }
            }
            false
        };
        // Retain prior members first — they are what the frozen boundary's
        // non-members may be counting on as witnesses.
        for (i, &v) in members.iter().enumerate() {
            if partial[v] == Some(true) && !covered(&labels, v) {
                labels[i] = true;
            }
        }
        // Then rule everything still bare.
        for (i, &v) in members.iter().enumerate() {
            if !labels[i] && !covered(&labels, v) {
                labels[i] = true;
            }
        }
        Ok(Finish { labels, rounds: 0 })
    }
}

/// Defect-budgeted greedy recoloring: each residue vertex (ascending) takes
/// the color minimizing its monochromatic degree against frozen and
/// already-assigned neighbors, skipping colors that would push a frozen
/// neighbor past its defect budget; an improving-flip loop then settles any
/// members the later assignments made overfull. Every flip strictly
/// decreases the spliced monochromatic edge count, so the loop terminates
/// within `m` sweeps.
#[derive(Debug, Clone, Copy)]
pub struct DefectiveGreedyFinisher {
    /// Palette size (colors `0..colors`).
    pub colors: usize,
    /// Tolerated monochromatic degree.
    pub defect: usize,
}

impl Finisher<local_lcl::problems::DefectiveColoring> for DefectiveGreedyFinisher {
    fn name(&self) -> &'static str {
        "defective-greedy"
    }

    fn finish(
        &self,
        g: &Graph,
        residue: &Residue,
        partial: &[Option<usize>],
        _budget: &Budget,
        attempt: u32,
    ) -> Result<Finish<usize>, RecoveryError> {
        let members = residue.members();
        let mut assigned: Vec<Option<usize>> = vec![None; members.len()];
        let color_of = |assigned: &[Option<usize>], u: usize| -> Option<usize> {
            match residue.local(u) {
                Some(j) => assigned[j],
                None => partial[u],
            }
        };
        let mono = |assigned: &[Option<usize>], u: usize, c: usize| -> usize {
            g.neighbors(u)
                .iter()
                .filter(|nb| color_of(assigned, nb.node) == Some(c))
                .count()
        };
        // Would giving v color c push a frozen neighbor past its budget?
        let safe = |assigned: &[Option<usize>], v: usize, c: usize| -> bool {
            g.neighbors(v).iter().all(|nb| {
                residue.contains(nb.node)
                    || partial[nb.node] != Some(c)
                    || mono(assigned, nb.node, c) < self.defect
            })
        };
        for i in 0..members.len() {
            let v = members[i];
            let choice = (0..self.colors)
                .filter(|&c| safe(&assigned, v, c))
                .map(|c| (mono(&assigned, v, c), c))
                .min();
            let Some((_, c)) = choice else {
                return Err(infeasible(
                    attempt,
                    format!("no defect-safe color at vertex {v}"),
                ));
            };
            assigned[i] = Some(c);
        }
        // Improving flips until the defect bound holds on every member.
        let mut sweeps = g.m() + 2;
        loop {
            let mut flipped = false;
            let mut done = true;
            for i in 0..members.len() {
                let v = members[i];
                let c = assigned[i].expect("the greedy pass assigned every member");
                let cur = mono(&assigned, v, c);
                if cur <= self.defect {
                    continue;
                }
                done = false;
                let best = (0..self.colors)
                    .filter(|&cc| cc != c && safe(&assigned, v, cc))
                    .map(|cc| (mono(&assigned, v, cc), cc))
                    .min();
                if let Some((cnt, cc)) = best {
                    if cnt < cur {
                        assigned[i] = Some(cc);
                        flipped = true;
                    }
                }
            }
            if done {
                break;
            }
            if !flipped || sweeps == 0 {
                return Err(infeasible(
                    attempt,
                    "defective recoloring stalled above the defect bound",
                ));
            }
            sweeps -= 1;
        }
        let labels = assigned
            .into_iter()
            .map(|c| c.expect("the greedy pass assigned every member"))
            .collect();
        Ok(Finish { labels, rounds: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orientation::sinkless::SinklessRepair;
    use local_graphs::gen;
    use local_lcl::problems::{
        DefectiveColoring, EdgeKColoring, Mis, PortColors, RulingSet, SinklessOrientation,
        VertexColoring,
    };
    use local_model::{FaultSpec, Outcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_fully_valid<P: LclProblem>(problem: &P, g: &Graph, labels: &Labeling<P::Label>) {
        let verdict = check_complete(problem, g, labels);
        assert!(
            verdict.violations.is_empty(),
            "spliced labeling must be valid, got {:?}",
            verdict.violations.first()
        );
        assert_eq!(verdict.checked, g.n());
    }

    #[test]
    fn valid_complete_labeling_needs_no_attempts() {
        let g = gen::cycle(6);
        let partial: Vec<Option<usize>> = (0..6).map(|v| Some(v % 2)).collect();
        let rec = recover(
            &VertexColoring::new(3),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 3 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.attempts, 0);
        assert_eq!(rec.core_size, 0);
        assert_eq!(rec.extra_rounds, 0);
    }

    #[test]
    fn coloring_holes_are_repaired_against_the_frozen_boundary() {
        let g = gen::path(7);
        let mut partial: Vec<Option<usize>> = (0..7).map(|v| Some(v % 2)).collect();
        partial[3] = None;
        let rec = recover(
            &VertexColoring::new(2),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.core_size, 1);
        assert_eq!(rec.residue_size, 3);
        assert_fully_valid(&VertexColoring::new(2), &g, &rec.labels);
        // Frozen vertices keep their labels.
        assert_eq!(rec.labels.as_slice()[0], 0);
        assert_eq!(rec.labels.as_slice()[6], 0);
    }

    #[test]
    fn coloring_violations_join_the_core() {
        // Adjacent equal colors with no holes: both endpoints must be relabeled.
        let g = gen::path(5);
        let partial: Vec<Option<usize>> = vec![Some(0), Some(1), Some(1), Some(0), Some(1)];
        let rec = recover(
            &VertexColoring::new(3),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 3 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.core_size, 2);
        assert!(rec.attempts >= 1);
        assert_fully_valid(&VertexColoring::new(3), &g, &rec.labels);
    }

    #[test]
    fn starved_palette_escalates_then_errors_typed() {
        // Path 0-1-2-3-4 with palette {0,1}, hole at 2. At radius 1 the
        // members {1,2,3} are pinched by the frozen endpoints (0 and 4 carry
        // different colors), and the boundary-first greedy order paints 1 → 1
        // and 3 → 0, starving vertex 2. Radius 2 unfreezes everything.
        let g = gen::path(5);
        let partial: Vec<Option<usize>> = vec![Some(0), Some(1), None, Some(0), Some(1)];
        let err = recover(
            &VertexColoring::new(2),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 2 },
            &RecoveryPolicy {
                max_radius: 1,
                ..RecoveryPolicy::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Infeasible { attempt: 1, .. }));
        // Escalation to radius 2 succeeds.
        let rec = recover(
            &VertexColoring::new(2),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.attempts, 2);
        assert_fully_valid(&VertexColoring::new(2), &g, &rec.labels);
    }

    #[test]
    fn sinkless_recovers_a_crashed_cycle_vertex() {
        let n = 12;
        let g = gen::cycle(n);
        // Orient the cycle forward, then hole out two adjacent vertices.
        let mut partial: Vec<Option<Orientation>> = (0..n)
            .map(|v| {
                Some(Orientation(
                    g.neighbors(v)
                        .iter()
                        .map(|nb| nb.node == (v + 1) % n)
                        .collect(),
                ))
            })
            .collect();
        partial[4] = None;
        partial[5] = None;
        let rec = recover(
            &SinklessOrientation::new(2),
            &g,
            &partial,
            &SinklessFinisher,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.core_size, 2);
        assert_fully_valid(&SinklessOrientation::new(2), &g, &rec.labels);
    }

    #[test]
    fn sinkless_whole_graph_residue_uses_a_cycle() {
        // Everything crashed: the residue is the whole cycle, no frozen
        // boundary at all — the finisher must find and orient a cycle.
        let g = gen::cycle(9);
        let partial: Vec<Option<Orientation>> = vec![None; 9];
        let rec = recover(
            &SinklessOrientation::new(2),
            &g,
            &partial,
            &SinklessFinisher,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.core_size, 9);
        assert_eq!(rec.residue_size, 9);
        assert_fully_valid(&SinklessOrientation::new(2), &g, &rec.labels);
    }

    #[test]
    fn sinkless_tree_component_is_infeasible() {
        // A path is a tree: with every vertex unlabeled there is no way to
        // avoid a sink, at any radius. (The *problem* is also undefined on
        // paths — degrees differ — but the finisher fails first, typed.)
        let g = gen::path(4);
        let partial: Vec<Option<Orientation>> = vec![None; 4];
        let err = recover(
            &SinklessOrientation::new(2),
            &g,
            &partial,
            &SinklessFinisher,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Infeasible { .. }));
        assert!(err.to_string().contains("tree"));
    }

    #[test]
    fn mis_restart_repairs_crashed_vertices() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnp(40, 0.15, &mut rng);
        let plan = local_model::FaultPlan::sample(&g, &FaultSpec::none().with_crash(0.2, 8), 5);
        let run = run_sync(
            &g,
            Mode::randomized(3),
            &Luby::new(),
            &ExecSpec::rounds(400).with_faults(&plan),
        );
        let partial: Vec<Option<bool>> = run.outcomes.iter().map(|o| o.output().copied()).collect();
        let rec = recover(
            &Mis::new(),
            &g,
            &partial,
            &LubyRestartFinisher { seed: 77 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_fully_valid(&Mis::new(), &g, &rec.labels);
    }

    #[test]
    fn budget_breach_aborts_instead_of_escalating() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnp(30, 0.2, &mut rng);
        let partial: Vec<Option<bool>> = vec![None; 30];
        // A zero-round budget cannot even run Luby's first phase.
        let err = recover(
            &Mis::new(),
            &g,
            &partial,
            &LubyRestartFinisher { seed: 1 },
            &RecoveryPolicy {
                max_radius: 3,
                budget: Budget::rounds(0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Budget { attempt: 1, .. }));
    }

    #[test]
    fn sinkless_repair_pipeline_end_to_end() {
        // The E12/E13 shape: run the sinkless repair algorithm under crashes,
        // then recover the survivors' partial orientation to a complete one.
        let mut rng = StdRng::seed_from_u64(0xE13);
        let g = gen::random_regular(30, 3, &mut rng).expect("feasible");
        let plan = local_model::FaultPlan::sample(&g, &FaultSpec::none().with_crash(0.1, 20), 9);
        let run = run_sync(
            &g,
            Mode::randomized(21),
            &SinklessRepair { phases: 20 },
            &ExecSpec::rounds(46).with_faults(&plan),
        );
        let partial: Vec<Option<Orientation>> =
            run.outcomes.iter().map(|o| o.output().cloned()).collect();
        let rec = recover(
            &SinklessOrientation::new(3),
            &g,
            &partial,
            &SinklessFinisher,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(rec.attempts <= 3);
        assert_fully_valid(&SinklessOrientation::new(3), &g, &rec.labels);
    }

    #[test]
    fn exhaustion_reports_attempts_and_violations() {
        struct Hopeless;
        impl Finisher<VertexColoring> for Hopeless {
            fn finish(
                &self,
                _g: &Graph,
                residue: &Residue,
                _partial: &[Option<usize>],
                _budget: &Budget,
                _attempt: u32,
            ) -> Result<Finish<usize>, RecoveryError> {
                // Monochrome: always invalid on an edgeful residue.
                Ok(Finish {
                    labels: vec![0; residue.len()],
                    rounds: 0,
                })
            }
        }
        let g = gen::cycle(6);
        let partial: Vec<Option<usize>> = vec![None; 6];
        let err = recover(
            &VertexColoring::new(3),
            &g,
            &partial,
            &Hopeless,
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RecoveryError::Exhausted {
                attempts: 3,
                max_radius: 3,
                ..
            }
        ));
        // Satellite contract: exhaustion carries the full per-attempt trail.
        let RecoveryError::Exhausted { trail, .. } = err else {
            unreachable!()
        };
        assert_eq!(trail.len(), 3);
        for (i, rec) in trail.iter().enumerate() {
            assert_eq!(rec.attempt, i as u32 + 1);
            assert_eq!(rec.radius, i as u32 + 1);
            assert!(rec.violations > 0, "every splice stayed monochrome");
            assert_eq!(rec.breach, None);
            assert_eq!(rec.infeasible, None);
        }
        // The whole cycle is core by attempt 2 (violations absorbed).
        assert!(trail[1].core_size >= trail[0].core_size);

        // The graceful path shares the identical trail and censuses the
        // surviving labeling (all holes here: nothing survives).
        let report = recover_report(
            &VertexColoring::new(3),
            &g,
            &partial,
            &Hopeless,
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        assert_eq!(report.trail, trail);
        assert_eq!(report.n, 6);
        assert_eq!(report.labeled, 0);
        assert_eq!(report.checked, 0);
        assert_eq!(report.valid, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.surviving_fraction(), 0.0);
        assert!(matches!(report.error, RecoveryError::Exhausted { .. }));
    }

    #[test]
    fn recover_report_passes_successes_through() {
        let g = gen::path(7);
        let mut partial: Vec<Option<usize>> = (0..7).map(|v| Some(v % 2)).collect();
        partial[3] = None;
        let rec = recover_report(
            &VertexColoring::new(2),
            &g,
            &partial,
            &GreedyColoringFinisher { palette: 2 },
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(rec.attempts, 1);
        assert_fully_valid(&VertexColoring::new(2), &g, &rec.labels);
    }

    #[test]
    fn recover_report_census_counts_survivors() {
        // Sinkless on a path is hopeless, but the frozen survivors census
        // must still be taken: freeze a valid orientation on 0..2, hole the
        // rest. (Vertex 2's neighbor 3 is unlabeled, so 2 is skipped, 0 and
        // 1 check; vertex 1 points at 2 so both are valid.)
        let g = gen::path(6);
        let mut partial: Vec<Option<Orientation>> = vec![None; 6];
        partial[0] = Some(Orientation(vec![true]));
        partial[1] = Some(Orientation(vec![false, true]));
        partial[2] = Some(Orientation(vec![false, true]));
        let report = recover_report(
            &SinklessOrientation::new(2),
            &g,
            &partial,
            &SinklessFinisher,
            &RecoveryPolicy::default(),
            None,
        )
        .unwrap_err();
        assert_eq!(report.n, 6);
        assert_eq!(report.labeled, 3);
        assert_eq!(report.checked + report.skipped, report.n);
        assert!(report.checked <= report.labeled);
        assert!(report.valid <= report.checked);
        assert!(!report.trail.is_empty());
        assert!(matches!(report.error, RecoveryError::Infeasible { .. }));
        let infeasible = report
            .trail
            .iter()
            .filter(|r| r.infeasible.is_some())
            .count();
        assert_eq!(infeasible, report.trail.len());
        // The report serializes flat, with the error kind tagged.
        let json = serde_json::to_string(&*report).unwrap();
        assert!(json.contains("\"trail\":["));
        assert!(json.contains("\"kind\":\"infeasible\""));
    }

    #[test]
    fn budget_breach_lands_in_the_trail() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnp(30, 0.2, &mut rng);
        let partial: Vec<Option<bool>> = vec![None; 30];
        let report = recover_report(
            &Mis::new(),
            &g,
            &partial,
            &LubyRestartFinisher { seed: 1 },
            &RecoveryPolicy {
                max_radius: 3,
                budget: Budget::rounds(0),
            },
            None,
        )
        .unwrap_err();
        assert_eq!(report.trail.len(), 1);
        assert_eq!(report.trail[0].breach, Some(Breach::Rounds));
        assert!(matches!(report.error, RecoveryError::Budget { .. }));
    }

    #[test]
    fn cut_vertices_recover_too() {
        // Cut a run early so some vertices are Cut (not Crashed); recovery
        // treats both the same.
        let g = gen::cycle(8);
        let run = run_sync(
            &g,
            Mode::randomized(5),
            &Luby::new(),
            &ExecSpec::rounds(1).with_faults(&FaultPlan::none()),
        );
        assert!(run.outcomes.iter().any(Outcome::is_cut));
        let partial: Vec<Option<bool>> = run.outcomes.iter().map(|o| o.output().copied()).collect();
        let rec = recover(
            &Mis::new(),
            &g,
            &partial,
            &LubyRestartFinisher { seed: 8 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_fully_valid(&Mis::new(), &g, &rec.labels);
    }

    #[test]
    fn edge_holes_are_repaired_against_frozen_ports() {
        // Path edges alternate colors 0/1; hole out the middle vertex. The
        // finisher must copy the frozen announcements on boundary edges.
        let g = gen::path(5);
        let colors: Vec<usize> = (0..g.m()).map(|e| e % 2).collect();
        let full = EdgeKColoring::labels_from_edge_colors(&g, &colors);
        let mut partial: Vec<Option<PortColors>> =
            full.as_slice().iter().cloned().map(Some).collect();
        partial[2] = None;
        let rec = recover(
            &EdgeKColoring::new(3),
            &g,
            &partial,
            &EdgeGreedyFinisher { palette: 3 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.core_size, 1);
        assert_fully_valid(&EdgeKColoring::new(3), &g, &rec.labels);
        // Frozen vertices keep their announcements.
        assert_eq!(rec.labels.as_slice()[0], PortColors(vec![0]));
    }

    #[test]
    fn edge_palette_starvation_surfaces_typed() {
        // A star center has degree 3: palette 2 cannot edge-color it at any
        // radius, so every attempt's greedy pass starves and the last typed
        // infeasibility surfaces. Palette 3 succeeds from all-holes.
        let g = gen::star(4);
        let partial: Vec<Option<PortColors>> = vec![None; 4];
        let err = recover(
            &EdgeKColoring::new(2),
            &g,
            &partial,
            &EdgeGreedyFinisher { palette: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RecoveryError::Infeasible { .. }));
        assert!(err.to_string().contains("no free color"));
        let rec = recover(
            &EdgeKColoring::new(3),
            &g,
            &partial,
            &EdgeGreedyFinisher { palette: 3 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_fully_valid(&EdgeKColoring::new(3), &g, &rec.labels);
    }

    #[test]
    fn ruling_set_holes_are_rejoined() {
        // C9 ruled by {0, 3, 6} at k = 2; hole out member 3. The sweep must
        // re-rule vertices 2..4 without crowding the frozen members.
        let g = gen::cycle(9);
        let mut partial: Vec<Option<bool>> = (0..9).map(|v| Some(v % 3 == 0)).collect();
        partial[3] = None;
        let rec = recover(
            &RulingSet::new(2),
            &g,
            &partial,
            &RulingSetFinisher { k: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_fully_valid(&RulingSet::new(2), &g, &rec.labels);
    }

    #[test]
    fn ruling_set_finisher_handles_all_holes() {
        let g = gen::cycle(11);
        let partial: Vec<Option<bool>> = vec![None; 11];
        let rec = recover(
            &RulingSet::new(2),
            &g,
            &partial,
            &RulingSetFinisher { k: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.core_size, 11);
        assert_fully_valid(&RulingSet::new(2), &g, &rec.labels);
    }

    #[test]
    fn defective_holes_are_repaired_against_frozen_neighbors() {
        // Hole at cycle vertex 3: the radius-1 residue is {2,3,4}; the
        // frozen vertices 1 and 5 are each already at their defect budget,
        // so the finisher's safety check steers the boundary members away
        // from overflowing them.
        let g = gen::cycle(6);
        let partial: Vec<Option<usize>> = vec![Some(0), Some(0), Some(1), None, Some(1), Some(1)];
        let rec = recover(
            &DefectiveColoring::new(2, 1),
            &g,
            &partial,
            &DefectiveGreedyFinisher {
                colors: 2,
                defect: 1,
            },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(rec.attempts, 1);
        assert_fully_valid(&DefectiveColoring::new(2, 1), &g, &rec.labels);
        // Frozen vertices keep their labels.
        assert_eq!(rec.labels.as_slice()[0], 0);
        assert_eq!(rec.labels.as_slice()[1], 0);
        assert_eq!(rec.labels.as_slice()[5], 1);
    }

    #[test]
    fn defective_finisher_handles_all_holes() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::random_regular(20, 3, &mut rng).expect("feasible");
        let partial: Vec<Option<usize>> = vec![None; 20];
        let rec = recover(
            &DefectiveColoring::new(2, 1),
            &g,
            &partial,
            &DefectiveGreedyFinisher {
                colors: 2,
                defect: 1,
            },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_fully_valid(&DefectiveColoring::new(2, 1), &g, &rec.labels);
    }

    // Satellite contract for the three new catalog families: a faulty run at
    // drop 0.1 × crash 0.05 recovers within the default radius ladder (≤ 3).

    fn generality_plan(g: &Graph, window: u32, seed: u64) -> FaultPlan {
        FaultPlan::sample(
            g,
            &FaultSpec::none().with_drop(0.1).with_crash(0.05, window),
            seed,
        )
    }

    #[test]
    fn edge_coloring_recovers_under_generality_faults() {
        let mut rng = StdRng::seed_from_u64(0xEC0);
        let base = gen::random_regular(30, 3, &mut rng).expect("feasible");
        let lg = local_graphs::analysis::line_graph(&base);
        let plan = generality_plan(&lg, 12, 4);
        let run = run_sync(
            &lg,
            Mode::randomized(6),
            &crate::color::rand_greedy::RandGreedy::new(5),
            &ExecSpec::rounds(120).with_faults(&plan),
        );
        // Translate per-edge colors (line-graph outputs) to per-port labels:
        // a base vertex is labeled iff all its incident edges decided.
        let edge_color: Vec<Option<usize>> =
            run.outcomes.iter().map(|o| o.output().copied()).collect();
        let partial: Vec<Option<PortColors>> = base
            .vertices()
            .map(|v| {
                base.neighbors(v)
                    .iter()
                    .map(|nb| edge_color[nb.edge])
                    .collect::<Option<Vec<usize>>>()
                    .map(PortColors)
            })
            .collect();
        let rec = recover(
            &EdgeKColoring::new(5),
            &base,
            &partial,
            &EdgeGreedyFinisher { palette: 5 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(rec.radius <= 3);
        assert_fully_valid(&EdgeKColoring::new(5), &base, &rec.labels);
    }

    #[test]
    fn ruling_set_recovers_under_generality_faults() {
        let mut rng = StdRng::seed_from_u64(0xD2);
        let g = gen::random_regular(48, 3, &mut rng).expect("feasible");
        let algo = crate::mis::DilatedLuby::new(2, 5 * (48 / 4 + 1));
        let plan = generality_plan(&g, algo.horizon(), 2);
        let run = run_sync(
            &g,
            Mode::randomized(9),
            &algo,
            &ExecSpec::rounds(algo.horizon() + 4).with_faults(&plan),
        );
        let partial: Vec<Option<bool>> = run.outcomes.iter().map(|o| o.output().copied()).collect();
        let rec = recover(
            &RulingSet::new(2),
            &g,
            &partial,
            &RulingSetFinisher { k: 2 },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(rec.radius <= 3);
        assert_fully_valid(&RulingSet::new(2), &g, &rec.labels);
    }

    #[test]
    fn defective_coloring_recovers_under_generality_faults() {
        let mut rng = StdRng::seed_from_u64(0xDC0);
        let g = gen::random_regular(48, 3, &mut rng).expect("feasible");
        let horizon = 2 * g.m() as u32 + 3;
        let plan = generality_plan(&g, horizon, 7);
        let run = run_sync(
            &g,
            Mode::randomized(3),
            &crate::color::DefectiveLocalSearch::new(2, 1, horizon),
            &ExecSpec::rounds(horizon + 4).with_faults(&plan),
        );
        let partial: Vec<Option<usize>> =
            run.outcomes.iter().map(|o| o.output().copied()).collect();
        let rec = recover(
            &DefectiveColoring::new(2, 1),
            &g,
            &partial,
            &DefectiveGreedyFinisher {
                colors: 2,
                defect: 1,
            },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(rec.radius <= 3);
        assert_fully_valid(&DefectiveColoring::new(2, 1), &g, &rec.labels);
    }
}
