//! Theorem 11: randomized Δ-coloring of trees for constant Δ (paper: Δ ≥ 55)
//! in `O(log_Δ log n + log* n)` rounds.
//!
//! Three phases, exactly as in Section VI-B of the paper (0-indexed palette
//! `{0, …, Δ−1}`; the paper's colors `4…Δ` are our `3…Δ−1` and its `1,2,3`
//! are our `0,1,2`):
//!
//! 1. **MIS peeling**: for `c` from `Δ−1` down to `3`, draw a random value
//!    per vertex, seed the set `K` of strict local minima, extend it to an
//!    MIS `I ⊇ K` of the uncolored subgraph (class sweep over a fixed
//!    `(Δ+1)`-coloring), and color `I` with `c`. Every uncolored vertex
//!    loses ≥ 1 uncolored neighbor per iteration, so at the end
//!    `|N(v) ∩ U| ≤ 3` for all uncolored `v`.
//! 2. **Shattered 3-coloring**: `S = {v ∈ U : |N(v) ∩ U| = 3}` forms
//!    components of size `O(log n)` w.h.p.; Theorem 9
//!    ([`be_forest_coloring`]) 3-colors them with colors `{0, 1, 2}` in
//!    `O(log log n)` rounds.
//! 3. **List completion**: the remaining uncolored vertices have more
//!    available colors than uncolored neighbors; two restricted MIS runs
//!    3-partition them, and the three classes greedily pick free colors in
//!    three rounds.
//!
//! The algorithm is *correct* for every Δ ≥ 9 (and every forest); the
//! `O(log n)` component-size guarantee for Phase 2 is what the paper proves
//! for Δ ≥ 55 — experiment E3 measures it empirically across Δ.

use crate::color::grouped::{GroupLinial, GroupReduce};
use crate::color::linial::LinialSchedule;
use crate::color::{be_forest_coloring, ColoringOutcome, UNCOLORED};
use crate::mis::by_color::mis_by_color;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use crate::tree::theorem10::{bad_component_stats, ShatterStats};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{derived_rng, ExecSpec, GlobalParams, Mode, NodeInit, SimError};
use rand::Rng;

// ------------------------------------------------- one peeling iteration

#[derive(Debug, Clone, PartialEq, Eq)]
enum PeelMisState {
    NotInU,
    Undecided { x: Option<u64>, class: usize },
    InMis,
    Out,
}

/// One Phase-1 iteration: draw values, seed `K` (strict local minima), then
/// extend to an MIS of the uncolored subgraph by a class sweep.
struct PeelMisIteration {
    base_class: Vec<usize>,
    in_u: Vec<bool>,
    palette: usize,
}

impl SyncAlgorithm for PeelMisIteration {
    type State = PeelMisState;
    type Output = bool;

    fn init(&self, init: &NodeInit<'_>) -> PeelMisState {
        if self.in_u[init.node] {
            PeelMisState::Undecided {
                x: None,
                class: self.base_class[init.node],
            }
        } else {
            PeelMisState::NotInU
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &PeelMisState,
        neighbors: &[PeelMisState],
    ) -> SyncStep<PeelMisState, bool> {
        match state {
            PeelMisState::NotInU => SyncStep::Decide(PeelMisState::NotInU, false),
            PeelMisState::InMis => SyncStep::Decide(PeelMisState::InMis, true),
            PeelMisState::Out => SyncStep::Decide(PeelMisState::Out, false),
            PeelMisState::Undecided { x, class } => match round {
                1 => SyncStep::Continue(PeelMisState::Undecided {
                    x: Some(ctx.rng().gen()),
                    class: *class,
                }),
                2 => {
                    let mine = x.expect("drawn in round 1");
                    let local_min = neighbors.iter().all(|nb| match nb {
                        PeelMisState::Undecided { x: Some(v), .. } => mine < *v,
                        _ => true,
                    });
                    if local_min {
                        SyncStep::Decide(PeelMisState::InMis, true)
                    } else {
                        SyncStep::Continue(PeelMisState::Undecided {
                            x: *x,
                            class: *class,
                        })
                    }
                }
                r => {
                    if neighbors.iter().any(|nb| matches!(nb, PeelMisState::InMis)) {
                        return SyncStep::Decide(PeelMisState::Out, false);
                    }
                    if *class == (r - 3) as usize {
                        SyncStep::Decide(PeelMisState::InMis, true)
                    } else {
                        debug_assert!(
                            (*class) > (r - 3) as usize || (r - 3) as usize >= self.palette,
                            "class rounds are final"
                        );
                        SyncStep::Continue(state.clone())
                    }
                }
            },
        }
    }
}

// ---------------------------------------------------- phase-3 completion

#[derive(Debug, Clone, PartialEq, Eq)]
struct CompleteState {
    /// Current color (phase 1/2 output, or the phase-3 pick).
    color: Option<usize>,
    /// Which of the three completion classes this vertex recolors in
    /// (`usize::MAX` = already colored).
    class: usize,
}

struct Completion {
    colors: Vec<Option<usize>>,
    class_of: Vec<usize>,
    delta: usize,
}

impl SyncAlgorithm for Completion {
    type State = CompleteState;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> CompleteState {
        CompleteState {
            color: self.colors[init.node],
            class: self.class_of[init.node],
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &CompleteState,
        neighbors: &[CompleteState],
    ) -> SyncStep<CompleteState, usize> {
        if state.class == usize::MAX {
            let c = state.color.expect("non-completing vertices are colored");
            return SyncStep::Decide(state.clone(), c);
        }
        if state.class == (round - 1) as usize {
            let used: Vec<usize> = neighbors.iter().filter_map(|nb| nb.color).collect();
            let c = (0..self.delta)
                .find(|c| !used.contains(c))
                .expect("Theorem 11 invariant: more available colors than uncolored neighbors");
            SyncStep::Decide(
                CompleteState {
                    color: Some(c),
                    class: state.class,
                },
                c,
            )
        } else {
            SyncStep::Continue(state.clone())
        }
    }
}

// ------------------------------------------------------------ the outcome

/// The outcome of the full Theorem-11 pipeline.
#[derive(Debug, Clone)]
pub struct Theorem11Outcome {
    /// The Δ-coloring (palette `0..Δ`).
    pub coloring: ColoringOutcome,
    /// Rounds spent in the one-time base coloring (Linial + reduce).
    pub setup_rounds: u32,
    /// Rounds spent in the Δ−3 MIS-peeling iterations.
    pub phase1_rounds: u32,
    /// Rounds spent 3-coloring the shattered set `S`.
    pub phase2_rounds: u32,
    /// Rounds spent in the final completion.
    pub phase3_rounds: u32,
    /// Component statistics of the shattered set `S`.
    pub stats: ShatterStats,
}

/// Run the full Theorem-11 algorithm: Δ-color a forest with max degree ≤ Δ.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `delta < 9` (the algorithm needs peeling colors `{3..Δ}` plus a
/// 3-color reserve, and the base-coloring machinery needs room) or if
/// `g.max_degree() > delta`.
pub fn theorem11_color(g: &Graph, delta: usize, seed: u64) -> Result<Theorem11Outcome, SimError> {
    assert!(delta >= 9, "Theorem 11 implementation needs Δ ≥ 9");
    assert!(
        g.max_degree() <= delta,
        "graph degree {} exceeds Δ = {delta}",
        g.max_degree()
    );
    let n = g.n();
    let mut rng = derived_rng(seed, 0x7111);

    // One-time base (Δ+1)-coloring: random IDs → Linial → reduce. The random
    // IDs cost one round; they are unique w.h.p.
    let ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let all_groups = vec![1u64; n];
    let schedule = LinialSchedule::new(u64::MAX, delta);
    let linial_palette = schedule.final_palette() as usize;
    let linial = GroupLinial {
        schedule,
        colors: ids,
        group_of: all_groups.clone(),
    };
    let horizon = GlobalParams::from_graph(g)
        .round_horizon(200)
        .expect("materialized graphs fit the u32 round counter");
    let linial_out = run_sync(
        g,
        Mode::deterministic(),
        &linial,
        &ExecSpec::rounds(horizon),
    )
    .strict()?;
    let reduce = GroupReduce {
        from: linial_palette,
        to: delta + 1,
        colors: linial_out.outputs.iter().map(|&c| c as usize).collect(),
        group_of: all_groups,
    };
    let reduce_out = run_sync(
        g,
        Mode::deterministic(),
        &reduce,
        &ExecSpec::rounds(linial_palette as u32 + 2),
    )
    .strict()?;
    let base_class: Vec<usize> = reduce_out.outputs.iter().map(|&c| c as usize).collect();
    let setup_rounds = 1 + linial_out.rounds + reduce_out.rounds;

    // Phase 1: peel with colors Δ−1 down to 3.
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut in_u: Vec<bool> = vec![true; n];
    let mut phase1_rounds = 0;
    for c in (3..delta).rev() {
        let iter = PeelMisIteration {
            base_class: base_class.clone(),
            in_u: in_u.clone(),
            palette: delta + 1,
        };
        let out = run_sync(
            g,
            Mode::randomized(seed ^ (c as u64).wrapping_mul(0x9E37_79B9)),
            &iter,
            &ExecSpec::rounds(delta as u32 + 8),
        )
        .strict()?;
        phase1_rounds += out.rounds;
        for v in g.vertices() {
            if out.outputs[v] {
                colors[v] = Some(c);
                in_u[v] = false;
            }
        }
    }

    // Every uncolored vertex now has at most 3 uncolored neighbors.
    debug_assert!(g
        .vertices()
        .filter(|&v| in_u[v])
        .all(|v| { g.neighbors(v).iter().filter(|nb| in_u[nb.node]).count() <= 3 }));

    // Phase 2: S = uncolored vertices with exactly 3 uncolored neighbors.
    let s_set: Vec<bool> = g
        .vertices()
        .map(|v| in_u[v] && g.neighbors(v).iter().filter(|nb| in_u[nb.node]).count() == 3)
        .collect();
    let stats = bad_component_stats(g, &s_set);
    let mut phase2_rounds = 1; // the |N ∩ U| count exchange
    if stats.bad_vertices > 0 {
        let ids2: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let fin = be_forest_coloring(g, 3, &ids2, Some(&s_set), 0);
        phase2_rounds += fin.rounds;
        for v in g.vertices() {
            if s_set[v] {
                colors[v] = Some(*fin.labels.get(v));
                in_u[v] = false;
            }
        }
    }

    // Phase 3: the rest have more available colors than uncolored neighbors.
    let mut phase3_rounds = 0;
    if in_u.iter().any(|&u| u) {
        let base_labeling: Labeling<usize> = Labeling::new(base_class.clone());
        let mis1 = mis_by_color(g, &base_labeling, delta + 1, Some(&in_u));
        phase3_rounds += mis1.rounds;
        let mut u_minus_i1: Vec<bool> = in_u.clone();
        for v in g.vertices() {
            if mis1.in_set[v] {
                u_minus_i1[v] = false;
            }
        }
        let mis2 = if u_minus_i1.iter().any(|&u| u) {
            mis_by_color(g, &base_labeling, delta + 1, Some(&u_minus_i1))
        } else {
            crate::mis::MisOutcome {
                in_set: vec![false; n],
                rounds: 0,
            }
        };
        phase3_rounds += mis2.rounds;
        let class_of: Vec<usize> = g
            .vertices()
            .map(|v| {
                if !in_u[v] {
                    usize::MAX
                } else if mis1.in_set[v] {
                    0
                } else if mis2.in_set[v] {
                    1
                } else {
                    2
                }
            })
            .collect();
        let completion = Completion {
            colors: colors.clone(),
            class_of,
            delta,
        };
        let out = run_sync(g, Mode::deterministic(), &completion, &ExecSpec::rounds(8)).strict()?;
        phase3_rounds += out.rounds;
        for v in g.vertices() {
            if in_u[v] {
                colors[v] = Some(out.outputs[v]);
            }
        }
    }

    let labels: Vec<usize> = colors.into_iter().map(|c| c.unwrap_or(UNCOLORED)).collect();
    debug_assert!(labels.iter().all(|&c| c != UNCOLORED));
    let total = setup_rounds + phase1_rounds + phase2_rounds + phase3_rounds;
    Ok(Theorem11Outcome {
        coloring: ColoringOutcome {
            labels: Labeling::new(labels),
            palette: delta,
            rounds: total,
        },
        setup_rounds,
        phase1_rounds,
        phase2_rounds,
        phase3_rounds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn colors_random_trees_delta_12() {
        let mut rng = StdRng::seed_from_u64(70);
        for trial in 0..3 {
            let g = gen::random_tree_max_degree(250, 12, &mut rng);
            let out = theorem11_color(&g, 12, trial).unwrap();
            VertexColoring::new(12)
                .validate(&g, &out.coloring.labels)
                .unwrap_or_else(|v| panic!("trial {trial}: {v}"));
        }
    }

    #[test]
    fn colors_complete_dary_tree() {
        let g = gen::complete_dary_tree(300, 9);
        let out = theorem11_color(&g, 9, 4).unwrap();
        assert!(VertexColoring::new(9)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    fn colors_path_with_large_palette() {
        // Degenerate but legal: the tree's degree is far below Δ.
        let g = gen::path(60);
        let out = theorem11_color(&g, 9, 1).unwrap();
        assert!(VertexColoring::new(9)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    fn shattered_set_is_small() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = gen::random_tree_max_degree(1500, 12, &mut rng);
        let out = theorem11_color(&g, 12, 2).unwrap();
        assert!(
            out.stats.bad_vertices * 5 <= g.n(),
            "|S| = {} should be a small fraction of n = {}",
            out.stats.bad_vertices,
            g.n()
        );
        assert!(VertexColoring::new(12)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    fn phase_round_counts_are_positive_and_reported() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = gen::random_tree_max_degree(200, 10, &mut rng);
        let out = theorem11_color(&g, 10, 3).unwrap();
        assert!(out.setup_rounds > 0);
        assert!(out.phase1_rounds > 0);
        assert_eq!(
            out.coloring.rounds,
            out.setup_rounds + out.phase1_rounds + out.phase2_rounds + out.phase3_rounds
        );
    }

    #[test]
    #[should_panic(expected = "Δ ≥ 9")]
    fn rejects_small_delta() {
        let g = gen::path(5);
        let _ = theorem11_color(&g, 5, 0);
    }

    #[test]
    fn reproducible() {
        let mut rng = StdRng::seed_from_u64(73);
        let g = gen::random_tree_max_degree(150, 10, &mut rng);
        let a = theorem11_color(&g, 10, 7).unwrap();
        let b = theorem11_color(&g, 10, 7).unwrap();
        assert_eq!(a.coloring.labels, b.coloring.labels);
    }
}
