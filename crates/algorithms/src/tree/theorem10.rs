//! Theorem 10: randomized Δ-coloring of trees by ColorBidding + Filtering.
//!
//! Phase 1 (`O(log* Δ)` bidding iterations) colors vertices from the main
//! palette `{0, …, Δ−r−1}` (`r = ⌈√Δ⌉` colors stay reserved): each iteration
//! every participating vertex bids a random color subset `S_v` of its
//! remaining palette and keeps a color in `S_v \ ⋃_{u∈N_i(v)} S_u`.
//! Vertices whose palette/degree invariants break are *filtered* (marked
//! bad) and sit out. Phase 2 colors the bad vertices: w.h.p. their connected
//! components have size `O(Δ⁴ log n)` (the shattering lemma, measured by
//! experiment E2), so the deterministic Theorem 9 algorithm
//! ([`be_forest_coloring`]) `r`-colors them with the reserved palette in
//! `O(log_Δ log n + log* n)` rounds.
//!
//! Constants: the paper's analysis uses `c_1 = 1`,
//! `c_{i+1} = min(Δ^0.1, c_i·exp(c_i / (3·200·e²⁰⁰)))` and palette margin
//! `Δ/200` — values chosen to make Chernoff bounds go through for enormous
//! Δ, under which the growth would be invisible at practical scales. The
//! implementation keeps the same *functional form* with configurable
//! constants ([`Theorem10Config`]) whose defaults make the doubly-exponential
//! growth (and hence the `O(log* Δ)` iteration count) observable; this is
//! documented as a substitution in DESIGN.md.

use crate::color::{be_forest_coloring, ColoringOutcome, UNCOLORED};
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncRun, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{
    derived_rng, Budget, ExecSpec, FaultPlan, GlobalParams, Mode, NodeInit, SimError,
};
use local_obs::{MetricSet, Trace};
use rand::Rng;

/// Tunable constants of the Phase-1 schedule.
#[derive(Debug, Clone, Copy)]
pub struct Theorem10Config {
    /// Growth constant `K` in `c_{i+1} = c_i · exp(c_i / K)` (paper:
    /// `3·200·e²⁰⁰`; practical default 3).
    pub growth_k: f64,
    /// Exponent `γ` in the cap `c_i ≤ Δ^γ` (paper: 0.1; practical default
    /// 0.5 so the cap is reachable at small Δ).
    pub cap_exponent: f64,
    /// Palette-margin fraction `f`: the round-1 filter marks `v` bad when
    /// `|Ψ₂(v)| − |N₂'(v)| < f·Δ` (paper: `f = 1/200`; default `1/8`).
    pub palette_margin: f64,
}

impl Default for Theorem10Config {
    fn default() -> Self {
        Theorem10Config {
            growth_k: 3.0,
            cap_exponent: 0.5,
            palette_margin: 1.0 / 8.0,
        }
    }
}

impl Theorem10Config {
    /// The schedule `c_1, …, c_t` for maximum degree `delta` (`c_t` is the
    /// first value to reach the cap `Δ^γ`).
    pub fn schedule(&self, delta: usize) -> Vec<f64> {
        let cap = (delta as f64).powf(self.cap_exponent).max(1.0);
        let mut cs = vec![1.0f64];
        loop {
            let c = *cs.last().expect("nonempty");
            if c >= cap {
                break;
            }
            let next = (c * (c / self.growth_k).exp()).min(cap);
            if (next - c).abs() < 1e-12 {
                cs.push(cap);
                break;
            }
            cs.push(next);
        }
        cs
    }
}

/// Phase-1 status of a vertex.
#[derive(Debug, Clone, PartialEq)]
enum P1State {
    /// Still bidding: the remaining palette and this iteration's bid.
    Active {
        palette: Vec<bool>,
        bid: Option<Vec<usize>>,
    },
    /// Permanently colored from the main palette.
    Colored(usize),
    /// Filtered out; waits for Phase 2.
    Bad,
}

/// Phase 1 as one protocol. Round `2i−1` prunes palettes, applies iteration
/// `i−1`'s filter, and bids for iteration `i`; round `2i` resolves bids.
/// Round `2t+1` marks every survivor bad (the paper's `i = t` filter).
struct Phase1 {
    main_palette: usize,
    delta: usize,
    schedule: Vec<f64>,
    margin: f64,
}

impl SyncAlgorithm for Phase1 {
    type State = P1State;
    /// `Some(color)` if colored in Phase 1, `None` if bad.
    type Output = Option<usize>;

    fn init(&self, _init: &NodeInit<'_>) -> P1State {
        P1State::Active {
            palette: vec![true; self.main_palette],
            bid: None,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &P1State,
        neighbors: &[P1State],
    ) -> SyncStep<P1State, Option<usize>> {
        let (palette, bid) = match state {
            P1State::Colored(c) => {
                return SyncStep::Decide(P1State::Colored(*c), Some(*c));
            }
            P1State::Bad => return SyncStep::Decide(P1State::Bad, None),
            P1State::Active { palette, bid } => (palette, bid),
        };
        let t = self.schedule.len() as u32;
        if round % 2 == 1 {
            // --- maintenance ---
            let i = round.div_ceil(2); // iteration about to bid
            let mut palette = palette.clone();
            for nb in neighbors {
                if let P1State::Colored(c) = nb {
                    palette[*c] = false;
                }
            }
            let palette_size = palette.iter().filter(|&&a| a).count();
            let live_degree = neighbors
                .iter()
                .filter(|nb| matches!(nb, P1State::Active { .. }))
                .count();
            // --- filtering for the completed iteration i−1 ---
            if i >= 2 {
                let completed = i - 1;
                let bad = if completed == 1 {
                    (palette_size as f64) - (live_degree as f64) < self.margin * self.delta as f64
                } else if completed < t {
                    // degree cap Δ/c_{completed+1}; schedule is 0-indexed so
                    // c_{completed+1} = schedule[completed].
                    live_degree as f64 > self.delta as f64 / self.schedule[completed as usize]
                } else {
                    // completed == t: everyone remaining is bad.
                    true
                };
                if bad {
                    return SyncStep::Decide(P1State::Bad, None);
                }
            }
            if palette_size == 0 {
                return SyncStep::Decide(P1State::Bad, None);
            }
            // --- bid for iteration i ---
            debug_assert!(i <= t, "round past the schedule implies Bad above");
            let c_i = self.schedule[(i - 1) as usize];
            let available: Vec<usize> = (0..self.main_palette).filter(|&c| palette[c]).collect();
            let bid = if c_i <= 1.0 {
                let k = ctx.rng().gen_range(0..available.len() as u64) as usize;
                vec![available[k]]
            } else {
                let p = (c_i / available.len() as f64).min(1.0);
                available
                    .into_iter()
                    .filter(|_| ctx.rng().gen::<f64>() < p)
                    .collect()
            };
            SyncStep::Continue(P1State::Active {
                palette,
                bid: Some(bid),
            })
        } else {
            // --- resolve ---
            let mine = bid.as_deref().unwrap_or(&[]);
            let mut contested: Vec<usize> = Vec::new();
            for nb in neighbors {
                if let P1State::Active { bid: Some(s), .. } = nb {
                    contested.extend_from_slice(s);
                }
            }
            let winner = mine.iter().copied().find(|c| !contested.contains(c));
            match winner {
                Some(c) => SyncStep::Decide(P1State::Colored(c), Some(c)),
                None => SyncStep::Continue(P1State::Active {
                    palette: palette.clone(),
                    bid: None,
                }),
            }
        }
    }
}

/// Statistics from a Theorem-10 run (experiment E2 reads these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShatterStats {
    /// Number of bad (filtered) vertices after Phase 1.
    pub bad_vertices: usize,
    /// Number of connected components induced by bad vertices.
    pub bad_components: usize,
    /// Size of the largest bad component.
    pub largest_bad_component: usize,
}

/// The outcome of the full Theorem-10 pipeline.
#[derive(Debug, Clone)]
pub struct Theorem10Outcome {
    /// The Δ-coloring (palette `0..Δ`).
    pub coloring: ColoringOutcome,
    /// Phase-1 round count.
    pub phase1_rounds: u32,
    /// Phase-2 round count.
    pub phase2_rounds: u32,
    /// Shattering statistics.
    pub stats: ShatterStats,
}

/// Run Phase 1 only, returning per-vertex `Some(color)`/`None(bad)` and the
/// rounds used (exposed for the shattering experiment E2).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `delta < 9` (the reserved palette `⌈√Δ⌉` must be ≥ 3).
pub fn theorem10_phase1(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
) -> Result<(Vec<Option<usize>>, u32), SimError> {
    theorem10_phase1_traced(g, delta, seed, config, None)
}

/// [`theorem10_phase1`] with an optional trace buffer: the ColorBidding run
/// is wrapped in a `t10_color_bidding` span and the engine emits per-round
/// events into `trace`.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Same preconditions as [`theorem10_phase1`].
pub fn theorem10_phase1_traced(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    trace: Option<&Trace>,
) -> Result<(Vec<Option<usize>>, u32), SimError> {
    assert!(
        delta >= 9,
        "Theorem 10 needs Δ ≥ 9 (reserved √Δ palette ≥ 3)"
    );
    assert!(
        g.max_degree() <= delta,
        "graph degree {} exceeds Δ = {delta}",
        g.max_degree()
    );
    let reserved = (delta as f64).sqrt().ceil() as usize;
    let schedule = config.schedule(delta);
    let budget = 2 * schedule.len() as u32 + 4;
    let phase1 = Phase1 {
        main_palette: delta - reserved,
        delta,
        schedule,
        margin: config.palette_margin,
    };
    let _span = trace.map(|t| t.span("t10_color_bidding"));
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &phase1,
        &ExecSpec::rounds(budget)
            .with_params(GlobalParams::from_graph(g))
            .traced(trace),
    )
    .strict()?;
    Ok((out.outputs, out.rounds))
}

/// Run Phase 1 under a [`FaultPlan`] (experiment E12): the ColorBidding
/// core of the tree Δ-coloring, with per-vertex fates instead of an
/// all-or-nothing result. A vertex that decides carries `Some(color)` when
/// colored from the main palette and `None` when filtered bad — the latter
/// is an algorithmic outcome, not a fault.
///
/// # Panics
///
/// Same preconditions as [`theorem10_phase1`]: `delta ≥ 9` and
/// `g.max_degree() ≤ delta`.
pub fn theorem10_phase1_faulty(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    faults: &FaultPlan,
) -> SyncRun<Option<usize>> {
    theorem10_phase1_faulty_traced(g, delta, seed, config, faults, None)
}

/// [`theorem10_phase1_faulty`] with an optional trace buffer: the run is
/// wrapped in a `t10_color_bidding` span and the engine emits per-round
/// events (live counts, crashes, fault-plane activity) into `trace`.
///
/// # Panics
///
/// Same preconditions as [`theorem10_phase1`].
pub fn theorem10_phase1_faulty_traced(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    faults: &FaultPlan,
    trace: Option<&Trace>,
) -> SyncRun<Option<usize>> {
    phase1_faulty_inner(g, delta, seed, config, faults, trace, None, None)
}

/// [`theorem10_phase1_faulty_traced`] with an optional metric set: the
/// engine additionally accumulates its `engine_*` counters and histograms
/// into `metrics`. Metering never changes the run itself.
///
/// # Panics
///
/// Same preconditions as [`theorem10_phase1`].
pub fn theorem10_phase1_faulty_metered(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    faults: &FaultPlan,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
) -> SyncRun<Option<usize>> {
    phase1_faulty_inner(g, delta, seed, config, faults, trace, metrics, None)
}

/// [`theorem10_phase1_faulty`] with an explicit engine shard count — the
/// result is bit-identical for every `shards`, so this is purely a
/// performance/test knob (the shard-invariance suite runs it at 1/2/8).
///
/// # Panics
///
/// Same preconditions as [`theorem10_phase1`], plus `shards > 0`.
pub fn theorem10_phase1_faulty_sharded(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    faults: &FaultPlan,
    shards: usize,
) -> SyncRun<Option<usize>> {
    phase1_faulty_inner(g, delta, seed, config, faults, None, None, Some(shards))
}

#[allow(clippy::too_many_arguments)]
fn phase1_faulty_inner(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    faults: &FaultPlan,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
    shards: Option<usize>,
) -> SyncRun<Option<usize>> {
    assert!(
        delta >= 9,
        "Theorem 10 needs Δ ≥ 9 (reserved √Δ palette ≥ 3)"
    );
    assert!(
        g.max_degree() <= delta,
        "graph degree {} exceeds Δ = {delta}",
        g.max_degree()
    );
    let reserved = (delta as f64).sqrt().ceil() as usize;
    let schedule = config.schedule(delta);
    let budget = 2 * schedule.len() as u32 + 4;
    let phase1 = Phase1 {
        main_palette: delta - reserved,
        delta,
        schedule,
        margin: config.palette_margin,
    };
    let _span = trace.map(|t| t.span("t10_color_bidding"));
    let mut spec = ExecSpec::default()
        .with_budget(Budget::rounds(budget))
        .with_faults(faults)
        .traced(trace)
        .metered(metrics);
    if let Some(k) = shards {
        spec = spec.with_shards(k);
    }
    run_sync(g, Mode::randomized(seed), &phase1, &spec)
}

/// Run the full Theorem-10 algorithm: Δ-color a forest with max degree ≤ Δ.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `delta < 9`, if `g.max_degree() > delta`, or if the graph is
/// not a forest (checked by the Phase-2 finisher).
pub fn theorem10_color(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
) -> Result<Theorem10Outcome, SimError> {
    theorem10_color_traced(g, delta, seed, config, None)
}

/// [`theorem10_color`] with an optional trace buffer: Phase 1 runs under a
/// `t10_color_bidding` span (with per-round engine events) and the
/// deterministic finisher over the filtered vertices under a
/// `t10_filtered_finish` span.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Same preconditions as [`theorem10_color`].
pub fn theorem10_color_traced(
    g: &Graph,
    delta: usize,
    seed: u64,
    config: Theorem10Config,
    trace: Option<&Trace>,
) -> Result<Theorem10Outcome, SimError> {
    let reserved = (delta as f64).sqrt().ceil() as usize;
    let main_palette = delta - reserved;
    let (phase1_colors, phase1_rounds) = theorem10_phase1_traced(g, delta, seed, config, trace)?;

    let bad: Vec<bool> = phase1_colors.iter().map(Option::is_none).collect();
    let stats = bad_component_stats(g, &bad);

    let mut labels: Vec<usize> = phase1_colors
        .iter()
        .map(|c| c.unwrap_or(UNCOLORED))
        .collect();
    let mut phase2_rounds = 0;
    if stats.bad_vertices > 0 {
        let _span = trace.map(|t| t.span("t10_filtered_finish"));
        // RandLOCAL synthesizes IDs: 4·log₂(n)+8 random bits per vertex,
        // unique w.h.p. (one free round; counted).
        let mut rng = derived_rng(seed, 0x7110);
        let ids: Vec<u64> = (0..g.n()).map(|_| rng.gen()).collect();
        let fin = be_forest_coloring(g, reserved, &ids, Some(&bad), main_palette);
        phase2_rounds = fin.rounds + 1;
        for v in g.vertices() {
            if bad[v] {
                labels[v] = *fin.labels.get(v);
            }
        }
    }

    Ok(Theorem10Outcome {
        coloring: ColoringOutcome {
            labels: Labeling::new(labels),
            palette: delta,
            rounds: phase1_rounds + phase2_rounds,
        },
        phase1_rounds,
        phase2_rounds,
        stats,
    })
}

/// Component statistics of the subgraph induced by `bad`.
pub(crate) fn bad_component_stats(g: &Graph, bad: &[bool]) -> ShatterStats {
    let bad_vertices = bad.iter().filter(|&&b| b).count();
    if bad_vertices == 0 {
        return ShatterStats {
            bad_vertices: 0,
            bad_components: 0,
            largest_bad_component: 0,
        };
    }
    let mut seen = vec![false; g.n()];
    let mut components = 0;
    let mut largest = 0;
    for start in g.vertices() {
        if !bad[start] || seen[start] {
            continue;
        }
        components += 1;
        let mut size = 0;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            size += 1;
            for nb in g.neighbors(u) {
                if bad[nb.node] && !seen[nb.node] {
                    seen[nb.node] = true;
                    stack.push(nb.node);
                }
            }
        }
        largest = largest.max(size);
    }
    ShatterStats {
        bad_vertices,
        bad_components: components,
        largest_bad_component: largest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_reaches_cap_quickly() {
        let config = Theorem10Config::default();
        let s = config.schedule(64);
        assert_eq!(s[0], 1.0);
        assert!(*s.last().unwrap() >= 8.0 - 1e-9, "cap 64^0.5 = 8");
        assert!(s.len() <= 12, "log*-like schedule, got {} entries", s.len());
        // Quadrupling Δ adds at most a couple of iterations.
        let s2 = config.schedule(256);
        assert!(s2.len() <= s.len() + 3);
    }

    #[test]
    fn colors_random_trees_delta_16() {
        let mut rng = StdRng::seed_from_u64(60);
        for trial in 0..3 {
            let g = gen::random_tree_max_degree(400, 16, &mut rng);
            let out = theorem10_color(&g, 16, trial, Theorem10Config::default()).unwrap();
            VertexColoring::new(16)
                .validate(&g, &out.coloring.labels)
                .unwrap_or_else(|v| panic!("trial {trial}: {v}"));
        }
    }

    #[test]
    fn colors_complete_dary_tree() {
        let g = gen::complete_dary_tree(800, 16);
        let out = theorem10_color(&g, 16, 5, Theorem10Config::default()).unwrap();
        assert!(VertexColoring::new(16)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    fn colors_tree_with_delta_55() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = gen::random_tree_max_degree(800, 55, &mut rng);
        let out = theorem10_color(&g, 55, 9, Theorem10Config::default()).unwrap();
        assert!(VertexColoring::new(55)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    fn most_vertices_colored_in_phase1() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = gen::random_tree_max_degree(2000, 25, &mut rng);
        let out = theorem10_color(&g, 25, 2, Theorem10Config::default()).unwrap();
        assert!(
            out.stats.bad_vertices * 5 <= g.n(),
            "phase 1 should color ≥ 80%: {} bad of {}",
            out.stats.bad_vertices,
            g.n()
        );
    }

    #[test]
    fn shattered_components_are_small() {
        let mut rng = StdRng::seed_from_u64(63);
        let g = gen::random_tree_max_degree(5000, 16, &mut rng);
        let out = theorem10_color(&g, 16, 3, Theorem10Config::default()).unwrap();
        // The theory bound is Δ⁴·log n — astronomically loose here; empirically
        // components are tiny. Assert a generous but meaningful cap.
        assert!(
            out.stats.largest_bad_component <= 200,
            "largest bad component {} too large",
            out.stats.largest_bad_component
        );
    }

    #[test]
    fn phase1_rounds_do_not_grow_with_n() {
        let mut rng = StdRng::seed_from_u64(64);
        let small = {
            let g = gen::random_tree_max_degree(200, 16, &mut rng);
            theorem10_color(&g, 16, 1, Theorem10Config::default()).unwrap()
        };
        let large = {
            let g = gen::random_tree_max_degree(8000, 16, &mut rng);
            theorem10_color(&g, 16, 1, Theorem10Config::default()).unwrap()
        };
        // Phase 1 runs a fixed 2t+1 schedule; the measured value is when the
        // last vertex settles, which can end a round early on lucky instances
        // but never grows with n.
        let bound = 2 * Theorem10Config::default().schedule(16).len() as u32 + 1;
        assert!(small.phase1_rounds <= bound);
        assert!(large.phase1_rounds <= bound);
        assert!(
            large.phase1_rounds.abs_diff(small.phase1_rounds) <= 1,
            "phase 1 depends only on Δ: {} vs {}",
            small.phase1_rounds,
            large.phase1_rounds
        );
    }

    #[test]
    fn uses_degree_slack_when_tree_degree_below_delta() {
        // Δ parameter larger than the actual maximum degree is allowed.
        let mut rng = StdRng::seed_from_u64(65);
        let g = gen::random_tree_max_degree(300, 8, &mut rng);
        let out = theorem10_color(&g, 16, 4, Theorem10Config::default()).unwrap();
        assert!(VertexColoring::new(16)
            .validate(&g, &out.coloring.labels)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "Δ ≥ 9")]
    fn rejects_small_delta() {
        let g = gen::path(5);
        let _ = theorem10_color(&g, 5, 0, Theorem10Config::default());
    }

    #[test]
    fn stats_on_hand_built_bad_sets() {
        let g = gen::path(6);
        let bad = vec![true, true, false, true, false, true];
        let stats = bad_component_stats(&g, &bad);
        assert_eq!(stats.bad_vertices, 4);
        assert_eq!(stats.bad_components, 3);
        assert_eq!(stats.largest_bad_component, 2);
    }

    #[test]
    fn reproducible() {
        let mut rng = StdRng::seed_from_u64(66);
        let g = gen::random_tree_max_degree(300, 16, &mut rng);
        let a = theorem10_color(&g, 16, 8, Theorem10Config::default()).unwrap();
        let b = theorem10_color(&g, 16, 8, Theorem10Config::default()).unwrap();
        assert_eq!(a.coloring.labels, b.coloring.labels);
        assert_eq!(a.stats, b.stats);
    }
}
