//! The paper's own algorithms: randomized Δ-coloring of trees in
//! `O(log_Δ log n + log* n)` rounds.
//!
//! * [`theorem10`] — the ColorBidding + Filtering graph-shattering algorithm
//!   (Section VI-A), intended for large Δ.
//! * [`theorem11`] — the MIS-peeling algorithm for constant Δ ≥ 55
//!   (Section VI-B).
//!
//! Both follow the same blueprint the paper proves *necessary* (Theorem 3):
//! a fast randomized phase colors almost everything, the leftover "bad"
//! vertices form small components w.h.p., and a *deterministic* algorithm
//! (Theorem 9, [`crate::color::be_forest_coloring`]) finishes each component
//! with a reserved sub-palette.

pub mod theorem10;
pub mod theorem11;

pub use theorem10::{
    theorem10_color, theorem10_phase1_faulty_sharded, Theorem10Config, Theorem10Outcome,
};
pub use theorem11::{theorem11_color, Theorem11Outcome};
