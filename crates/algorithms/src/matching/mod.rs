//! Maximal matching algorithms.
//!
//! * [`israeli_itai`] — the randomized proposal algorithm (Israeli–Itai
//!   style), `O(log n)` rounds w.h.p.
//! * [`by_line_mis`] — the DetLOCAL baseline: maximal matching = MIS of the
//!   line graph, solved with the deterministic color-class MIS; each
//!   line-graph round is simulated by 2 rounds on the original graph.
//! * [`by_edge_color`] — the faster DetLOCAL route: sweep the classes of a
//!   distributed `(2Δ−1)`-edge-coloring, one matching per round.

pub mod by_edge_color;
pub mod by_line_mis;
pub mod israeli_itai;

pub use by_edge_color::matching_by_edge_color;
pub use by_line_mis::det_matching;
pub use israeli_itai::israeli_itai_matching;

/// The outcome of a matching pipeline.
#[derive(Debug, Clone)]
pub struct MatchingOutcome {
    /// Per-edge membership flags.
    pub matched_edges: Vec<bool>,
    /// Total LOCAL rounds (already including any simulation overhead).
    pub rounds: u32,
}
