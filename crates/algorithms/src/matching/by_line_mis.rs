//! Deterministic maximal matching = MIS of the line graph.
//!
//! A maximal independent set of `L(G)` is exactly a maximal matching of `G`.
//! We run the deterministic color-class MIS on `L(G)`; every `L(G)` round is
//! simulated by 2 rounds of `G` (each edge is handled by its endpoints, which
//! are adjacent), so the reported round count is `2×` the line-graph rounds.
//! Total: `O(Δ² + log* n)` with `Δ(L(G)) ≤ 2Δ(G) − 2`.

use crate::matching::MatchingOutcome;
use crate::mis::by_color::det_mis;
use local_graphs::analysis::line_graph;
use local_graphs::Graph;
use local_model::IdAssignment;

/// Deterministic maximal matching via line-graph MIS.
///
/// `ids` seeds the line-graph coloring; edge `e` uses the ID at index `e`
/// (edge identifiers are legitimate input: both endpoints know them).
pub fn det_matching(g: &Graph, ids: &IdAssignment) -> MatchingOutcome {
    if g.m() == 0 {
        return MatchingOutcome {
            matched_edges: Vec::new(),
            rounds: 0,
        };
    }
    let l = line_graph(g);
    let mis = det_mis(&l, ids);
    MatchingOutcome {
        matched_edges: mis.in_set,
        rounds: 2 * mis.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::MaximalMatching;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid(g: &Graph, matched: &[bool]) {
        let labels = MaximalMatching::labels_from_edges(g, matched);
        MaximalMatching::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid matching: {v}"));
    }

    #[test]
    fn valid_on_paths_and_cycles() {
        for n in [2usize, 5, 16, 63] {
            let g = gen::path(n);
            let out = det_matching(&g, &IdAssignment::Sequential);
            assert_valid(&g, &out.matched_edges);
        }
        for n in [3usize, 8, 41] {
            let g = gen::cycle(n);
            let out = det_matching(&g, &IdAssignment::Sequential);
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(30);
        for trial in 0..4 {
            let g = gen::gnp(40, 0.12, &mut rng);
            let out = det_matching(&g, &IdAssignment::Shuffled { seed: trial });
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_trees() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::random_tree_max_degree(200, 4, &mut rng);
        let out = det_matching(&g, &IdAssignment::Sequential);
        assert_valid(&g, &out.matched_edges);
    }

    #[test]
    fn empty_graph() {
        let g = local_graphs::GraphBuilder::new(5).build();
        let out = det_matching(&g, &IdAssignment::Sequential);
        assert!(out.matched_edges.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn rounds_do_not_scale_with_n() {
        let small = det_matching(&gen::cycle(32), &IdAssignment::Sequential).rounds;
        let large = det_matching(&gen::cycle(1024), &IdAssignment::Sequential).rounds;
        assert!(large <= small + 6, "{small} vs {large}");
    }
}
