//! Randomized maximal matching by proposals: `O(log n)` rounds w.h.p.
//!
//! Three-round phases (Israeli–Itai style role splitting): free vertices flip
//! a coin for a role; *proposers* pick a random free neighbor, *acceptors*
//! accept one incoming proposal, and in the confirmation round the accepted
//! proposer records the match. In expectation a constant fraction of the
//! free edges disappear per phase.

use crate::matching::MatchingOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::{Graph, PortId};
use local_model::{ExecSpec, Mode, NodeInit, SimError};
use rand::Rng;

/// Public state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IiState {
    /// Unmatched and still in play.
    Free {
        /// `Some(port)` while this vertex has an outstanding proposal.
        proposing: Option<PortId>,
        /// Whether the vertex plays proposer this phase.
        proposer: bool,
    },
    /// Matched through the given port.
    Matched {
        /// The matched port.
        port: PortId,
    },
    /// Unmatched with no free neighbors left (final).
    Retired,
}

/// The proposal algorithm.
#[derive(Debug, Clone, Default)]
pub struct IsraeliItai;

impl SyncAlgorithm for IsraeliItai {
    type State = IiState;
    type Output = Option<PortId>;

    fn init(&self, _init: &NodeInit<'_>) -> IiState {
        IiState::Free {
            proposing: None,
            proposer: false,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &IiState,
        neighbors: &[IiState],
    ) -> SyncStep<IiState, Option<PortId>> {
        match state {
            IiState::Matched { port } => {
                SyncStep::Decide(IiState::Matched { port: *port }, Some(*port))
            }
            IiState::Retired => SyncStep::Decide(IiState::Retired, None),
            IiState::Free { proposing, .. } => {
                let free_ports: Vec<PortId> = (0..ctx.degree())
                    .filter(|&p| matches!(neighbors[p], IiState::Free { .. }))
                    .collect();
                match round % 3 {
                    1 => {
                        // Role + proposal round.
                        if free_ports.is_empty() {
                            return SyncStep::Decide(IiState::Retired, None);
                        }
                        let proposer = ctx.rng().gen::<bool>();
                        let proposing = if proposer {
                            let i = ctx.rng().gen_range(0..free_ports.len() as u64) as usize;
                            Some(free_ports[i])
                        } else {
                            None
                        };
                        SyncStep::Continue(IiState::Free {
                            proposing,
                            proposer,
                        })
                    }
                    2 => {
                        // Acceptance round: acceptors take the lowest-port
                        // incoming proposal from a proposer.
                        let i_am_proposer = matches!(state, IiState::Free { proposer: true, .. });
                        if !i_am_proposer {
                            let incoming = (0..ctx.degree()).find(|&p| {
                                matches!(
                                    &neighbors[p],
                                    IiState::Free {
                                        proposing: Some(q),
                                        proposer: true,
                                    } if *q == ctx.back_port(p)
                                )
                            });
                            if let Some(p) = incoming {
                                return SyncStep::Decide(IiState::Matched { port: p }, Some(p));
                            }
                        }
                        SyncStep::Continue(state.clone())
                    }
                    _ => {
                        // Confirmation round: proposers whose target accepted
                        // them become matched; everyone else resets.
                        if let Some(p) = proposing {
                            if matches!(
                                &neighbors[*p],
                                IiState::Matched { port } if *port == ctx.back_port(*p)
                            ) {
                                return SyncStep::Decide(IiState::Matched { port: *p }, Some(*p));
                            }
                        }
                        SyncStep::Continue(IiState::Free {
                            proposing: None,
                            proposer: false,
                        })
                    }
                }
            }
        }
    }
}

/// Run the randomized maximal matching; returns per-edge flags.
///
/// # Errors
///
/// The engine's round-limit error if unfinished within `max_rounds`
/// (probability `1/poly(n)` for `max_rounds = Ω(log n)`).
pub fn israeli_itai_matching(
    g: &Graph,
    seed: u64,
    max_rounds: u32,
) -> Result<MatchingOutcome, SimError> {
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &IsraeliItai,
        &ExecSpec::rounds(max_rounds),
    )
    .strict()?;
    let mut matched_edges = vec![false; g.m()];
    for v in g.vertices() {
        if let Some(p) = out.outputs[v] {
            matched_edges[g.neighbor(v, p).edge] = true;
        }
    }
    Ok(MatchingOutcome {
        matched_edges,
        rounds: out.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::MaximalMatching;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid(g: &Graph, matched: &[bool]) {
        let labels = MaximalMatching::labels_from_edges(g, matched);
        MaximalMatching::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid matching: {v}"));
    }

    #[test]
    fn valid_on_cycles() {
        for n in [4usize, 7, 32, 111] {
            let g = gen::cycle(n);
            let out = israeli_itai_matching(&g, 1, 600).unwrap();
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(20);
        for trial in 0..5 {
            let g = gen::gnp(60, 0.1, &mut rng);
            let out = israeli_itai_matching(&g, trial, 900).unwrap();
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_star() {
        let g = gen::star(9);
        let out = israeli_itai_matching(&g, 2, 600).unwrap();
        assert_valid(&g, &out.matched_edges);
        assert_eq!(
            out.matched_edges.iter().filter(|&&m| m).count(),
            1,
            "a star admits exactly one matched edge"
        );
    }

    #[test]
    fn rounds_logarithmic() {
        let g = gen::cycle(2048);
        let out = israeli_itai_matching(&g, 3, 600).unwrap();
        assert!(out.rounds <= 150, "O(log n) expected, got {}", out.rounds);
    }

    #[test]
    fn reproducible() {
        let g = gen::cycle(50);
        let a = israeli_itai_matching(&g, 4, 600).unwrap();
        let b = israeli_itai_matching(&g, 4, 600).unwrap();
        assert_eq!(a.matched_edges, b.matched_edges);
    }

    #[test]
    fn empty_graph_retires_everyone() {
        let g = local_graphs::GraphBuilder::new(4).build();
        let out = israeli_itai_matching(&g, 0, 10).unwrap();
        assert!(out.matched_edges.is_empty());
    }
}
