//! Deterministic maximal matching via edge-color classes:
//! `O(Δ + log* n)`-type rounds (with our `O(Δ²)` edge-coloring constant).
//!
//! Given a proper `(2Δ−1)`-edge-coloring, process color classes one round at
//! a time: each class is a matching, so all its edges whose endpoints are
//! both still free enter simultaneously without conflicts. After all classes
//! pass, the matching is maximal (any free–free edge's class would have
//! admitted it). This is the classical alternative to the line-graph MIS
//! reduction and, per the Elkin–Pettie–Su observation the paper cites,
//! shows why `(2Δ−1)`-edge-coloring upper-bounds maximal matching.

use crate::color::edge_distributed::edge_color_distributed;
use crate::matching::MatchingOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::{Graph, PortId};
use local_model::{ExecSpec, Mode, NodeInit};

/// The class sweep over an edge coloring. The per-vertex inputs (incident
/// edge colors by port) travel in the state — legitimate local input, since
/// [`SyncAlgorithm::update`] deliberately has no vertex identity.
#[derive(Debug, Clone)]
pub struct EdgeClassSweep {
    port_colors: Vec<Vec<usize>>,
    palette: usize,
}

impl EdgeClassSweep {
    /// Build from a per-edge coloring with `palette` classes.
    ///
    /// # Panics
    ///
    /// Panics if `edge_colors.len() != g.m()`.
    pub fn new(g: &Graph, edge_colors: &[usize], palette: usize) -> Self {
        assert_eq!(edge_colors.len(), g.m(), "one color per edge");
        EdgeClassSweep {
            port_colors: g
                .vertices()
                .map(|v| {
                    g.neighbors(v)
                        .iter()
                        .map(|nb| edge_colors[nb.edge])
                        .collect()
                })
                .collect(),
            palette,
        }
    }
}

/// Public state: this vertex's incident edge colors and its match, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcFullState {
    colors: Vec<usize>,
    matched: Option<PortId>,
}

impl SyncAlgorithm for EdgeClassSweep {
    type State = EcFullState;
    type Output = Option<PortId>;

    fn init(&self, init: &NodeInit<'_>) -> EcFullState {
        EcFullState {
            colors: self.port_colors[init.node].clone(),
            matched: None,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &EcFullState,
        neighbors: &[EcFullState],
    ) -> SyncStep<EcFullState, Option<PortId>> {
        if let Some(p) = state.matched {
            return SyncStep::Decide(state.clone(), Some(p));
        }
        let class = (round - 1) as usize;
        if class >= self.palette {
            return SyncStep::Decide(state.clone(), None);
        }
        let candidate =
            (0..ctx.degree()).find(|&p| state.colors[p] == class && neighbors[p].matched.is_none());
        match candidate {
            Some(p) => {
                let next = EcFullState {
                    colors: state.colors.clone(),
                    matched: Some(p),
                };
                SyncStep::Decide(next, Some(p))
            }
            None => SyncStep::Continue(state.clone()),
        }
    }
}

/// Deterministic maximal matching: distributed `(2Δ−1)`-edge-coloring, then
/// one class per round.
///
/// # Panics
///
/// Panics if the graph has no edges — match nothing yourself in that case.
pub fn matching_by_edge_color(g: &Graph, seed: u64) -> MatchingOutcome {
    assert!(g.m() > 0, "no edges to match");
    let coloring = edge_color_distributed(g, seed);
    let algo = EdgeClassSweep::new(g, &coloring.colors, coloring.palette);
    let out = run_sync(
        g,
        Mode::deterministic(),
        &algo,
        &ExecSpec::rounds(coloring.palette as u32 + 2),
    )
    .strict()
    .expect("sweep halts after palette rounds");
    let mut matched_edges = vec![false; g.m()];
    for v in g.vertices() {
        if let Some(p) = out.outputs[v] {
            matched_edges[g.neighbor(v, p).edge] = true;
        }
    }
    MatchingOutcome {
        matched_edges,
        rounds: coloring.rounds + out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::MaximalMatching;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid(g: &Graph, matched: &[bool]) {
        let labels = MaximalMatching::labels_from_edges(g, matched);
        MaximalMatching::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid matching: {v}"));
    }

    #[test]
    fn valid_on_paths_cycles_stars() {
        for g in [gen::path(17), gen::cycle(12), gen::star(9)] {
            let out = matching_by_edge_color(&g, 1);
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(60);
        for trial in 0..4 {
            let g = gen::gnp(45, 0.12, &mut rng);
            if g.m() == 0 {
                continue;
            }
            let out = matching_by_edge_color(&g, trial);
            assert_valid(&g, &out.matched_edges);
        }
    }

    #[test]
    fn valid_on_regular_graphs() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = gen::random_regular(40, 5, &mut rng).unwrap();
        let out = matching_by_edge_color(&g, 3);
        assert_valid(&g, &out.matched_edges);
    }

    #[test]
    fn matches_agree_between_endpoints() {
        let mut rng = StdRng::seed_from_u64(62);
        let g = gen::gnp(30, 0.2, &mut rng);
        let out = matching_by_edge_color(&g, 5);
        // Each matched edge seen exactly once per endpoint: labels validate,
        // and the count of matched ports equals 2 × matched edges.
        let labels = MaximalMatching::labels_from_edges(&g, &out.matched_edges);
        let ports = labels.as_slice().iter().flatten().count();
        let edges = out.matched_edges.iter().filter(|&&m| m).count();
        assert_eq!(ports, 2 * edges);
    }

    #[test]
    fn rounds_flat_in_n() {
        let small = matching_by_edge_color(&gen::cycle(32), 7).rounds;
        let large = matching_by_edge_color(&gen::cycle(2048), 7).rounds;
        assert!(large <= small + 6, "{small} vs {large}");
    }
}
