//! Ruling sets via power-graph simulation.
//!
//! A `(2, k+1)`-ruling set — vertices pairwise at distance > k, every vertex
//! within distance k of the set — is exactly an MIS of the power graph
//! `G^k`, and a `G^k` round is simulated by `k` rounds of `G` (the same
//! device Theorems 5/6/8 use for ID shortening). The paper's survey cites
//! the ruling-set line of work (Bisht–Kothapalli–Pemmaraju,
//! Kothapalli–Pemmaraju) as part of the shattering-era landscape.

use crate::mis::luby::luby_mis;
use crate::mis::MisOutcome;
use local_graphs::{analysis, Graph};
use local_model::SimError;

/// Compute a `(2, k+1)`-ruling set: an MIS of `G^k`, with the `×k`
/// simulation overhead included in the reported rounds.
///
/// # Errors
///
/// Propagates the engine's round-limit error from the underlying Luby run.
///
/// # Panics
///
/// Panics if `k == 0` (use plain [`luby_mis`] for `k = 1`… `k = 1` is
/// allowed and equivalent to it).
pub fn ruling_set(g: &Graph, k: usize, seed: u64, max_rounds: u32) -> Result<MisOutcome, SimError> {
    assert!(k >= 1, "ruling distance must be at least 1");
    if k == 1 {
        return luby_mis(g, seed, max_rounds);
    }
    let gk = analysis::power_graph(g, k);
    let out = luby_mis(&gk, seed, max_rounds)?;
    Ok(MisOutcome {
        in_set: out.in_set,
        rounds: out.rounds * k as u32,
    })
}

/// Centralized validator: `in_set` is a `(2, k+1)`-ruling set of `g` —
/// members pairwise at distance > k, every vertex within distance k of a
/// member.
pub fn is_ruling_set(g: &Graph, in_set: &[bool], k: usize) -> bool {
    assert_eq!(in_set.len(), g.n(), "one flag per vertex");
    for v in g.vertices() {
        let dist = analysis::bfs_distances(g, v);
        if in_set[v] {
            // No other member within distance k.
            if g.vertices().any(|u| u != v && in_set[u] && dist[u] <= k) {
                return false;
            }
        } else {
            // Some member within distance k (when any vertex is reachable…
            // isolated non-members must be members themselves, caught here).
            if !g.vertices().any(|u| in_set[u] && dist[u] <= k) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ruling_sets_on_cycles() {
        for k in [1usize, 2, 3] {
            let g = gen::cycle(30);
            let out = ruling_set(&g, k, 1, 10_000).unwrap();
            assert!(is_ruling_set(&g, &out.in_set, k), "k = {k}");
        }
    }

    #[test]
    fn ruling_sets_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(80);
        for trial in 0..3 {
            let g = gen::gnp(50, 0.08, &mut rng);
            let out = ruling_set(&g, 2, trial, 10_000).unwrap();
            assert!(is_ruling_set(&g, &out.in_set, 2), "trial {trial}");
        }
    }

    #[test]
    fn larger_k_gives_sparser_sets() {
        let g = gen::cycle(60);
        let s1 = ruling_set(&g, 1, 5, 10_000).unwrap();
        let s3 = ruling_set(&g, 3, 5, 10_000).unwrap();
        let c1 = s1.in_set.iter().filter(|&&b| b).count();
        let c3 = s3.in_set.iter().filter(|&&b| b).count();
        assert!(c3 < c1, "distance-3 set {c3} must be sparser than MIS {c1}");
    }

    #[test]
    fn rounds_include_simulation_factor() {
        let g = gen::cycle(64);
        let out = ruling_set(&g, 3, 2, 10_000).unwrap();
        assert_eq!(out.rounds % 3, 0, "G^3 rounds are simulated 3-for-1");
    }

    #[test]
    fn validator_rejects_bad_sets() {
        let g = gen::path(5);
        // Adjacent members violate independence at k = 1.
        assert!(!is_ruling_set(&g, &[true, true, false, false, true], 1));
        // Empty set violates domination.
        assert!(!is_ruling_set(&g, &[false; 5], 1));
        // {0, 2, 4} is a valid 1-ruling set (an MIS).
        assert!(is_ruling_set(&g, &[true, false, true, false, true], 1));
        // {0, 4} is not 1-dominating (vertex 2) but is 2-dominating — and
        // at k = 2, members 0 and 4 are at distance 4 > 2: valid.
        assert!(!is_ruling_set(&g, &[true, false, false, false, true], 1));
        assert!(is_ruling_set(&g, &[true, false, false, false, true], 2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_k_zero() {
        let g = gen::path(3);
        let _ = ruling_set(&g, 0, 0, 100);
    }
}
