//! Ruling sets via power-graph simulation — and a genuinely message-passing
//! dilated lottery.
//!
//! A `(2, k+1)`-ruling set — vertices pairwise at distance > k, every vertex
//! within distance k of the set — is exactly an MIS of the power graph
//! `G^k`, and a `G^k` round is simulated by `k` rounds of `G` (the same
//! device Theorems 5/6/8 use for ID shortening). The paper's survey cites
//! the ruling-set line of work (Bisht–Kothapalli–Pemmaraju,
//! Kothapalli–Pemmaraju) as part of the shattering-era landscape.
//!
//! [`ruling_set`] materializes `G^k` centrally, which is fine for a
//! baseline but invisible to the fault model: crashes on `G` do not map to
//! crashes on `G^k`. [`DilatedLuby`] instead runs the lottery directly on
//! `G` as a [`SyncAlgorithm`], aggregating the radius-`k` minimum through
//! `k` relay rounds per phase — so drops and crashes hit the actual
//! messages, and the sweep/recovery/adversary planes can exercise ruling
//! sets like any other workload.

use crate::mis::luby::luby_mis;
use crate::mis::MisOutcome;
use crate::sync::{SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::{analysis, Graph};
use local_model::{NodeInit, SimError};
use rand::Rng;

/// Compute a `(2, k+1)`-ruling set: an MIS of `G^k`, with the `×k`
/// simulation overhead included in the reported rounds.
///
/// # Errors
///
/// Propagates the engine's round-limit error from the underlying Luby run.
///
/// # Panics
///
/// Panics if `k == 0` (use plain [`luby_mis`] for `k = 1`… `k = 1` is
/// allowed and equivalent to it).
pub fn ruling_set(g: &Graph, k: usize, seed: u64, max_rounds: u32) -> Result<MisOutcome, SimError> {
    assert!(k >= 1, "ruling distance must be at least 1");
    if k == 1 {
        return luby_mis(g, seed, max_rounds);
    }
    let gk = analysis::power_graph(g, k);
    let out = luby_mis(&gk, seed, max_rounds)?;
    Ok(MisOutcome {
        in_set: out.in_set,
        rounds: out.rounds * k as u32,
    })
}

/// Centralized validator: `in_set` is a `(2, k+1)`-ruling set of `g` —
/// members pairwise at distance > k, every vertex within distance k of a
/// member.
pub fn is_ruling_set(g: &Graph, in_set: &[bool], k: usize) -> bool {
    assert_eq!(in_set.len(), g.n(), "one flag per vertex");
    for v in g.vertices() {
        let dist = analysis::bfs_distances(g, v);
        if in_set[v] {
            // No other member within distance k.
            if g.vertices().any(|u| u != v && in_set[u] && dist[u] <= k) {
                return false;
            }
        } else {
            // Some member within distance k (when any vertex is reachable…
            // isolated non-members must be members themselves, caught here).
            if !g.vertices().any(|u| in_set[u] && dist[u] <= k) {
                return false;
            }
        }
    }
    true
}

/// Public state of [`DilatedLuby`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DilatedState {
    /// Permanently a ruling-set member.
    InSet,
    /// Still live: a candidate (drew a `value` this phase) or a covered
    /// relay (`value == None`) forwarding aggregation for its neighbors.
    Live {
        /// Phase index (`(round − 1) / (2k+1)`).
        phase: u32,
        /// Step inside the phase (`(round − 1) % (2k+1)`).
        step: u32,
        /// This phase's lottery draw (`None` for covered relays).
        value: Option<u64>,
        /// Running minimum over candidate draws within `step` hops.
        agg: Option<u64>,
        /// Aggregation was fed by a stale or out-of-phase neighbor, so the
        /// radius-`k` minimum cannot be certified this phase.
        tainted: bool,
        /// Distance to the nearest known member, when `<= k`.
        covered: Option<u32>,
    },
}

/// Luby's lottery dilated to ruling distance `k`, as a fault-exposed
/// [`SyncAlgorithm`] computing a `(2, k)`-ruling set.
///
/// Each phase spans `2k+1` rounds: every uncovered vertex draws a random
/// ticket (round 0 of the phase), `k` aggregation rounds spread the minimum
/// ticket through the radius-`k` ball (covered vertices stay live as
/// relays), and a vertex holding the strict ball minimum joins the set.
/// `k` cool-down rounds then propagate the new coverage before the next
/// draw. At the fixed `horizon` round every still-live vertex settles for
/// `false`.
///
/// Fault-free on a graph of minimum degree ≥ 3 with `k = 2`, members'
/// radius-1 balls are disjoint with ≥ 4 vertices each, so at most `n/4`
/// members exist and `horizon = (2k+1)·(n/4 + 1)` suffices: each phase
/// admits the globally minimal uncovered ticket. Under faults a vertex
/// whose aggregation saw a stale neighbor is `tainted` and abstains — the
/// algorithm degrades toward under-coverage (checkable) rather than
/// adjacent members.
#[derive(Debug, Clone, Copy)]
pub struct DilatedLuby {
    k: u32,
    horizon: u32,
}

impl DilatedLuby {
    /// A dilated lottery at ruling distance `k` that settles at `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `horizon == 0`.
    pub fn new(k: u32, horizon: u32) -> Self {
        assert!(k >= 1, "ruling distance must be at least 1");
        assert!(horizon >= 1, "the settle horizon must be positive");
        DilatedLuby { k, horizon }
    }

    /// Ruling distance `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The round at which still-live vertices settle for `false`.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Rounds per phase: draw + `k` aggregation + `k` cool-down.
    pub fn phase_len(&self) -> u32 {
        2 * self.k + 1
    }
}

impl SyncAlgorithm for DilatedLuby {
    type State = DilatedState;
    type Output = bool;

    fn init(&self, _init: &NodeInit<'_>) -> DilatedState {
        DilatedState::Live {
            phase: 0,
            step: 0,
            value: None,
            agg: None,
            tainted: false,
            covered: None,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &DilatedState,
        neighbors: &[DilatedState],
    ) -> SyncStep<DilatedState, bool> {
        let DilatedState::Live {
            value,
            agg,
            tainted,
            covered,
            ..
        } = state
        else {
            // Defensive: the engine never calls update on decided vertices.
            return SyncStep::Decide(DilatedState::InSet, true);
        };
        let idx = (round - 1) % self.phase_len();
        let phase = (round - 1) / self.phase_len();

        // Coverage scan, every round: adopt the closest known member.
        let mut covered = *covered;
        for nb in neighbors {
            let d = match nb {
                DilatedState::InSet => 1,
                DilatedState::Live {
                    covered: Some(h), ..
                } => h + 1,
                DilatedState::Live { covered: None, .. } => continue,
            };
            if d <= self.k && covered.is_none_or(|c| d < c) {
                covered = Some(d);
            }
        }

        // The fixed horizon: every still-live vertex settles for `false`.
        if round >= self.horizon {
            return SyncStep::Decide(
                DilatedState::Live {
                    phase,
                    step: idx,
                    value: *value,
                    agg: *agg,
                    tainted: *tainted,
                    covered,
                },
                false,
            );
        }

        let (mut value, mut agg, mut tainted) = (*value, *agg, *tainted);
        if idx == 0 {
            // Phase start: covered vertices relay, the rest draw a ticket.
            tainted = false;
            if covered.is_some() {
                value = None;
                agg = None;
            } else {
                let draw = ctx.rng().gen::<u64>();
                value = Some(draw);
                agg = Some(draw);
            }
        } else if idx <= self.k {
            // Aggregation: fold neighbors' step-(idx−1) minima of this phase.
            for nb in neighbors {
                match nb {
                    DilatedState::InSet => {}
                    DilatedState::Live {
                        phase: p,
                        step: s,
                        agg: a,
                        tainted: t,
                        ..
                    } => {
                        if *p == phase && *s == idx - 1 {
                            tainted |= *t;
                            if let Some(a) = a {
                                agg = Some(agg.map_or(*a, |cur| cur.min(*a)));
                            }
                        } else {
                            tainted = true;
                        }
                    }
                }
            }
            if idx == self.k && !tainted && covered.is_none() && value.is_some() && value == agg {
                return SyncStep::Decide(DilatedState::InSet, true);
            }
        }
        // idx > k: cool-down; coverage keeps propagating toward the next draw.
        SyncStep::Continue(DilatedState::Live {
            phase,
            step: idx,
            value,
            agg,
            tainted,
            covered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use local_graphs::gen;
    use local_model::{ExecSpec, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ruling_sets_on_cycles() {
        for k in [1usize, 2, 3] {
            let g = gen::cycle(30);
            let out = ruling_set(&g, k, 1, 10_000).unwrap();
            assert!(is_ruling_set(&g, &out.in_set, k), "k = {k}");
        }
    }

    #[test]
    fn ruling_sets_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(80);
        for trial in 0..3 {
            let g = gen::gnp(50, 0.08, &mut rng);
            let out = ruling_set(&g, 2, trial, 10_000).unwrap();
            assert!(is_ruling_set(&g, &out.in_set, 2), "trial {trial}");
        }
    }

    #[test]
    fn larger_k_gives_sparser_sets() {
        let g = gen::cycle(60);
        let s1 = ruling_set(&g, 1, 5, 10_000).unwrap();
        let s3 = ruling_set(&g, 3, 5, 10_000).unwrap();
        let c1 = s1.in_set.iter().filter(|&&b| b).count();
        let c3 = s3.in_set.iter().filter(|&&b| b).count();
        assert!(c3 < c1, "distance-3 set {c3} must be sparser than MIS {c1}");
    }

    #[test]
    fn rounds_include_simulation_factor() {
        let g = gen::cycle(64);
        let out = ruling_set(&g, 3, 2, 10_000).unwrap();
        assert_eq!(out.rounds % 3, 0, "G^3 rounds are simulated 3-for-1");
    }

    #[test]
    fn validator_rejects_bad_sets() {
        let g = gen::path(5);
        // Adjacent members violate independence at k = 1.
        assert!(!is_ruling_set(&g, &[true, true, false, false, true], 1));
        // Empty set violates domination.
        assert!(!is_ruling_set(&g, &[false; 5], 1));
        // {0, 2, 4} is a valid 1-ruling set (an MIS).
        assert!(is_ruling_set(&g, &[true, false, true, false, true], 1));
        // {0, 4} is not 1-dominating (vertex 2) but is 2-dominating — and
        // at k = 2, members 0 and 4 are at distance 4 > 2: valid.
        assert!(!is_ruling_set(&g, &[true, false, false, false, true], 1));
        assert!(is_ruling_set(&g, &[true, false, false, false, true], 2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_k_zero() {
        let g = gen::path(3);
        let _ = ruling_set(&g, 0, 0, 100);
    }

    /// A generous horizon for arbitrary test graphs: at most `n` members.
    fn lazy_horizon(k: u32, n: usize) -> u32 {
        (2 * k + 1) * (n as u32 + 1)
    }

    #[test]
    fn dilated_luby_rules_cycles() {
        for k in [1u32, 2, 3] {
            let g = gen::cycle(30);
            let algo = DilatedLuby::new(k, lazy_horizon(k, 30));
            let out = run_sync(
                &g,
                Mode::randomized(7),
                &algo,
                &ExecSpec::rounds(algo.horizon()),
            )
            .strict()
            .unwrap();
            assert!(is_ruling_set(&g, &out.outputs, k as usize), "k = {k}");
        }
    }

    #[test]
    fn dilated_luby_rules_random_cubic_graphs_within_packing_horizon() {
        let mut rng = StdRng::seed_from_u64(0xD11);
        for trial in 0..3 {
            let n = 48;
            let g = gen::random_regular(n, 3, &mut rng).expect("feasible");
            // Min degree 3 and k = 2: members' radius-1 balls are disjoint
            // 4-vertex sets, so at most n/4 members and n/4 + 1 phases.
            let algo = DilatedLuby::new(2, 5 * (n as u32 / 4 + 1));
            let out = run_sync(
                &g,
                Mode::randomized(trial),
                &algo,
                &ExecSpec::rounds(algo.horizon()),
            )
            .strict()
            .unwrap();
            assert!(is_ruling_set(&g, &out.outputs, 2), "trial {trial}");
        }
    }

    #[test]
    fn dilated_luby_reproducible_given_seed() {
        let g = gen::cycle(24);
        let algo = DilatedLuby::new(2, lazy_horizon(2, 24));
        let spec = ExecSpec::rounds(algo.horizon());
        let a = run_sync(&g, Mode::randomized(5), &algo, &spec)
            .strict()
            .unwrap();
        let b = run_sync(&g, Mode::randomized(5), &algo, &spec)
            .strict()
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn dilated_luby_accessors() {
        let algo = DilatedLuby::new(2, 65);
        assert_eq!(algo.k(), 2);
        assert_eq!(algo.horizon(), 65);
        assert_eq!(algo.phase_len(), 5);
    }
}
