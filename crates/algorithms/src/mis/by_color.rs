//! Deterministic MIS by color classes: `O(Δ² + log* n)` rounds.
//!
//! Given a proper `C`-coloring, run the greedy sweep over classes
//! `0, 1, …, C−1` with the classical local-minima acceleration: an undecided
//! vertex joins the MIS the moment its class is smaller than every still
//! undecided neighbor's class (adjacent vertices have distinct classes, so no
//! two adjacent vertices ever join together), and drops out when a neighbor
//! joins. This computes exactly the sequential greedy-by-class MIS — each
//! vertex's fate depends only on its lower-class neighbors — but in
//! `max` descending-chain length rather than `C` rounds, which keeps the
//! measured complexity flat in `n` for fixed `Δ` as the paper's
//! `O(Δ² + log* n)` bound demands. The full pipeline ([`det_mis`]) first runs
//! Linial's algorithm (`C = O(Δ²)` classes in `O(log* n)` rounds), the
//! classic DetLOCAL baseline the paper contrasts against Luby's `O(log n)`.

use crate::color::linial_color;
use crate::mis::MisOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, IdAssignment, Mode, NodeInit};

/// Public state of the class sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassState {
    /// Not participating (restricted runs).
    Inactive,
    /// Waiting for this vertex's class round.
    Waiting {
        /// This vertex's color class.
        class: usize,
    },
    /// Joined the MIS.
    InMis,
    /// Excluded by a neighbor in the MIS.
    Out,
}

/// The class-by-class sweep over a given proper coloring.
#[derive(Debug, Clone)]
pub struct ClassSweep {
    colors: Vec<usize>,
    active: Option<Vec<bool>>,
}

impl ClassSweep {
    /// Sweep over `colors` (a proper coloring of the active subgraph).
    pub fn new(colors: Vec<usize>, active: Option<Vec<bool>>) -> Self {
        ClassSweep { colors, active }
    }
}

impl SyncAlgorithm for ClassSweep {
    type State = ClassState;
    type Output = bool;

    fn init(&self, init: &NodeInit<'_>) -> ClassState {
        match &self.active {
            Some(a) if !a[init.node] => ClassState::Inactive,
            _ => ClassState::Waiting {
                class: self.colors[init.node],
            },
        }
    }

    fn update(
        &self,
        _round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &ClassState,
        neighbors: &[ClassState],
    ) -> SyncStep<ClassState, bool> {
        match state {
            ClassState::Inactive => SyncStep::Decide(ClassState::Inactive, false),
            ClassState::InMis => SyncStep::Decide(ClassState::InMis, true),
            ClassState::Out => SyncStep::Decide(ClassState::Out, false),
            ClassState::Waiting { class } => {
                let neighbor_in = neighbors.iter().any(|nb| matches!(nb, ClassState::InMis));
                if neighbor_in {
                    return SyncStep::Decide(ClassState::Out, false);
                }
                // Local minimum among still-waiting neighbors: classes are
                // distinct across edges, so joins are never adjacent, and a
                // vertex joins iff no lower-class neighbor joined — the same
                // set the class-by-class sweep produces.
                let local_min = neighbors.iter().all(|nb| match nb {
                    ClassState::Waiting { class: c } => c > class,
                    _ => true,
                });
                if local_min {
                    SyncStep::Decide(ClassState::InMis, true)
                } else {
                    SyncStep::Continue(*state)
                }
            }
        }
    }
}

/// MIS from an explicit proper coloring: `palette` rounds.
///
/// # Panics
///
/// Panics if `colors` is not proper on the active subgraph (two adjacent
/// same-class vertices would both join) — violations are caught by the MIS
/// validator in tests, and by a debug assertion here.
pub fn mis_by_color(
    g: &Graph,
    colors: &Labeling<usize>,
    palette: usize,
    active: Option<&[bool]>,
) -> MisOutcome {
    if cfg!(debug_assertions) {
        for &(u, v) in g.edges() {
            let both_active = active.is_none_or(|a| a[u] && a[v]);
            if both_active {
                debug_assert_ne!(colors.get(u), colors.get(v), "improper input coloring");
            }
        }
    }
    let algo = ClassSweep::new(colors.as_slice().to_vec(), active.map(<[bool]>::to_vec));
    let out = run_sync(
        g,
        Mode::deterministic(),
        &algo,
        &ExecSpec::rounds(palette as u32 + 2),
    )
    .strict()
    .expect("sweep halts after palette rounds");
    MisOutcome {
        in_set: out.outputs,
        rounds: out.rounds,
    }
}

/// The full DetLOCAL MIS baseline: Linial `O(Δ²)`-coloring + class sweep,
/// `O(Δ² + log* n)` rounds.
pub fn det_mis(g: &Graph, ids: &IdAssignment) -> MisOutcome {
    let coloring = linial_color(g, ids);
    let sweep = mis_by_color(g, &coloring.labels, coloring.palette, None);
    MisOutcome {
        in_set: sweep.in_set,
        rounds: coloring.rounds + sweep.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::Mis;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_mis(g: &Graph, in_set: &[bool]) {
        let labels: Labeling<bool> = in_set.to_vec().into();
        Mis::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid MIS: {v}"));
    }

    #[test]
    fn sweep_from_explicit_coloring() {
        let g = gen::cycle(9);
        let colors: Labeling<usize> = (0..9).map(|v| if v == 8 { 2 } else { v % 2 }).collect();
        let out = mis_by_color(&g, &colors, 3, None);
        assert_valid_mis(&g, &out.in_set);
        assert!(out.rounds <= 3);
    }

    #[test]
    fn det_mis_on_cycles() {
        for n in [3usize, 8, 50, 333] {
            let g = gen::cycle(n);
            let out = det_mis(&g, &IdAssignment::Sequential);
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn det_mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..4 {
            let g = gen::gnp(50, 0.12, &mut rng);
            let out = det_mis(&g, &IdAssignment::Shuffled { seed: trial });
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn det_mis_on_trees() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::random_tree_max_degree(300, 5, &mut rng);
        let out = det_mis(&g, &IdAssignment::Sequential);
        assert_valid_mis(&g, &out.in_set);
    }

    #[test]
    fn restricted_sweep() {
        let g = gen::path(6);
        let active: Vec<bool> = vec![true, true, true, false, true, true];
        let colors: Labeling<usize> = vec![0, 1, 0, 9, 0, 1].into();
        let out = mis_by_color(&g, &colors, 10, Some(&active));
        assert!(!out.in_set[3]);
        assert!(out.in_set[0] && !out.in_set[1] && out.in_set[2]);
        assert!(out.in_set[4] && !out.in_set[5]);
    }

    #[test]
    fn rounds_independent_of_n_for_fixed_delta() {
        let small = det_mis(&gen::cycle(32), &IdAssignment::Sequential).rounds;
        let large = det_mis(&gen::cycle(2048), &IdAssignment::Sequential).rounds;
        assert!(
            large <= small + 3,
            "Δ fixed: rounds must be log*-ish in n ({small} vs {large})"
        );
    }
}
