//! Ghaffari-style MIS with graph shattering.
//!
//! The modern shape of randomized MIS (Ghaffari, SODA'16): each vertex
//! maintains a *desire level* `p_v`, halved when the neighborhood is crowded
//! (`Σ_{u∈N(v)} p_u ≥ 2`) and doubled (capped at 1/2) otherwise; each phase a
//! vertex marks itself with probability `p_v` and joins the MIS if no
//! neighbor marked. After `O(log Δ) + O(1)` phases the undecided vertices
//! form components of size `poly(Δ)·log n` w.h.p. — the **graph shattering**
//! regime — and a *deterministic* MIS finishes the job on those components.
//!
//! This is exactly the two-part structure whose necessity Theorem 3 proves:
//! the randomized part cannot avoid encoding a deterministic algorithm for
//! small instances.

use crate::color::grouped::{GroupLinial, NO_GROUP};
use crate::color::linial::LinialSchedule;
use crate::mis::by_color::mis_by_color;
use crate::mis::MisOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{derived_rng, ExecSpec, Mode, NodeInit, SimError};
use rand::Rng;

/// Tuning for the pre-shattering phase length.
#[derive(Debug, Clone, Copy)]
pub struct GhaffariConfig {
    /// Phases per `log₂(Δ+1)` (the theory needs a sufficiently large
    /// constant).
    pub phases_per_log_delta: u32,
    /// Additive slack phases.
    pub extra_phases: u32,
}

impl Default for GhaffariConfig {
    fn default() -> Self {
        GhaffariConfig {
            phases_per_log_delta: 6,
            extra_phases: 12,
        }
    }
}

impl GhaffariConfig {
    /// Number of two-round phases for maximum degree `delta`.
    pub fn phases(&self, delta: usize) -> u32 {
        let log_d = 64 - (delta as u64 + 1).leading_zeros();
        self.phases_per_log_delta * log_d + self.extra_phases
    }
}

/// Public state of the pre-shattering phase.
#[derive(Debug, Clone, PartialEq)]
pub enum GState {
    /// Still undecided.
    Undecided {
        /// Current desire level.
        p: f64,
        /// Whether this vertex marked itself this phase.
        marked: bool,
    },
    /// Joined the MIS.
    InMis,
    /// A neighbor joined.
    Out,
}

struct PreShatter {
    phases: u32,
}

impl SyncAlgorithm for PreShatter {
    type State = GState;
    /// `Some(true)` = in MIS, `Some(false)` = out, `None` = undecided after
    /// the phase budget (handed to the deterministic finisher).
    type Output = Option<bool>;

    fn init(&self, _init: &NodeInit<'_>) -> GState {
        GState::Undecided {
            p: 0.5,
            marked: false,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &GState,
        neighbors: &[GState],
    ) -> SyncStep<GState, Option<bool>> {
        match state {
            GState::InMis => SyncStep::Decide(GState::InMis, Some(true)),
            GState::Out => SyncStep::Decide(GState::Out, Some(false)),
            GState::Undecided { p, marked } => {
                if round > 2 * self.phases {
                    return SyncStep::Decide(state.clone(), None);
                }
                if round % 2 == 1 {
                    // Odd round: retire next to MIS members, update desire,
                    // mark.
                    if neighbors.iter().any(|nb| matches!(nb, GState::InMis)) {
                        return SyncStep::Decide(GState::Out, Some(false));
                    }
                    let crowding: f64 = neighbors
                        .iter()
                        .filter_map(|nb| match nb {
                            GState::Undecided { p, .. } => Some(*p),
                            _ => None,
                        })
                        .sum();
                    let next_p = if crowding >= 2.0 {
                        p / 2.0
                    } else {
                        (2.0 * p).min(0.5)
                    };
                    let marked = ctx.rng().gen::<f64>() < next_p;
                    SyncStep::Continue(GState::Undecided { p: next_p, marked })
                } else {
                    // Even round: lone marks join.
                    if *marked
                        && !neighbors
                            .iter()
                            .any(|nb| matches!(nb, GState::Undecided { marked: true, .. }))
                    {
                        SyncStep::Decide(GState::InMis, Some(true))
                    } else {
                        SyncStep::Continue(GState::Undecided {
                            p: *p,
                            marked: false,
                        })
                    }
                }
            }
        }
    }
}

/// Result of the pre-shattering phase alone (exposed for the shattering
/// experiments, which measure the undecided components' sizes).
#[derive(Debug, Clone)]
pub struct PreShatterOutcome {
    /// `Some(true)` in MIS, `Some(false)` out, `None` undecided.
    pub status: Vec<Option<bool>>,
    /// Rounds used.
    pub rounds: u32,
}

/// Run only the randomized pre-shattering phase.
///
/// # Errors
///
/// Propagates engine errors (the phase has a fixed budget, so this only
/// fires if `2·phases + 2` exceeds the engine limit).
pub fn ghaffari_preshatter(
    g: &Graph,
    seed: u64,
    config: GhaffariConfig,
) -> Result<PreShatterOutcome, SimError> {
    let phases = config.phases(g.max_degree().max(1));
    let algo = PreShatter { phases };
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &algo,
        &ExecSpec::rounds(2 * phases + 4),
    )
    .strict()?;
    Ok(PreShatterOutcome {
        status: out.outputs,
        rounds: out.rounds,
    })
}

/// Full Ghaffari-style MIS: randomized pre-shattering + deterministic finish
/// (Linial + class sweep) on the undecided residual, using random
/// `O(log n)`-bit IDs (unique w.h.p.) for the deterministic part — exactly
/// the paper's remark that RandLOCAL can always synthesize IDs.
///
/// # Errors
///
/// Propagates engine errors from either phase.
pub fn ghaffari_mis(g: &Graph, seed: u64, config: GhaffariConfig) -> Result<MisOutcome, SimError> {
    let pre = ghaffari_preshatter(g, seed, config)?;
    let mut rounds = pre.rounds;

    // One extra round: undecided vertices adjacent to a last-moment MIS
    // member retire (the information is already at their neighbor).
    let mut residual: Vec<bool> = vec![false; g.n()];
    let mut in_set: Vec<bool> = vec![false; g.n()];
    for v in g.vertices() {
        match pre.status[v] {
            Some(true) => in_set[v] = true,
            Some(false) => {}
            None => {
                let blocked = g
                    .neighbors(v)
                    .iter()
                    .any(|nb| pre.status[nb.node] == Some(true));
                residual[v] = !blocked;
            }
        }
    }
    rounds += 1;

    if residual.iter().any(|&r| r) {
        // Deterministic finish on the residual: random IDs, grouped Linial,
        // class sweep.
        let mut rng = derived_rng(seed, 0x6871);
        let id_bits = 4 * (64 - (g.n() as u64).leading_zeros()) + 8;
        let ids: Vec<u64> = (0..g.n())
            .map(|_| rng.gen::<u64>() >> (64 - id_bits.min(63)))
            .collect();
        let group_of: Vec<u64> = residual
            .iter()
            .map(|&r| if r { 1 } else { NO_GROUP })
            .collect();
        let max_id = ids.iter().copied().max().unwrap_or(0);
        let schedule = LinialSchedule::new(max_id + 1, g.max_degree().max(1));
        let palette = schedule.final_palette() as usize;
        let linial = GroupLinial {
            schedule,
            colors: ids,
            group_of,
        };
        let linial_out = run_sync(
            g,
            Mode::deterministic(),
            &linial,
            &ExecSpec::rounds(g.n() as u32 + 200),
        )
        .strict()?;
        rounds += linial_out.rounds;
        let colors: Labeling<usize> =
            Labeling::new(linial_out.outputs.iter().map(|&c| c as usize).collect());
        let sweep = mis_by_color(g, &colors, palette, Some(&residual));
        rounds += sweep.rounds;
        for v in g.vertices() {
            if sweep.in_set[v] {
                in_set[v] = true;
            }
        }
    }

    Ok(MisOutcome { in_set, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::Mis;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_mis(g: &Graph, in_set: &[bool]) {
        let labels: Labeling<bool> = in_set.to_vec().into();
        Mis::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid MIS: {v}"));
    }

    #[test]
    fn valid_on_cycles() {
        for n in [5usize, 16, 99] {
            let g = gen::cycle(n);
            let out = ghaffari_mis(&g, 1, GhaffariConfig::default()).unwrap();
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn valid_on_random_regular() {
        let mut rng = StdRng::seed_from_u64(10);
        for d in [3usize, 5, 8] {
            let g = gen::random_regular(60, d, &mut rng).unwrap();
            let out = ghaffari_mis(&g, d as u64, GhaffariConfig::default()).unwrap();
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn valid_on_gnp() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnp(120, 0.06, &mut rng);
        let out = ghaffari_mis(&g, 3, GhaffariConfig::default()).unwrap();
        assert_valid_mis(&g, &out.in_set);
    }

    #[test]
    fn preshatter_decides_most_vertices() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = gen::random_regular(500, 4, &mut rng).unwrap();
        let pre = ghaffari_preshatter(&g, 7, GhaffariConfig::default()).unwrap();
        let undecided = pre.status.iter().filter(|s| s.is_none()).count();
        assert!(
            undecided * 10 <= g.n(),
            "pre-shattering left {undecided}/{} undecided",
            g.n()
        );
    }

    #[test]
    fn phase_budget_scales_with_log_delta() {
        let c = GhaffariConfig::default();
        assert!(c.phases(4) < c.phases(256));
        assert!(c.phases(256) < c.phases(65536));
        // Logarithmic, not linear (log₂ 65537 = 17 vs log₂ 5 = 3):
        assert!(c.phases(65536) <= 4 * c.phases(4));
    }

    #[test]
    fn reproducible() {
        let g = gen::cycle(64);
        let a = ghaffari_mis(&g, 5, GhaffariConfig::default()).unwrap();
        let b = ghaffari_mis(&g, 5, GhaffariConfig::default()).unwrap();
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.rounds, b.rounds);
    }
}
