//! Luby's randomized MIS: `O(log n)` rounds w.h.p.
//!
//! Each two-round phase: every undecided vertex draws a random 64-bit value;
//! strict local minima join the MIS; neighbors of new MIS members drop out.
//! (Value collisions stall at worst one phase for the colliding pair and are
//! astronomically unlikely with 64-bit draws.)

use crate::mis::MisOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_model::{ExecSpec, Mode, NodeInit, SimError};
use rand::Rng;

/// Public per-vertex state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LubyState {
    /// Not participating (restricted runs).
    Inactive,
    /// Still undecided; holds this phase's draw.
    Undecided {
        /// The current random value, if one was drawn this phase.
        value: Option<u64>,
    },
    /// Joined the MIS.
    InMis,
    /// A neighbor joined the MIS.
    Out,
}

/// Luby's algorithm, optionally restricted to an active subset.
#[derive(Debug, Clone)]
pub struct Luby {
    active: Option<Vec<bool>>,
}

impl Luby {
    /// Run on the whole graph.
    pub fn new() -> Self {
        Luby { active: None }
    }

    /// Run on the subgraph induced by `active`.
    pub fn restricted(active: Vec<bool>) -> Self {
        Luby {
            active: Some(active),
        }
    }
}

impl Default for Luby {
    fn default() -> Self {
        Luby::new()
    }
}

impl SyncAlgorithm for Luby {
    type State = LubyState;
    type Output = bool;

    fn init(&self, init: &NodeInit<'_>) -> LubyState {
        match &self.active {
            Some(a) if !a[init.node] => LubyState::Inactive,
            _ => LubyState::Undecided { value: None },
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &LubyState,
        neighbors: &[LubyState],
    ) -> SyncStep<LubyState, bool> {
        match state {
            LubyState::Inactive => SyncStep::Decide(LubyState::Inactive, false),
            LubyState::InMis => SyncStep::Decide(LubyState::InMis, true),
            LubyState::Out => SyncStep::Decide(LubyState::Out, false),
            LubyState::Undecided { value } => {
                if round % 2 == 1 {
                    // Odd round: drop out next to fresh MIS members, else draw.
                    if neighbors.iter().any(|nb| matches!(nb, LubyState::InMis)) {
                        return SyncStep::Decide(LubyState::Out, false);
                    }
                    SyncStep::Continue(LubyState::Undecided {
                        value: Some(ctx.rng().gen()),
                    })
                } else {
                    // Even round: strict minimum among undecided neighbors joins.
                    let mine = value.expect("drawn in the previous odd round");
                    let is_min = neighbors.iter().all(|nb| match nb {
                        LubyState::Undecided { value: Some(v) } => mine < *v,
                        _ => true,
                    });
                    if is_min {
                        SyncStep::Decide(LubyState::InMis, true)
                    } else {
                        SyncStep::Continue(LubyState::Undecided { value: *value })
                    }
                }
            }
        }
    }
}

/// Run Luby's MIS.
///
/// # Errors
///
/// The engine's round-limit error if the algorithm did not finish within
/// `max_rounds` (probability `1/poly(n)` for `max_rounds = Ω(log n)`).
pub fn luby_mis(g: &Graph, seed: u64, max_rounds: u32) -> Result<MisOutcome, SimError> {
    luby_mis_restricted(g, seed, None, max_rounds)
}

/// [`luby_mis`] stepped with an explicit engine shard count — the entry
/// point for large-`n` scaling runs and shard-invariance checks. The result
/// is bit-identical to [`luby_mis`] for every shard count.
///
/// # Errors
///
/// See [`luby_mis`].
pub fn luby_mis_with_shards(
    g: &Graph,
    seed: u64,
    max_rounds: u32,
    shards: usize,
) -> Result<MisOutcome, SimError> {
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &Luby::new(),
        &ExecSpec::rounds(max_rounds).with_shards(shards),
    )
    .strict()?;
    Ok(MisOutcome {
        in_set: out.outputs,
        rounds: out.rounds,
    })
}

/// Run Luby's MIS on the subgraph induced by `active`.
///
/// # Errors
///
/// See [`luby_mis`].
pub fn luby_mis_restricted(
    g: &Graph,
    seed: u64,
    active: Option<Vec<bool>>,
    max_rounds: u32,
) -> Result<MisOutcome, SimError> {
    let algo = match active {
        Some(a) => Luby::restricted(a),
        None => Luby::new(),
    };
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &algo,
        &ExecSpec::rounds(max_rounds),
    )
    .strict()?;
    Ok(MisOutcome {
        in_set: out.outputs,
        rounds: out.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::Mis;
    use local_lcl::{Labeling, LclProblem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_mis(g: &Graph, in_set: &[bool]) {
        let labels: Labeling<bool> = in_set.to_vec().into();
        Mis::new()
            .validate(g, &labels)
            .unwrap_or_else(|v| panic!("invalid MIS: {v}"));
    }

    #[test]
    fn valid_on_cycles() {
        for n in [3usize, 4, 10, 101] {
            let g = gen::cycle(n);
            let out = luby_mis(&g, 1, 200).unwrap();
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..5 {
            let g = gen::gnp(70, 0.1, &mut rng);
            let out = luby_mis(&g, trial, 400).unwrap();
            assert_valid_mis(&g, &out.in_set);
        }
    }

    #[test]
    fn star_center_or_all_leaves() {
        let g = gen::star(10);
        let out = luby_mis(&g, 5, 100).unwrap();
        assert_valid_mis(&g, &out.in_set);
    }

    #[test]
    fn rounds_logarithmic() {
        let g = gen::cycle(4096);
        let out = luby_mis(&g, 2, 400).unwrap();
        assert!(out.rounds <= 80, "O(log n) expected, got {}", out.rounds);
    }

    #[test]
    fn restricted_ignores_inactive() {
        let g = gen::path(7);
        let active: Vec<bool> = (0..7).map(|v| v != 3).collect();
        let out = luby_mis_restricted(&g, 4, Some(active.clone()), 200).unwrap();
        assert!(!out.in_set[3], "inactive vertex stays out");
        // Each half must hold a valid MIS of its path.
        for (u, v) in [(0, 1), (1, 2), (4, 5), (5, 6)] {
            assert!(
                !(out.in_set[u] && out.in_set[v]),
                "adjacent members {u},{v}"
            );
        }
        for window in [[0, 1, 2], [4, 5, 6]] {
            assert!(
                window.iter().any(|&v| out.in_set[v]),
                "maximality within {window:?}"
            );
        }
    }

    #[test]
    fn reproducible() {
        let g = gen::cycle(64);
        let a = luby_mis(&g, 9, 200).unwrap();
        let b = luby_mis(&g, 9, 200).unwrap();
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn empty_graph() {
        let g = local_graphs::GraphBuilder::new(3).build();
        let out = luby_mis(&g, 0, 10).unwrap();
        assert_eq!(out.in_set, vec![true, true, true]);
    }
}
