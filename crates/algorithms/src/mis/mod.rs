//! Maximal independent set algorithms.
//!
//! * [`luby`] — Luby's RandLOCAL algorithm, `O(log n)` rounds w.h.p.
//! * [`by_color`] — the DetLOCAL baseline: Linial coloring, then one color
//!   class per round; `O(Δ² + log* n)` rounds.
//! * [`ghaffari`] — a Ghaffari-style desire-level algorithm whose
//!   pre-shattering phase runs `O(log Δ)` rounds, finished deterministically
//!   on the (w.h.p. small) undecided components — the paper's graph
//!   shattering pattern in action for MIS.
//! * [`ruling_set`] — `(2, k+1)`-ruling sets as MIS of the power graph
//!   `G^k`, simulated `k`-for-1; plus [`ruling_set::DilatedLuby`], the
//!   message-passing dilated lottery the workload catalog runs under
//!   faults.

pub mod by_color;
pub mod ghaffari;
pub mod luby;
pub mod ruling_set;

pub use by_color::{det_mis, mis_by_color};
pub use ghaffari::ghaffari_mis;
pub use luby::{luby_mis, luby_mis_with_shards};
pub use ruling_set::ruling_set as compute_ruling_set;
pub use ruling_set::{is_ruling_set, DilatedLuby, DilatedState};

/// The outcome of an MIS pipeline.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Per-vertex membership (inactive vertices in restricted runs get
    /// `false`).
    pub in_set: Vec<bool>,
    /// Total LOCAL rounds across all composed phases.
    pub rounds: u32,
}
