//! Distributed symmetry-breaking algorithms for the LOCAL model.
//!
//! Every algorithm the paper states, uses, or transforms, implemented as
//! message-passing protocols on the [`local_model`] round engine:
//!
//! * [`color`] — Linial's recoloring (Theorems 1–2), Cole–Vishkin,
//!   color reduction, randomized trial coloring, and Barenboim–Elkin tree
//!   coloring (Theorem 9).
//! * [`mis`] — Luby's randomized MIS, deterministic MIS via coloring, and a
//!   Ghaffari-style MIS with shattering.
//! * [`matching`] — Israeli–Itai randomized and color-based deterministic
//!   maximal matching.
//! * [`orientation`] — sinkless orientation algorithms and the zero-round
//!   strategies of Theorem 4's base case.
//! * [`tree`] — the paper's own contributions: the Theorem 10 graph-shattering
//!   Δ-coloring of trees and the Theorem 11 MIS-peeling algorithm for
//!   Δ ≥ 55.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod color;
pub mod matching;
pub mod mis;
pub mod orientation;
pub mod repair;
pub mod sync;
pub mod tree;
pub mod util;

pub use repair::{
    recover, recover_metered, recover_report, recover_traced, DefectiveGreedyFinisher, DegradedRun,
    EdgeGreedyFinisher, Finish, Finisher, GreedyColoringFinisher, LubyRestartFinisher, Recovery,
    RecoveryPolicy, RulingSetFinisher, SinklessFinisher,
};
pub use sync::{run_sync, SyncAlgorithm, SyncCtx, SyncOutcome, SyncRun, SyncStep};
