//! A "public state" programming layer over the round engine.
//!
//! Most symmetry-breaking algorithms in the literature are phrased as: *every
//! round, each vertex inspects its neighbors' current states and updates its
//! own*. [`SyncAlgorithm`] captures exactly that; [`run_sync`] compiles it to
//! a message-passing [`Protocol`] where each vertex broadcasts its state every
//! round.
//!
//! Round accounting: the reported complexity is the largest round in which
//! any vertex *decided* its output. Vertices keep broadcasting their final
//! state after deciding (processors in the LOCAL model never disappear;
//! messages are free), and the engine run terminates one bookkeeping sweep
//! after the last decision — that extra sweep is infrastructure, not
//! algorithmic cost, and is excluded from the metric.

use local_graphs::{Graph, PortId};
use local_model::{
    Action, Engine, GlobalParams, Mode, NodeInit, NodeIo, NodeProgram, Protocol, SimError,
};
use rand::RngCore;

/// The result of one [`SyncAlgorithm::update`].
#[derive(Debug, Clone)]
pub enum SyncStep<S, O> {
    /// Adopt a new state and keep running.
    Continue(S),
    /// Adopt a final state and fix the output. The state remains visible to
    /// neighbors in subsequent rounds.
    Decide(S, O),
}

/// Capabilities available inside [`SyncAlgorithm::update`].
pub struct SyncCtx<'a> {
    degree: usize,
    id: Option<u64>,
    params: &'a GlobalParams,
    rng: Option<&'a mut dyn RngCore>,
    back_ports: &'a [PortId],
}

impl<'a> SyncCtx<'a> {
    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Unique ID (DetLOCAL only).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Global parameters.
    pub fn params(&self) -> &GlobalParams {
        self.params
    }

    /// Private randomness (RandLOCAL only).
    ///
    /// # Panics
    ///
    /// Panics in a DetLOCAL run (model violation).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
            .as_deref_mut()
            .expect("model violation: SyncCtx::rng() in a DetLOCAL run")
    }

    /// The neighbor-side port of the edge on our port `p`: if `u` hears `v`
    /// through port `p`, then `v` hears `u` through `back_port(p)`.
    ///
    /// Port-to-port correspondence is learned in the first exchange (each
    /// node can announce its sending port), so exposing it here is
    /// model-legitimate; per-port indexing into neighbors' state vectors is
    /// what the matching and orientation protocols need.
    ///
    /// # Panics
    ///
    /// Panics if `p >= degree`.
    pub fn back_port(&self, p: PortId) -> PortId {
        self.back_ports[p]
    }
}

/// A round-synchronous algorithm over broadcast public states.
///
/// `update` is called with round numbers `1, 2, …`; at round `r` the
/// `neighbors` slice holds (by port) the states after round `r − 1`
/// (initial states for `r = 1`).
pub trait SyncAlgorithm: Sync {
    /// Public per-vertex state, broadcast to neighbors every round.
    type State: Clone + Send + Sync;
    /// Final per-vertex output.
    type Output: Clone + Send;

    /// The initial state of a vertex.
    fn init(&self, init: &NodeInit<'_>) -> Self::State;

    /// One round: compute the next state (and possibly the final output)
    /// from the current state and the neighbors' states.
    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &Self::State,
        neighbors: &[Self::State],
    ) -> SyncStep<Self::State, Self::Output>;
}

/// Outcome of [`run_sync`].
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Per-vertex outputs.
    pub outputs: Vec<O>,
    /// Algorithmic round complexity: the largest round in which a vertex
    /// decided.
    pub rounds: u32,
    /// Total messages sent, including the bookkeeping sweeps.
    pub messages: u64,
}

/// Engine node wrapping a [`SyncAlgorithm`] vertex.
pub struct SyncNode<'a, A: SyncAlgorithm> {
    algo: &'a A,
    state: A::State,
    decided: Option<(u32, A::Output)>,
    back_ports: Vec<PortId>,
    /// Last state heard per port. A neighbor that halted (its whole
    /// neighborhood decided) stops transmitting, but its state is final —
    /// the cache stands in for the silent final broadcasts.
    heard: Vec<Option<(A::State, bool)>>,
}

type SyncMsg<A> = (<A as SyncAlgorithm>::State, bool);

impl<'a, A: SyncAlgorithm> NodeProgram for SyncNode<'a, A> {
    type Msg = SyncMsg<A>;
    type Output = (A::Output, u32);

    fn step(&mut self, round: u32, io: &mut NodeIo<'_, Self::Msg>) -> Action<Self::Output> {
        if round == 0 {
            io.broadcast((self.state.clone(), false));
            return Action::Continue;
        }
        let mut neighbor_states: Vec<A::State> = Vec::with_capacity(io.degree());
        let mut all_neighbors_decided = true;
        for p in 0..io.degree() {
            if let Some((s, done)) = io.recv(p) {
                self.heard[p] = Some((s.clone(), *done));
            }
            let (s, done) = self.heard[p]
                .as_ref()
                .expect("every sync node broadcasts in round 0");
            neighbor_states.push(s.clone());
            all_neighbors_decided &= *done;
        }
        if self.decided.is_none() {
            let degree = io.degree();
            let id = io.id();
            let step = {
                let mut ctx = SyncCtx {
                    degree,
                    id,
                    params: io.params(),
                    rng: if io.is_randomized() {
                        Some(io.rng())
                    } else {
                        None
                    },
                    back_ports: &self.back_ports,
                };
                self.algo
                    .update(round, &mut ctx, &self.state, &neighbor_states)
            };
            match step {
                SyncStep::Continue(s) => self.state = s,
                SyncStep::Decide(s, o) => {
                    self.state = s;
                    self.decided = Some((round, o));
                }
            }
        } else if all_neighbors_decided {
            let (r, o) = self.decided.clone().expect("checked above");
            return Action::Halt((o, r));
        }
        io.broadcast((self.state.clone(), self.decided.is_some()));
        Action::Continue
    }
}

/// Protocol adapter for a [`SyncAlgorithm`].
pub struct SyncProtocol<'a, A> {
    algo: &'a A,
    /// Per-vertex back-port tables (local input established in round one of
    /// any real execution; see [`SyncCtx::back_port`]).
    back_ports: Vec<Vec<PortId>>,
}

impl<'a, A: SyncAlgorithm> Protocol for SyncProtocol<'a, A> {
    type Node = SyncNode<'a, A>;

    fn create(&self, init: &NodeInit<'_>) -> Self::Node {
        SyncNode {
            algo: self.algo,
            state: self.algo.init(init),
            decided: None,
            back_ports: self.back_ports[init.node].clone(),
            heard: vec![None; init.degree],
        }
    }
}

/// Run a [`SyncAlgorithm`] on `g` under `mode` with the engine's default
/// parameters.
///
/// # Errors
///
/// [`SimError::RoundLimitExceeded`] if some vertex never decides within
/// `max_rounds`.
pub fn run_sync<A: SyncAlgorithm>(
    g: &Graph,
    mode: Mode,
    algo: &A,
    max_rounds: u32,
) -> Result<SyncOutcome<A::Output>, SimError> {
    run_sync_with_params(g, mode, algo, max_rounds, GlobalParams::from_graph(g))
}

/// [`run_sync`] with explicit (possibly pretended) global parameters.
///
/// # Errors
///
/// [`SimError::RoundLimitExceeded`] if some vertex never decides within
/// `max_rounds`.
pub fn run_sync_with_params<A: SyncAlgorithm>(
    g: &Graph,
    mode: Mode,
    algo: &A,
    max_rounds: u32,
    params: GlobalParams,
) -> Result<SyncOutcome<A::Output>, SimError> {
    let back_ports = g
        .vertices()
        .map(|v| g.neighbors(v).iter().map(|nb| nb.back_port).collect())
        .collect();
    let protocol = SyncProtocol { algo, back_ports };
    let run = Engine::new(g, mode)
        .with_params(params)
        .with_max_rounds(max_rounds.saturating_add(2))
        .run(&protocol)?;
    let mut outputs = Vec::with_capacity(run.outputs.len());
    let mut rounds = 0;
    for (o, r) in run.outputs {
        rounds = rounds.max(r);
        outputs.push(o);
    }
    Ok(SyncOutcome {
        outputs,
        rounds,
        messages: run.stats.messages_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    /// Each vertex decides the maximum ID within distance `horizon`.
    struct MaxWithin {
        horizon: u32,
    }
    impl SyncAlgorithm for MaxWithin {
        type State = u64;
        type Output = u64;
        fn init(&self, init: &NodeInit<'_>) -> u64 {
            init.id.expect("DetLOCAL")
        }
        fn update(
            &self,
            round: u32,
            _ctx: &mut SyncCtx<'_>,
            state: &u64,
            neighbors: &[u64],
        ) -> SyncStep<u64, u64> {
            let next = neighbors.iter().copied().fold(*state, u64::max);
            if round >= self.horizon {
                SyncStep::Decide(next, next)
            } else {
                SyncStep::Continue(next)
            }
        }
    }

    #[test]
    fn max_within_radius() {
        let g = gen::path(6);
        let out = run_sync(&g, Mode::deterministic(), &MaxWithin { horizon: 2 }, 100).unwrap();
        assert_eq!(out.rounds, 2);
        // Vertex 0 sees IDs within distance 2: {0,1,2} → 2.
        assert_eq!(out.outputs[0], 2);
        assert_eq!(out.outputs[5], 5);
        assert_eq!(out.outputs[3], 5);
    }

    /// Decide immediately at round 1 with no dependence on neighbors.
    struct Instant;
    impl SyncAlgorithm for Instant {
        type State = ();
        type Output = usize;
        fn init(&self, _init: &NodeInit<'_>) {}
        fn update(
            &self,
            _round: u32,
            ctx: &mut SyncCtx<'_>,
            _state: &(),
            _neighbors: &[()],
        ) -> SyncStep<(), usize> {
            SyncStep::Decide((), ctx.degree())
        }
    }

    #[test]
    fn instant_decision_counts_one_round() {
        let g = gen::star(4);
        let out = run_sync(&g, Mode::deterministic(), &Instant, 10).unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.outputs[0], 3);
    }

    /// Vertices decide at different rounds (by ID), exercising the
    /// keep-broadcasting-after-decide path.
    struct Staggered;
    impl SyncAlgorithm for Staggered {
        type State = u64;
        type Output = u64;
        fn init(&self, init: &NodeInit<'_>) -> u64 {
            init.id.expect("DetLOCAL")
        }
        fn update(
            &self,
            round: u32,
            _ctx: &mut SyncCtx<'_>,
            state: &u64,
            neighbors: &[u64],
        ) -> SyncStep<u64, u64> {
            if u64::from(round) > *state {
                // Output = sum of neighbor states visible at decision time;
                // neighbors that decided earlier must still be visible.
                SyncStep::Decide(*state, neighbors.iter().sum())
            } else {
                SyncStep::Continue(*state)
            }
        }
    }

    #[test]
    fn staggered_decisions_see_decided_neighbors() {
        let g = gen::path(3);
        let out = run_sync(&g, Mode::deterministic(), &Staggered, 100).unwrap();
        assert_eq!(out.rounds, 3); // vertex 2 decides at round 3
        assert_eq!(out.outputs[1], 2);
    }

    #[test]
    fn round_limit_propagates() {
        struct Never;
        impl SyncAlgorithm for Never {
            type State = ();
            type Output = ();
            fn init(&self, _init: &NodeInit<'_>) {}
            fn update(
                &self,
                _round: u32,
                _ctx: &mut SyncCtx<'_>,
                _state: &(),
                _neighbors: &[()],
            ) -> SyncStep<(), ()> {
                SyncStep::Continue(())
            }
        }
        let g = gen::path(2);
        assert!(matches!(
            run_sync(&g, Mode::deterministic(), &Never, 5),
            Err(SimError::RoundLimitExceeded { .. })
        ));
    }
}
