//! A "public state" programming layer over the round engine.
//!
//! Most symmetry-breaking algorithms in the literature are phrased as: *every
//! round, each vertex inspects its neighbors' current states and updates its
//! own*. [`SyncAlgorithm`] captures exactly that; [`run_sync`] compiles it to
//! a message-passing [`Protocol`] where each vertex broadcasts its state every
//! round.
//!
//! Round accounting: the reported complexity is the largest round in which
//! any vertex *decided* its output. Vertices keep broadcasting their final
//! state after deciding (processors in the LOCAL model never disappear;
//! messages are free), and the engine run terminates one bookkeeping sweep
//! after the last decision — that extra sweep is infrastructure, not
//! algorithmic cost, and is excluded from the metric.

use local_graphs::{Graph, PortId};
use local_model::{
    Action, Breach, Budget, Engine, ExecSpec, GlobalParams, Mode, NodeInit, NodeIo, NodeProgram,
    Outcome, Protocol, SimError,
};
use rand::RngCore;

/// The result of one [`SyncAlgorithm::update`].
#[derive(Debug, Clone)]
pub enum SyncStep<S, O> {
    /// Adopt a new state and keep running.
    Continue(S),
    /// Adopt a final state and fix the output. The state remains visible to
    /// neighbors in subsequent rounds.
    Decide(S, O),
}

/// Capabilities available inside [`SyncAlgorithm::update`].
pub struct SyncCtx<'a> {
    degree: usize,
    id: Option<u64>,
    params: &'a GlobalParams,
    rng: Option<&'a mut dyn RngCore>,
    back_ports: &'a [PortId],
}

impl<'a> SyncCtx<'a> {
    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Unique ID (DetLOCAL only).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Global parameters.
    pub fn params(&self) -> &GlobalParams {
        self.params
    }

    /// Private randomness (RandLOCAL only).
    ///
    /// # Panics
    ///
    /// Panics in a DetLOCAL run (model violation).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
            .as_deref_mut()
            .expect("model violation: SyncCtx::rng() in a DetLOCAL run")
    }

    /// The neighbor-side port of the edge on our port `p`: if `u` hears `v`
    /// through port `p`, then `v` hears `u` through `back_port(p)`.
    ///
    /// Port-to-port correspondence is learned in the first exchange (each
    /// node can announce its sending port), so exposing it here is
    /// model-legitimate; per-port indexing into neighbors' state vectors is
    /// what the matching and orientation protocols need.
    ///
    /// # Panics
    ///
    /// Panics if `p >= degree`.
    pub fn back_port(&self, p: PortId) -> PortId {
        self.back_ports[p]
    }
}

/// A round-synchronous algorithm over broadcast public states.
///
/// `update` is called with round numbers `1, 2, …`; at round `r` the
/// `neighbors` slice holds (by port) the states after round `r − 1`
/// (initial states for `r = 1`).
pub trait SyncAlgorithm: Sync {
    /// Public per-vertex state, broadcast to neighbors every round.
    type State: Clone + Send + Sync;
    /// Final per-vertex output.
    type Output: Clone + Send;

    /// The initial state of a vertex.
    fn init(&self, init: &NodeInit<'_>) -> Self::State;

    /// One round: compute the next state (and possibly the final output)
    /// from the current state and the neighbors' states.
    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &Self::State,
        neighbors: &[Self::State],
    ) -> SyncStep<Self::State, Self::Output>;
}

/// The strict all-decided shape, recovered from a [`SyncRun`] by
/// [`SyncRun::strict`].
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Per-vertex outputs.
    pub outputs: Vec<O>,
    /// Algorithmic round complexity: the largest round in which a vertex
    /// decided.
    pub rounds: u32,
    /// Total messages sent, including the bookkeeping sweeps.
    pub messages: u64,
}

/// Engine node wrapping a [`SyncAlgorithm`] vertex.
pub struct SyncNode<'a, A: SyncAlgorithm> {
    algo: &'a A,
    state: A::State,
    decided: Option<(u32, A::Output)>,
    back_ports: Vec<PortId>,
    /// Last state heard per port. A neighbor that halted (its whole
    /// neighborhood decided) stops transmitting, but its state is final —
    /// the cache stands in for the silent final broadcasts.
    heard: Vec<Option<(A::State, bool)>>,
}

type SyncMsg<A> = (<A as SyncAlgorithm>::State, bool);

impl<'a, A: SyncAlgorithm> NodeProgram for SyncNode<'a, A> {
    type Msg = SyncMsg<A>;
    type Output = (A::Output, u32);

    fn step(&mut self, round: u32, io: &mut NodeIo<'_, Self::Msg>) -> Action<Self::Output> {
        if round == 0 {
            io.broadcast((self.state.clone(), false));
            return Action::Continue;
        }
        let mut neighbor_states: Vec<A::State> = Vec::with_capacity(io.degree());
        let mut all_neighbors_decided = true;
        for p in 0..io.degree() {
            if let Some((s, done)) = io.recv(p) {
                self.heard[p] = Some((s.clone(), *done));
            }
            let (s, done) = self.heard[p]
                .as_ref()
                .expect("every sync node broadcasts in round 0");
            neighbor_states.push(s.clone());
            all_neighbors_decided &= *done;
        }
        if self.decided.is_none() {
            let degree = io.degree();
            let id = io.id();
            let step = {
                let mut ctx = SyncCtx {
                    degree,
                    id,
                    params: io.params(),
                    rng: if io.is_randomized() {
                        Some(io.rng())
                    } else {
                        None
                    },
                    back_ports: &self.back_ports,
                };
                self.algo
                    .update(round, &mut ctx, &self.state, &neighbor_states)
            };
            match step {
                SyncStep::Continue(s) => self.state = s,
                SyncStep::Decide(s, o) => {
                    self.state = s;
                    self.decided = Some((round, o));
                }
            }
        } else if all_neighbors_decided {
            let (r, o) = self.decided.clone().expect("checked above");
            return Action::Halt((o, r));
        }
        io.broadcast((self.state.clone(), self.decided.is_some()));
        Action::Continue
    }
}

/// Protocol adapter for a [`SyncAlgorithm`].
pub struct SyncProtocol<'a, A> {
    algo: &'a A,
    /// Per-vertex back-port tables (local input established in round one of
    /// any real execution; see [`SyncCtx::back_port`]).
    back_ports: Vec<Vec<PortId>>,
}

impl<'a, A: SyncAlgorithm> Protocol for SyncProtocol<'a, A> {
    type Node = SyncNode<'a, A>;

    fn create(&self, init: &NodeInit<'_>) -> Self::Node {
        SyncNode {
            algo: self.algo,
            state: self.algo.init(init),
            decided: None,
            back_ports: self.back_ports[init.node].clone(),
            heard: vec![None; init.degree],
        }
    }
}

/// Outcome of [`run_sync`]: per-vertex fates with partial outputs.
///
/// `Halted { round, output }` carries the round in which the vertex
/// *decided* (the sync-layer metric, one less than its engine halt round).
/// Fault-free runs under a sufficient budget have every vertex `Halted`;
/// [`strict`](Self::strict) recovers the all-decided [`SyncOutcome`] shape.
#[derive(Debug, Clone)]
pub struct SyncRun<O> {
    /// Per-vertex fates, indexed by vertex.
    pub outcomes: Vec<Outcome<O>>,
    /// Engine sweeps consumed.
    pub sweeps: u32,
    /// Total messages sent.
    pub messages: u64,
    /// Messages discarded by drop faults.
    pub dropped: u64,
    /// Messages deferred one round by delay faults.
    pub delayed: u64,
    /// Which budget axis cut the run, if any.
    pub breach: Option<Breach>,
    /// The engine round limit the run executed under (algorithmic budget
    /// plus bookkeeping sweeps) — reported on [`strict`](Self::strict)'s
    /// error.
    round_limit: u32,
}

impl<O> SyncRun<O> {
    /// Per-vertex outputs for the vertices that decided, `None` elsewhere —
    /// the shape partial LCL validation consumes.
    pub fn partial_outputs(&self) -> Vec<Option<&O>> {
        self.outcomes.iter().map(Outcome::output).collect()
    }

    /// Count of vertices that decided / crashed / were cut.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut halted = 0;
        let mut crashed = 0;
        let mut cut = 0;
        for o in &self.outcomes {
            match o {
                Outcome::Halted { .. } => halted += 1,
                Outcome::Crashed { .. } => crashed += 1,
                Outcome::Cut => cut += 1,
            }
        }
        (halted, crashed, cut)
    }

    /// The largest decided round (0 if nobody decided).
    pub fn max_decided_round(&self) -> u32 {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Halted { round, .. } => Some(*round),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Collapse into the strict all-decided [`SyncOutcome`] shape.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if any vertex was cut by the budget.
    ///
    /// # Panics
    ///
    /// If a vertex crashed: crash-stop fates have no strict equivalent, so
    /// calling this on a run executed under a crashing fault plan is a logic
    /// error.
    pub fn strict(self) -> Result<SyncOutcome<O>, SimError> {
        let (_, crashed, cut) = self.counts();
        assert_eq!(crashed, 0, "strict() on a run with crashed vertices");
        if cut > 0 {
            return Err(SimError::RoundLimitExceeded {
                limit: self.round_limit,
                live_nodes: cut,
                live_sample: self
                    .outcomes
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_cut())
                    .map(|(v, _)| v)
                    .take(SimError::LIVE_SAMPLE_CAP)
                    .collect(),
            });
        }
        let mut outputs = Vec::with_capacity(self.outcomes.len());
        let mut rounds = 0;
        for o in self.outcomes {
            match o {
                Outcome::Halted { round, output } => {
                    rounds = rounds.max(round);
                    outputs.push(output);
                }
                _ => unreachable!("counted above"),
            }
        }
        Ok(SyncOutcome {
            outputs,
            rounds,
            messages: self.messages,
        })
    }
}

/// Engine node wrapping a [`SyncAlgorithm`] vertex for faulty runs.
///
/// Differs from [`SyncNode`] in two fault-model concessions:
///
/// * The last-heard cache is pre-seeded with every neighbor's *initial*
///   state, so a dropped message means "stale state" rather than a panic —
///   crash-stop neighbors simply freeze at their last delivered state.
/// * A vertex halts one round after deciding (one final broadcast), instead
///   of waiting for all neighbors to decide — a crashed neighbor would
///   otherwise pin the whole run at the sweep budget.
pub struct FaultySyncNode<'a, A: SyncAlgorithm> {
    algo: &'a A,
    state: A::State,
    decided: Option<(u32, A::Output)>,
    back_ports: Vec<PortId>,
    /// Last state heard per port, seeded with the neighbor's initial state.
    heard: Vec<A::State>,
}

impl<'a, A: SyncAlgorithm> NodeProgram for FaultySyncNode<'a, A> {
    type Msg = A::State;
    type Output = (A::Output, u32);

    fn step(&mut self, round: u32, io: &mut NodeIo<'_, Self::Msg>) -> Action<Self::Output> {
        if round == 0 {
            io.broadcast(self.state.clone());
            return Action::Continue;
        }
        for p in 0..io.degree() {
            if let Some(s) = io.recv(p) {
                self.heard[p] = s.clone();
            }
        }
        if let Some((r, o)) = self.decided.clone() {
            // The final state went out last round; nothing left to do.
            return Action::Halt((o, r));
        }
        let step = {
            let degree = io.degree();
            let id = io.id();
            let mut ctx = SyncCtx {
                degree,
                id,
                params: io.params(),
                rng: if io.is_randomized() {
                    Some(io.rng())
                } else {
                    None
                },
                back_ports: &self.back_ports,
            };
            self.algo.update(round, &mut ctx, &self.state, &self.heard)
        };
        match step {
            SyncStep::Continue(s) => self.state = s,
            SyncStep::Decide(s, o) => {
                self.state = s;
                self.decided = Some((round, o));
            }
        }
        io.broadcast(self.state.clone());
        Action::Continue
    }
}

/// Protocol adapter for faulty [`SyncAlgorithm`] runs.
pub struct FaultySyncProtocol<'a, A: SyncAlgorithm> {
    algo: &'a A,
    graph: &'a Graph,
    back_ports: Vec<Vec<PortId>>,
    /// Every vertex's initial state, used to seed the last-heard caches.
    init_states: Vec<A::State>,
}

impl<'a, A: SyncAlgorithm> Protocol for FaultySyncProtocol<'a, A> {
    type Node = FaultySyncNode<'a, A>;

    fn create(&self, init: &NodeInit<'_>) -> Self::Node {
        let heard = self
            .graph
            .neighbors(init.node)
            .iter()
            .map(|nb| self.init_states[nb.node].clone())
            .collect();
        FaultySyncNode {
            algo: self.algo,
            state: self.init_states[init.node].clone(),
            decided: None,
            back_ports: self.back_ports[init.node].clone(),
            heard,
        }
    }
}

/// Run a [`SyncAlgorithm`] on `g` under `mode`, as described by `spec` —
/// the single sync-layer entry point.
///
/// The spec's knobs compose freely:
///
/// * `spec.budget.max_rounds` counts *algorithmic* rounds; the engine gets
///   two extra bookkeeping sweeps on that axis (other budget axes pass
///   through unchanged). An absent budget allows 100 000 rounds.
/// * `spec.params` overrides the advertised global parameters (Theorems
///   3/6/8 pretend the graph is larger than it is).
/// * `spec.faults` injects message drops, delays, and crash-stop nodes. The
///   fault-tolerant node wrapper ([`FaultySyncNode`]) differs observably
///   from the fault-free one ([`SyncNode`]) — pre-seeded last-heard caches,
///   halting one round after deciding — so the fault-free case (`None`)
///   runs [`SyncNode`], bit-identical to the pre-refactor `run_sync`.
/// * `spec.trace` receives the engine's per-round events (live counts,
///   message volume, crashes, fault-plane drops/delays, budget consumption).
///
/// Never errors: a vertex that cannot decide within the budget is reported
/// as [`Outcome::Cut`] (and a crashed one as [`Outcome::Crashed`]) with
/// every other vertex's output intact. Use [`SyncRun::strict`] where the
/// old `Result<SyncOutcome, SimError>` shape is wanted.
pub fn run_sync<A: SyncAlgorithm>(
    g: &Graph,
    mode: Mode,
    algo: &A,
    spec: &ExecSpec<'_>,
) -> SyncRun<A::Output> {
    let params = spec.params.unwrap_or_else(|| GlobalParams::from_graph(g));
    let budget = spec.budget.unwrap_or(Budget::rounds(100_000));
    let engine_budget = Budget {
        max_rounds: budget.max_rounds.saturating_add(2),
        ..budget
    };
    let back_ports: Vec<Vec<PortId>> = g
        .vertices()
        .map(|v| g.neighbors(v).iter().map(|nb| nb.back_port).collect())
        .collect();
    let engine_spec = ExecSpec {
        params: Some(params),
        budget: Some(engine_budget),
        faults: spec.faults,
        trace: spec.trace,
        metrics: spec.metrics,
        shards: spec.shards,
    };
    let engine = Engine::new(g, mode.clone());
    let run = match spec.faults {
        None => engine.execute(&engine_spec, &SyncProtocol { algo, back_ports }),
        Some(_) => {
            let ids: Option<Vec<u64>> = match &mode {
                Mode::Deterministic { ids } => Some(ids.assign(g)),
                Mode::Randomized { .. } => None,
            };
            let init_states: Vec<A::State> = g
                .vertices()
                .map(|v| {
                    algo.init(&NodeInit {
                        node: v,
                        degree: g.degree(v),
                        id: ids.as_ref().map(|ids| ids[v]),
                        params: &params,
                    })
                })
                .collect();
            let protocol = FaultySyncProtocol {
                algo,
                graph: g,
                back_ports,
                init_states,
            };
            engine.execute(&engine_spec, &protocol)
        }
    };
    SyncRun {
        outcomes: run
            .outcomes
            .into_iter()
            .map(|o| match o {
                Outcome::Halted {
                    output: (o, decided),
                    ..
                } => Outcome::Halted {
                    round: decided,
                    output: o,
                },
                Outcome::Crashed { round } => Outcome::Crashed { round },
                Outcome::Cut => Outcome::Cut,
            })
            .collect(),
        sweeps: run.stats.sweeps,
        messages: run.stats.messages_sent,
        dropped: run.dropped,
        delayed: run.delayed,
        breach: run.breach,
        round_limit: engine_budget.max_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_model::{FaultPlan, FaultSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Each vertex decides the maximum ID within distance `horizon`.
    struct MaxWithin {
        horizon: u32,
    }
    impl SyncAlgorithm for MaxWithin {
        type State = u64;
        type Output = u64;
        fn init(&self, init: &NodeInit<'_>) -> u64 {
            init.id.expect("DetLOCAL")
        }
        fn update(
            &self,
            round: u32,
            _ctx: &mut SyncCtx<'_>,
            state: &u64,
            neighbors: &[u64],
        ) -> SyncStep<u64, u64> {
            let next = neighbors.iter().copied().fold(*state, u64::max);
            if round >= self.horizon {
                SyncStep::Decide(next, next)
            } else {
                SyncStep::Continue(next)
            }
        }
    }

    #[test]
    fn max_within_radius() {
        let g = gen::path(6);
        let out = run_sync(
            &g,
            Mode::deterministic(),
            &MaxWithin { horizon: 2 },
            &ExecSpec::rounds(100),
        )
        .strict()
        .unwrap();
        assert_eq!(out.rounds, 2);
        // Vertex 0 sees IDs within distance 2: {0,1,2} → 2.
        assert_eq!(out.outputs[0], 2);
        assert_eq!(out.outputs[5], 5);
        assert_eq!(out.outputs[3], 5);
    }

    /// Decide immediately at round 1 with no dependence on neighbors.
    struct Instant;
    impl SyncAlgorithm for Instant {
        type State = ();
        type Output = usize;
        fn init(&self, _init: &NodeInit<'_>) {}
        fn update(
            &self,
            _round: u32,
            ctx: &mut SyncCtx<'_>,
            _state: &(),
            _neighbors: &[()],
        ) -> SyncStep<(), usize> {
            SyncStep::Decide((), ctx.degree())
        }
    }

    #[test]
    fn instant_decision_counts_one_round() {
        let g = gen::star(4);
        let out = run_sync(&g, Mode::deterministic(), &Instant, &ExecSpec::rounds(10))
            .strict()
            .unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(out.outputs[0], 3);
    }

    /// Vertices decide at different rounds (by ID), exercising the
    /// keep-broadcasting-after-decide path.
    struct Staggered;
    impl SyncAlgorithm for Staggered {
        type State = u64;
        type Output = u64;
        fn init(&self, init: &NodeInit<'_>) -> u64 {
            init.id.expect("DetLOCAL")
        }
        fn update(
            &self,
            round: u32,
            _ctx: &mut SyncCtx<'_>,
            state: &u64,
            neighbors: &[u64],
        ) -> SyncStep<u64, u64> {
            if u64::from(round) > *state {
                // Output = sum of neighbor states visible at decision time;
                // neighbors that decided earlier must still be visible.
                SyncStep::Decide(*state, neighbors.iter().sum())
            } else {
                SyncStep::Continue(*state)
            }
        }
    }

    #[test]
    fn staggered_decisions_see_decided_neighbors() {
        let g = gen::path(3);
        let out = run_sync(
            &g,
            Mode::deterministic(),
            &Staggered,
            &ExecSpec::rounds(100),
        )
        .strict()
        .unwrap();
        assert_eq!(out.rounds, 3); // vertex 2 decides at round 3
        assert_eq!(out.outputs[1], 2);
    }

    #[test]
    fn faulty_run_with_trivial_plan_matches_run_sync() {
        let g = gen::gnp(20, 0.3, &mut StdRng::seed_from_u64(7));
        let clean = run_sync(
            &g,
            Mode::deterministic(),
            &MaxWithin { horizon: 2 },
            &ExecSpec::rounds(100),
        )
        .strict()
        .unwrap();
        let plan = FaultPlan::none();
        let faulty = run_sync(
            &g,
            Mode::deterministic(),
            &MaxWithin { horizon: 2 },
            &ExecSpec::rounds(100).with_faults(&plan),
        );
        let (halted, crashed, cut) = faulty.counts();
        assert_eq!((halted, crashed, cut), (g.n(), 0, 0));
        assert_eq!(faulty.max_decided_round(), clean.rounds);
        for (v, o) in faulty.outcomes.iter().enumerate() {
            assert_eq!(o.output(), Some(&clean.outputs[v]));
        }
    }

    #[test]
    fn crashed_vertices_yield_partial_outputs() {
        let g = gen::path(6);
        // Vertex 2 crashes before it can decide; everyone else finishes.
        let plan = FaultPlan::from_crash_schedule(vec![None, None, Some(1), None, None, None]);
        let out = run_sync(
            &g,
            Mode::deterministic(),
            &MaxWithin { horizon: 3 },
            &ExecSpec::rounds(100).with_faults(&plan),
        );
        let (halted, crashed, cut) = out.counts();
        assert_eq!((halted, crashed, cut), (5, 1, 0));
        assert!(out.outcomes[2].is_crashed());
        let partial = out.partial_outputs();
        assert!(partial[2].is_none());
        // Vertex 5 sits 3 hops from the crash: its distance-3 max (id 5,
        // which is its own) is unaffected.
        assert_eq!(partial[5], Some(&5));
        // Vertex 3 should have seen id 5 through untouched edges.
        assert_eq!(partial[3], Some(&5));
    }

    #[test]
    fn certain_drops_leave_stale_states_not_panics() {
        let g = gen::path(4);
        // Drop everything: each vertex only ever sees the initial states it
        // was seeded with, so the distance-2 max degrades to its own ID...
        let plan = FaultPlan::sample(&g, &FaultSpec::none().with_drop(1.0), 3);
        let out = run_sync(
            &g,
            Mode::deterministic(),
            &MaxWithin { horizon: 2 },
            &ExecSpec::rounds(100).with_faults(&plan),
        );
        let (halted, crashed, cut) = out.counts();
        assert_eq!((halted, crashed, cut), (4, 0, 0));
        // ...or rather to the max over the seeded initial neighbor states,
        // i.e. the distance-1 max instead of the distance-2 max.
        assert_eq!(out.partial_outputs()[0], Some(&1));
        assert!(out.dropped > 0);
    }

    #[test]
    fn round_limit_propagates() {
        struct Never;
        impl SyncAlgorithm for Never {
            type State = ();
            type Output = ();
            fn init(&self, _init: &NodeInit<'_>) {}
            fn update(
                &self,
                _round: u32,
                _ctx: &mut SyncCtx<'_>,
                _state: &(),
                _neighbors: &[()],
            ) -> SyncStep<(), ()> {
                SyncStep::Continue(())
            }
        }
        let g = gen::path(2);
        assert!(matches!(
            run_sync(&g, Mode::deterministic(), &Never, &ExecSpec::rounds(5)).strict(),
            Err(SimError::RoundLimitExceeded { .. })
        ));
    }
}
