//! Polynomial cover-free set systems for Linial's one-round recoloring.
//!
//! Theorem 1 (Linial): a `k`-colored graph can be recolored with
//! `5Δ² log k` colors in one round. The engine of the proof is a
//! *Δ-cover-free family*: sets `S_1, …, S_k` over a ground set of size
//! `O(Δ² log k)` such that no `S_i` is covered by the union of any Δ others —
//! a vertex with old color `i` picks a point of `S_i` outside its neighbors'
//! sets as its new color.
//!
//! We use the explicit polynomial construction (Erdős–Frankl–Füredi):
//! identify color `c < q^(d+1)` with the degree-`≤ d` polynomial over
//! `GF(q)` whose coefficients are `c`'s base-`q` digits, and set
//! `S_c = {(x, p_c(x)) : x ∈ GF(q)}`. Distinct polynomials agree on ≤ `d`
//! points, so `q > Δ·d` makes the family Δ-cover-free, with ground set
//! `q² = O((Δ log_Δ k)²)`. That is slightly coarser than Linial's
//! probabilistic `5Δ² log k`, but iterates to `O(Δ²)` colors in `O(log* k)`
//! rounds all the same (documented in DESIGN.md).

/// Deterministic Miller–Rabin-free primality test by trial division (the
/// moduli we need are tiny — `q = O(Δ log k)`).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Smallest prime `≥ n`.
fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    loop {
        if is_prime(n) {
            return n;
        }
        n += 1;
    }
}

/// Whether `q^e ≥ k`, computed without overflow.
fn pow_at_least(q: u64, e: u32, k: u64) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..e {
        acc = acc.saturating_mul(u128::from(q));
        if acc >= u128::from(k) {
            return true;
        }
    }
    acc >= u128::from(k)
}

/// Smallest integer `r` with `r^e ≥ k`.
fn ceil_root(k: u64, e: u32) -> u64 {
    if k <= 1 {
        return 1;
    }
    let mut lo = 1u64;
    let mut hi = k;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let pow = (0..e).try_fold(1u128, |acc, _| {
            let next = acc * u128::from(mid);
            if next >= u128::from(k) {
                None // already big enough; stop early to avoid overflow
            } else {
                Some(next)
            }
        });
        let big_enough = pow.is_none() || pow.is_some_and(|p| p >= u128::from(k));
        if big_enough {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// A Δ-cover-free family realized by polynomials over `GF(q)`.
///
/// Maps old colors in `0..k` to new colors in `0..q²` such that any vertex,
/// knowing only its own old color and its ≤ Δ neighbors' old colors (all
/// distinct from its own), can pick a new color distinct from every
/// neighbor's possible pick that shares its evaluation point.
///
/// # Example
///
/// ```
/// use local_algorithms::color::PolyFamily;
///
/// let fam = PolyFamily::new(1 << 20, 4);
/// assert!(fam.palette() < 1 << 20, "one round must shrink a 2^20 palette");
/// let c = fam.recolor(12345, &[1, 2, 3, 4]);
/// assert!(c < fam.palette());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyFamily {
    q: u64,
    d: u32,
    k: u64,
    delta: usize,
}

impl PolyFamily {
    /// Build the family for source palette `k` and maximum degree `delta`,
    /// choosing `(q, d)` to minimize the target palette `q²`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64, delta: usize) -> Self {
        assert!(k > 0, "source palette must be nonempty");
        let delta = delta.max(1);
        let mut best: Option<PolyFamily> = None;
        for d in 1..=64u32 {
            let q = next_prime((delta as u64 * u64::from(d) + 1).max(ceil_root(k, d + 1)));
            let cand = PolyFamily { q, d, k, delta };
            if best.is_none_or(|b: PolyFamily| cand.palette_wide() < b.palette_wide()) {
                best = Some(cand);
            }
            // Once q is pinned by Δ·d alone, larger d only hurts.
            let covers_k = pow_at_least(q, d + 1, k);
            if covers_k && q == next_prime(delta as u64 * u64::from(d) + 1) {
                break;
            }
        }
        best.expect("loop runs at least once")
    }

    /// `q²` as a `u128` (the selection metric; never overflows).
    fn palette_wide(&self) -> u128 {
        u128::from(self.q) * u128::from(self.q)
    }

    /// Source palette size `k`.
    pub fn source_palette(&self) -> u64 {
        self.k
    }

    /// Target palette size `q²`.
    ///
    /// # Panics
    ///
    /// Panics if `q²` does not fit `u64` — such a family never shrinks its
    /// source palette and is filtered out by [`crate::color::LinialSchedule`];
    /// query [`PolyFamily::shrinks`] first when in doubt.
    pub fn palette(&self) -> u64 {
        u64::try_from(self.palette_wide()).expect("palette exceeds u64")
    }

    /// Whether applying this family actually shrinks the palette
    /// (`q² < k`).
    pub fn shrinks(&self) -> bool {
        self.palette_wide() < u128::from(self.k)
    }

    /// The field size `q`.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The polynomial degree bound `d`.
    pub fn degree_bound(&self) -> u32 {
        self.d
    }

    /// Evaluate color `c`'s polynomial at `x` (both `< q`… `x < q`).
    fn eval(&self, c: u64, x: u64) -> u64 {
        // Horner over the base-q digits of c, most significant first.
        let mut digits = [0u64; 65];
        let mut cc = c;
        let len = self.d as usize + 1;
        for slot in digits.iter_mut().take(len) {
            *slot = cc % self.q;
            cc /= self.q;
        }
        let mut acc = 0u64;
        for i in (0..len).rev() {
            acc = (acc * x + digits[i]) % self.q;
        }
        acc
    }

    /// The one-round recoloring rule: given this vertex's old color and its
    /// neighbors' old colors, return the new color in `0..q²`.
    ///
    /// Neighbors sharing the vertex's own color are ignored (the guarantee
    /// requires a proper input coloring; with an improper input the output
    /// may be improper too — garbage in, garbage out).
    ///
    /// # Panics
    ///
    /// Panics if more than Δ *distinct-colored* neighbors are supplied and no
    /// safe evaluation point exists, or if a color is `≥ k`.
    pub fn recolor(&self, own: u64, neighbors: &[u64]) -> u64 {
        assert!(
            own < self.k,
            "color {own} outside source palette {}",
            self.k
        );
        for &nb in neighbors {
            assert!(nb < self.k, "color {nb} outside source palette {}", self.k);
        }
        for x in 0..self.q {
            let mine = self.eval(own, x);
            let clash = neighbors
                .iter()
                .any(|&nb| nb != own && self.eval(nb, x) == mine);
            if !clash {
                return x * self.q + mine;
            }
        }
        panic!(
            "cover-free family exhausted (q = {}, d = {}, {} neighbors): \
             input coloring violated the Δ = {} bound",
            self.q,
            self.d,
            neighbors.len(),
            self.delta
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(9));
        assert!(is_prime(97));
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
        assert_eq!(next_prime(0), 2);
    }

    #[test]
    fn ceil_roots() {
        assert_eq!(ceil_root(1, 3), 1);
        assert_eq!(ceil_root(8, 3), 2);
        assert_eq!(ceil_root(9, 3), 3);
        assert_eq!(ceil_root(27, 3), 3);
        assert_eq!(ceil_root(28, 3), 4);
        assert_eq!(ceil_root(u64::MAX, 64), 2);
        assert_eq!(ceil_root(100, 2), 10);
        assert_eq!(ceil_root(101, 2), 11);
    }

    #[test]
    fn family_shrinks_large_palettes() {
        for delta in [2usize, 3, 8, 16] {
            let fam = PolyFamily::new(1 << 40, delta);
            assert!(
                fam.palette() < 1 << 40,
                "Δ={delta}: palette {} must shrink",
                fam.palette()
            );
            assert!(fam.q() > (delta as u64) * u64::from(fam.degree_bound()));
        }
    }

    #[test]
    fn distinct_colors_get_distinct_polynomials() {
        let fam = PolyFamily::new(1000, 3);
        // Two distinct colors agree on at most d points.
        for (a, b) in [(0u64, 1), (5, 900), (123, 124)] {
            let agreements = (0..fam.q())
                .filter(|&x| fam.eval(a, x) == fam.eval(b, x))
                .count();
            assert!(
                agreements <= fam.degree_bound() as usize,
                "colors {a},{b} agree on {agreements} > d points"
            );
        }
    }

    #[test]
    fn recolor_avoids_all_neighbors() {
        let fam = PolyFamily::new(10_000, 4);
        // Exhaustive-ish check over random tuples.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..200 {
            let own = next() % 10_000;
            let neighbors: Vec<u64> = (0..4)
                .map(|_| {
                    let mut c = next() % 10_000;
                    if c == own {
                        c = (c + 1) % 10_000;
                    }
                    c
                })
                .collect();
            let mine = fam.recolor(own, &neighbors);
            let x = mine / fam.q();
            let y = mine % fam.q();
            // The chosen point (x, p_own(x)) lies outside every neighbor's
            // set S_nb, so no neighbor can ever produce the same new color.
            for &nb in &neighbors {
                assert_ne!(fam.eval(nb, x), y, "neighbor {nb} collides at x = {x}");
            }
        }
    }

    #[test]
    fn recolor_is_proper_on_simulated_graph() {
        // Simulate the actual use: every vertex applies recolor with its
        // neighbors' colors; the result must be a proper coloring.
        use local_graphs::gen;
        let g = gen::complete(5);
        let fam = PolyFamily::new(100, 4);
        let old: Vec<u64> = vec![10, 20, 30, 40, 50];
        let new: Vec<u64> = g
            .vertices()
            .map(|v| {
                let nbs: Vec<u64> = g.neighbors(v).iter().map(|nb| old[nb.node]).collect();
                fam.recolor(old[v], &nbs)
            })
            .collect();
        for &(u, v) in g.edges() {
            assert_ne!(new[u], new[v], "edge ({u},{v}) monochromatic after recolor");
        }
    }

    #[test]
    #[should_panic(expected = "outside source palette")]
    fn recolor_rejects_out_of_range() {
        let fam = PolyFamily::new(10, 2);
        let _ = fam.recolor(10, &[]);
    }

    #[test]
    fn fixpoint_palette_is_quadratic_in_delta() {
        for delta in [2usize, 4, 8, 16, 32] {
            // Iterate the family to its fixpoint.
            let mut k = u64::MAX;
            for _ in 0..64 {
                let fam = PolyFamily::new(k, delta);
                if fam.palette() >= k {
                    break;
                }
                k = fam.palette();
            }
            let bound = 40 * (delta as u64) * (delta as u64);
            assert!(
                k <= bound,
                "Δ={delta}: fixpoint {k} exceeds β·Δ² bound {bound}"
            );
        }
    }
}
