//! Linial's `O(log* n)` coloring algorithm (Theorem 2).
//!
//! Starting from the `n^O(1)`-coloring given by unique IDs, apply the
//! one-round recoloring of Theorem 1 ([`crate::color::PolyFamily`]) until the
//! palette reaches its fixpoint `β·Δ²`. The number of iterations is
//! `O(log* n − log* Δ + 1)` because each round the palette drops from `k` to
//! `O((Δ log_Δ k)²)` — essentially a logarithm.

use crate::color::cover_free::PolyFamily;
use crate::color::ColoringOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, GlobalParams, IdAssignment, Mode, NodeInit};

/// The per-round family schedule: families to apply in order, ending at the
/// fixpoint palette.
#[derive(Debug, Clone)]
pub struct LinialSchedule {
    families: Vec<PolyFamily>,
    initial_palette: u64,
    final_palette: u64,
}

impl LinialSchedule {
    /// Compute the schedule for a graph whose vertices start with distinct
    /// colors in `0..initial_palette` and whose maximum degree is `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_palette == 0`.
    pub fn new(initial_palette: u64, delta: usize) -> Self {
        assert!(initial_palette > 0, "initial palette must be nonempty");
        let mut families = Vec::new();
        let mut k = initial_palette;
        loop {
            let fam = PolyFamily::new(k, delta);
            if !fam.shrinks() {
                break;
            }
            k = fam.palette();
            families.push(fam);
        }
        LinialSchedule {
            families,
            initial_palette,
            final_palette: k,
        }
    }

    /// Number of recoloring rounds.
    pub fn rounds(&self) -> u32 {
        self.families.len() as u32
    }

    /// The final palette size (`β·Δ²` for a universal β).
    pub fn final_palette(&self) -> u64 {
        self.final_palette
    }

    /// The initial palette size.
    pub fn initial_palette(&self) -> u64 {
        self.initial_palette
    }

    /// The family applied at round `i` (0-based).
    pub fn family(&self, i: usize) -> &PolyFamily {
        &self.families[i]
    }
}

/// Where the initial coloring comes from.
#[derive(Debug, Clone)]
enum InitialColors {
    /// DetLOCAL IDs.
    FromIds,
    /// An explicit per-vertex color vector (e.g. short IDs on a power graph).
    Given(Vec<u64>),
}

/// Linial's algorithm as a [`SyncAlgorithm`]: one [`PolyFamily`] application
/// per round.
#[derive(Debug, Clone)]
pub struct LinialAlgorithm {
    schedule: LinialSchedule,
    initial: InitialColors,
}

impl LinialAlgorithm {
    /// Start from DetLOCAL IDs, assumed to lie in `0..initial_palette`.
    pub fn from_ids(schedule: LinialSchedule) -> Self {
        LinialAlgorithm {
            schedule,
            initial: InitialColors::FromIds,
        }
    }

    /// Start from explicit per-vertex colors in `0..initial_palette`.
    pub fn from_colors(schedule: LinialSchedule, colors: Vec<u64>) -> Self {
        LinialAlgorithm {
            schedule,
            initial: InitialColors::Given(colors),
        }
    }
}

impl SyncAlgorithm for LinialAlgorithm {
    type State = u64;
    type Output = u64;

    fn init(&self, init: &NodeInit<'_>) -> u64 {
        let c = match &self.initial {
            InitialColors::FromIds => init.id.expect("Linial from IDs needs DetLOCAL"),
            InitialColors::Given(colors) => colors[init.node],
        };
        assert!(
            c < self.schedule.initial_palette,
            "initial color {c} outside palette {}",
            self.schedule.initial_palette
        );
        c
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &u64,
        neighbors: &[u64],
    ) -> SyncStep<u64, u64> {
        let i = (round - 1) as usize;
        if i >= self.schedule.families.len() {
            return SyncStep::Decide(*state, *state);
        }
        let next = self.schedule.family(i).recolor(*state, neighbors);
        if i + 1 == self.schedule.families.len() {
            SyncStep::Decide(next, next)
        } else {
            SyncStep::Continue(next)
        }
    }
}

/// Run Linial's algorithm in DetLOCAL from the given ID assignment, producing
/// an `O(Δ²)`-coloring in `O(log* n)` rounds.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn linial_color(g: &Graph, ids: &IdAssignment) -> ColoringOutcome {
    assert!(g.n() > 0, "cannot color the empty graph");
    let assigned = ids.assign(g);
    let initial_palette = assigned.iter().copied().max().expect("nonempty") + 1;
    linial_color_from(g, assigned, initial_palette, g.max_degree())
}

/// Run Linial's algorithm from an explicit initial coloring (colors must be
/// *locally* distinct: every vertex's color differs from all its neighbors').
///
/// This is the entry point the speedup transform (Theorem 6) uses with short
/// IDs on a power graph.
///
/// # Panics
///
/// Panics if the initial colors are not a proper coloring within
/// `initial_palette` (detected lazily by the recoloring rule), or the graph
/// is empty.
pub fn linial_color_from(
    g: &Graph,
    colors: Vec<u64>,
    initial_palette: u64,
    delta: usize,
) -> ColoringOutcome {
    assert!(g.n() > 0, "cannot color the empty graph");
    let schedule = LinialSchedule::new(initial_palette, delta);
    let palette = schedule.final_palette();
    let algo = LinialAlgorithm::from_colors(schedule, colors);
    let params = GlobalParams::from_graph(g);
    let out = run_sync(
        g,
        Mode::deterministic(),
        &algo,
        &ExecSpec::rounds((g.n() as u32).max(200)).with_params(params),
    )
    .strict()
    .expect("Linial halts after its fixed schedule");
    ColoringOutcome {
        labels: Labeling::new(out.outputs.iter().map(|&c| c as usize).collect()),
        palette: palette as usize,
        rounds: out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_proper(g: &Graph, out: &ColoringOutcome) {
        let p = VertexColoring::new(out.palette);
        p.validate(g, &out.labels)
            .unwrap_or_else(|v| panic!("improper: {v}"));
    }

    #[test]
    fn schedule_reaches_quadratic_fixpoint() {
        let s = LinialSchedule::new(1 << 30, 4);
        assert!(s.rounds() >= 2, "2^30 colors need several rounds");
        assert!(s.final_palette() <= 40 * 16);
        assert_eq!(s.initial_palette(), 1 << 30);
    }

    #[test]
    fn schedule_is_empty_at_fixpoint() {
        let s = LinialSchedule::new(10, 8); // already below the Δ=8 fixpoint
        assert_eq!(s.rounds(), 0);
        assert_eq!(s.final_palette(), 10);
    }

    #[test]
    fn log_star_growth_of_rounds() {
        // Rounds grow extremely slowly in the initial palette (log*-like):
        // going from 2^16 to 2^48 initial colors adds at most 2 rounds.
        let small = LinialSchedule::new(1 << 16, 3).rounds();
        let large = LinialSchedule::new(1 << 48, 3).rounds();
        assert!(large >= small);
        assert!(
            large - small <= 2,
            "log* growth violated: {small} -> {large}"
        );
    }

    #[test]
    fn colors_cycle_properly() {
        let g = gen::cycle(64);
        let out = linial_color(&g, &IdAssignment::Sequential);
        assert_proper(&g, &out);
        assert!(out.palette <= 40 * 4);
    }

    #[test]
    fn colors_random_regular_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::random_regular(60, 4, &mut rng).unwrap();
        let out = linial_color(&g, &IdAssignment::Shuffled { seed: 1 });
        assert_proper(&g, &out);
    }

    #[test]
    fn colors_random_tree() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::random_tree_max_degree(200, 5, &mut rng);
        let out = linial_color(&g, &IdAssignment::Shuffled { seed: 2 });
        assert_proper(&g, &out);
        assert!(out.rounds <= 6, "log* 200 plus slack, got {}", out.rounds);
    }

    #[test]
    fn wide_id_space() {
        let g = gen::cycle(16);
        let out = linial_color(&g, &IdAssignment::RandomBits { seed: 3, bits: 40 });
        assert_proper(&g, &out);
    }

    #[test]
    fn from_colors_entry_point() {
        let g = gen::path(8);
        let colors: Vec<u64> = (0..8).map(|v| v * 7 + 3).collect();
        let out = linial_color_from(&g, colors, 64, 2);
        assert_proper(&g, &out);
    }

    #[test]
    fn rounds_match_schedule() {
        let g = gen::cycle(256);
        let schedule = LinialSchedule::new(256, 2);
        let expected = schedule.rounds().max(1);
        let out = linial_color(&g, &IdAssignment::Sequential);
        assert_eq!(out.rounds, expected);
    }
}
