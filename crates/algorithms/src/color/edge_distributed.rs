//! Distributed `(2Δ−1)`-edge-coloring via the line graph.
//!
//! `L(G)` has maximum degree `≤ 2Δ−2`, so Linial + class reduction
//! vertex-colors it with `2Δ−1` colors in `O(Δ² + log* n)` rounds; each
//! `L(G)` round is simulated by 2 rounds of `G`. This is the easy baseline
//! the paper's survey contrasts with maximal matching (Elkin–Pettie–Su:
//! "(2Δ−1)-edge coloring is much easier than maximal matching").

use crate::color::linial_then_reduce;
use local_graphs::analysis::line_graph;
use local_graphs::Graph;

/// The outcome of the distributed edge coloring.
#[derive(Debug, Clone)]
pub struct EdgeColoringOutcome {
    /// Per-edge colors in `0..palette`.
    pub colors: Vec<usize>,
    /// Palette size (`2Δ−1` unless the graph is smaller than that).
    pub palette: usize,
    /// LOCAL rounds on `G` (already includes the ×2 simulation factor).
    pub rounds: u32,
}

/// Compute a `(2Δ−1)`-edge-coloring distributedly.
///
/// # Panics
///
/// Panics if the graph has no edges (nothing to color — a `palette` of 1 is
/// still reported for the degenerate single-edge case).
pub fn edge_color_distributed(g: &Graph, seed: u64) -> EdgeColoringOutcome {
    assert!(g.m() > 0, "no edges to color");
    let l = line_graph(g);
    let palette = l.max_degree() + 1; // ≤ 2Δ − 1
    let out = linial_then_reduce(&l, palette, seed);
    EdgeColoringOutcome {
        colors: out.labels.into_inner(),
        palette,
        rounds: 2 * out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::edge_coloring::EdgeColoring;
    use local_graphs::gen;
    use local_lcl::problems::EdgeKColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_proper(g: &Graph, out: &EdgeColoringOutcome) {
        let coloring = EdgeColoring::new(out.colors.clone(), out.palette);
        assert!(coloring.is_proper(g), "edge coloring must be proper");
        // And through the LCL formulation.
        let labels = EdgeKColoring::labels_from_edge_colors(g, &out.colors);
        assert!(EdgeKColoring::new(out.palette).validate(g, &labels).is_ok());
    }

    #[test]
    fn colors_cycles_within_palette() {
        for n in [4usize, 7, 32] {
            let g = gen::cycle(n);
            let out = edge_color_distributed(&g, 1);
            assert!(out.palette < 2 * g.max_degree());
            assert_proper(&g, &out);
        }
    }

    #[test]
    fn colors_random_graphs() {
        let mut rng = StdRng::seed_from_u64(40);
        for trial in 0..4 {
            let g = gen::gnp(40, 0.12, &mut rng);
            if g.m() == 0 {
                continue;
            }
            let out = edge_color_distributed(&g, trial);
            assert!(out.palette < (2 * g.max_degree()).max(2));
            assert_proper(&g, &out);
        }
    }

    #[test]
    fn colors_trees_and_stars() {
        let g = gen::star(10);
        let out = edge_color_distributed(&g, 2);
        assert_proper(&g, &out);
        // A star's line graph is complete: needs exactly Δ colors.
        let distinct: std::collections::HashSet<_> = out.colors.iter().collect();
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn rounds_flat_in_n() {
        let small = edge_color_distributed(&gen::cycle(32), 3).rounds;
        let large = edge_color_distributed(&gen::cycle(2048), 3).rounds;
        assert!(large <= small + 6, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn rejects_empty() {
        let g = local_graphs::GraphBuilder::new(3).build();
        let _ = edge_color_distributed(&g, 0);
    }
}
