//! Randomized defective coloring by symmetric local search.
//!
//! Every vertex draws a uniform color, then alternates two-round cycles:
//! overfull vertices (more than `defect` same-colored neighbors) draw a
//! random bid, and strict-minimum bidders flip to their least-crowded color.
//! Strict-minimum bidders are pairwise non-adjacent, so concurrent flips are
//! computed against unchanged neighborhoods and the number of monochromatic
//! edges strictly decreases whenever any vertex is overfull and can improve
//! — on subcubic graphs with 2 colors and defect 1 an improving flip always
//! exists, so the search settles within `m` cycles. A fixed `horizon` round
//! makes every vertex decide, which keeps the algorithm's fault behavior
//! analyzable: crashed neighbors freeze at stale colors and simply bias the
//! counts the survivors see.

use crate::sync::{SyncAlgorithm, SyncCtx, SyncStep};
use local_model::NodeInit;
use rand::Rng;

/// Public state of [`DefectiveLocalSearch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectiveState {
    /// Current color (`usize::MAX` before the round-1 draw, so undrawn or
    /// crashed-at-init neighbors never collide with a real color).
    pub color: usize,
    /// This cycle's flip bid, present iff the vertex was overfull.
    pub bid: Option<u64>,
}

/// Randomized local search for `defect`-defective `colors`-coloring.
#[derive(Debug, Clone, Copy)]
pub struct DefectiveLocalSearch {
    colors: usize,
    defect: usize,
    horizon: u32,
}

impl DefectiveLocalSearch {
    /// Local search over `colors` colors tolerating `defect` monochromatic
    /// neighbors, deciding at round `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `colors == 0` or `horizon == 0`.
    pub fn new(colors: usize, defect: usize, horizon: u32) -> Self {
        assert!(colors > 0, "palette must be nonempty");
        assert!(horizon >= 1, "the settle horizon must be positive");
        DefectiveLocalSearch {
            colors,
            defect,
            horizon,
        }
    }

    /// Palette size.
    pub fn colors(&self) -> usize {
        self.colors
    }

    /// Tolerated monochromatic degree.
    pub fn defect(&self) -> usize {
        self.defect
    }

    /// The round at which every vertex decides its current color.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }
}

impl SyncAlgorithm for DefectiveLocalSearch {
    type State = DefectiveState;
    type Output = usize;

    fn init(&self, _init: &NodeInit<'_>) -> DefectiveState {
        DefectiveState {
            color: usize::MAX,
            bid: None,
        }
    }

    fn update(
        &self,
        round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &DefectiveState,
        neighbors: &[DefectiveState],
    ) -> SyncStep<DefectiveState, usize> {
        let mut st = state.clone();
        if round == 1 {
            st.color = ctx.rng().gen_range(0..self.colors as u64) as usize;
            st.bid = None;
            return SyncStep::Continue(st);
        }
        if round >= self.horizon {
            let color = st.color;
            return SyncStep::Decide(st, color);
        }
        if round.is_multiple_of(2) {
            // Bid iff overfull.
            let mono = neighbors.iter().filter(|nb| nb.color == st.color).count();
            st.bid = (mono > self.defect).then(|| ctx.rng().gen::<u64>());
        } else {
            // Strict-minimum bidders flip to their least-crowded color, but
            // only when that strictly improves: the monochromatic edge count
            // is then a potential function.
            if let Some(b) = st.bid {
                let wins = neighbors
                    .iter()
                    .all(|nb| nb.bid.is_none_or(|theirs| b < theirs));
                if wins {
                    let mono = neighbors.iter().filter(|nb| nb.color == st.color).count();
                    let (best_count, best) = (0..self.colors)
                        .map(|c| (neighbors.iter().filter(|nb| nb.color == c).count(), c))
                        .min()
                        .expect("palette is nonempty");
                    if best_count < mono {
                        st.color = best;
                    }
                }
                st.bid = None;
            }
        }
        SyncStep::Continue(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use local_graphs::gen;
    use local_lcl::problems::DefectiveColoring;
    use local_lcl::{check_complete, Labeling};
    use local_model::{ExecSpec, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_and_check(
        g: &local_graphs::Graph,
        colors: usize,
        defect: usize,
        seed: u64,
    ) -> Labeling<usize> {
        let algo = DefectiveLocalSearch::new(colors, defect, 2 * g.m() as u32 + 3);
        let out = run_sync(
            g,
            Mode::randomized(seed),
            &algo,
            &ExecSpec::rounds(algo.horizon()),
        )
        .strict()
        .unwrap();
        let labels: Labeling<usize> = out.outputs.into();
        let verdict = check_complete(&DefectiveColoring::new(colors, defect), g, &labels);
        assert!(
            verdict.violations.is_empty(),
            "settled coloring must satisfy the defect bound, got {:?}",
            verdict.violations.first()
        );
        labels
    }

    #[test]
    fn two_colors_defect_one_on_random_cubic_graphs() {
        let mut rng = StdRng::seed_from_u64(0xDEF1);
        for trial in 0..3 {
            let g = gen::random_regular(48, 3, &mut rng).expect("feasible");
            run_and_check(&g, 2, 1, trial);
        }
    }

    #[test]
    fn zero_defect_is_proper_coloring() {
        // Four colors, defect 0, Δ = 3: an overfull vertex always has a
        // strictly less crowded color, so the search settles properly.
        let mut rng = StdRng::seed_from_u64(0xDEF2);
        let g = gen::random_regular(24, 3, &mut rng).expect("feasible");
        run_and_check(&g, 4, 0, 9);
    }

    #[test]
    fn reproducible_given_seed() {
        let g = gen::cycle(32);
        let a = run_and_check(&g, 2, 1, 3);
        let b = run_and_check(&g, 2, 1, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn accessors() {
        let algo = DefectiveLocalSearch::new(2, 1, 99);
        assert_eq!(algo.colors(), 2);
        assert_eq!(algo.defect(), 1);
        assert_eq!(algo.horizon(), 99);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_palette() {
        let _ = DefectiveLocalSearch::new(0, 1, 10);
    }
}
