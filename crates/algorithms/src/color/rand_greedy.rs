//! Randomized `(Δ+1)`-coloring by trial coloring: `O(log n)` rounds w.h.p.
//!
//! The folklore RandLOCAL baseline (Johansson-style): every round, each
//! uncolored vertex proposes a uniformly random color from its current
//! available palette (the full palette minus permanently-colored neighbors'
//! colors) and keeps it if no *competing* neighbor proposed the same color
//! that round. Each vertex succeeds with probability ≥ 1/4 per round, so the
//! algorithm finishes in `O(log n)` rounds w.h.p. — the classic pre-shattering
//! randomized dependence on `n` that the paper's discussion contrasts with
//! `log* n`-type deterministic bounds.

use crate::color::ColoringOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit};
use rand::Rng;

/// Per-vertex public state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialState {
    /// Still trying; holds this round's proposal (if any).
    Trying {
        /// The color proposed in the round that just ended.
        proposal: Option<usize>,
    },
    /// Permanently colored.
    Colored(usize),
}

/// The trial-coloring algorithm with palette `0..palette`.
#[derive(Debug, Clone)]
pub struct RandGreedy {
    palette: usize,
    /// Restrict participation: inactive vertices output `usize::MAX`
    /// immediately and are invisible to the rest.
    active: Option<Vec<bool>>,
}

/// Output label of an inactive vertex (alias of [`crate::color::UNCOLORED`]).
pub const INACTIVE: usize = crate::color::UNCOLORED;

impl RandGreedy {
    /// Color all vertices with `palette` colors.
    pub fn new(palette: usize) -> Self {
        RandGreedy {
            palette,
            active: None,
        }
    }

    /// Color only the vertices with `active[v]`, treating the rest as absent
    /// (their colors are ignored and they output [`INACTIVE`]).
    pub fn restricted(palette: usize, active: Vec<bool>) -> Self {
        RandGreedy {
            palette,
            active: Some(active),
        }
    }

    fn is_active(&self, v: usize) -> bool {
        self.active.as_ref().is_none_or(|a| a[v])
    }
}

impl SyncAlgorithm for RandGreedy {
    type State = Option<TrialState>;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> Option<TrialState> {
        if self.is_active(init.node) {
            Some(TrialState::Trying { proposal: None })
        } else {
            None
        }
    }

    fn update(
        &self,
        _round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &Option<TrialState>,
        neighbors: &[Option<TrialState>],
    ) -> SyncStep<Option<TrialState>, usize> {
        let Some(st) = state else {
            return SyncStep::Decide(None, INACTIVE);
        };
        match st {
            TrialState::Colored(c) => SyncStep::Decide(Some(TrialState::Colored(*c)), *c),
            TrialState::Trying { proposal } => {
                // Resolve last round's proposal first (round 1 has none).
                if let Some(mine) = proposal {
                    let conflicted = neighbors.iter().flatten().any(|nb| match nb {
                        TrialState::Trying {
                            proposal: Some(theirs),
                        } => theirs == mine,
                        _ => false,
                    });
                    let taken = neighbors.iter().flatten().any(|nb| match nb {
                        TrialState::Colored(c) => c == mine,
                        _ => false,
                    });
                    if !conflicted && !taken {
                        return SyncStep::Decide(Some(TrialState::Colored(*mine)), *mine);
                    }
                }
                // Propose anew from the palette minus colored neighbors.
                let used: std::collections::HashSet<usize> = neighbors
                    .iter()
                    .flatten()
                    .filter_map(|nb| match nb {
                        TrialState::Colored(c) => Some(*c),
                        TrialState::Trying { .. } => None,
                    })
                    .collect();
                let available: Vec<usize> =
                    (0..self.palette).filter(|c| !used.contains(c)).collect();
                assert!(
                    !available.is_empty(),
                    "palette {} exhausted: needs palette > degree",
                    self.palette
                );
                let pick = available[ctx.rng().gen_range(0..available.len() as u64) as usize];
                SyncStep::Continue(Some(TrialState::Trying {
                    proposal: Some(pick),
                }))
            }
        }
    }
}

/// Randomized `(Δ+1)`-coloring (palette may be any value `> Δ`).
///
/// # Errors
///
/// Returns the engine's round-limit error if the algorithm failed to finish
/// within `max_rounds` (probability `1/poly(n)` for
/// `max_rounds = Ω(log n)`).
///
/// # Panics
///
/// Panics if `palette <= Δ(G)`.
pub fn rand_greedy_color(
    g: &Graph,
    palette: usize,
    seed: u64,
    max_rounds: u32,
) -> Result<ColoringOutcome, local_model::SimError> {
    assert!(
        palette > g.max_degree(),
        "palette {palette} must exceed Δ = {}",
        g.max_degree()
    );
    let algo = RandGreedy::new(palette);
    let out = run_sync(
        g,
        Mode::randomized(seed),
        &algo,
        &ExecSpec::rounds(max_rounds),
    )
    .strict()?;
    Ok(ColoringOutcome {
        labels: Labeling::new(out.outputs),
        palette,
        rounds: out.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn colors_cycles() {
        let g = gen::cycle(64);
        let out = rand_greedy_color(&g, 3, 1, 200).unwrap();
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn colors_random_graphs_with_delta_plus_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..5 {
            let g = gen::gnp(80, 0.08, &mut rng);
            let palette = g.max_degree() + 1;
            let out = rand_greedy_color(&g, palette, trial, 500).unwrap();
            assert!(
                VertexColoring::new(palette)
                    .validate(&g, &out.labels)
                    .is_ok(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn colors_complete_graph() {
        let g = gen::complete(12);
        let out = rand_greedy_color(&g, 12, 3, 2000).unwrap();
        assert!(VertexColoring::new(12).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn restricted_run_ignores_inactive() {
        let g = gen::path(6);
        // Only color the even vertices; they are pairwise non-adjacent so one
        // color suffices.
        let active: Vec<bool> = (0..6).map(|v| v % 2 == 0).collect();
        let algo = RandGreedy::restricted(1, active.clone());
        let out = run_sync(&g, Mode::randomized(4), &algo, &ExecSpec::rounds(100))
            .strict()
            .unwrap();
        #[allow(clippy::needless_range_loop)]
        for v in 0..6 {
            if active[v] {
                assert_eq!(out.outputs[v], 0);
            } else {
                assert_eq!(out.outputs[v], INACTIVE);
            }
        }
    }

    #[test]
    fn rounds_are_logarithmic_not_linear() {
        let g = gen::cycle(2048);
        let out = rand_greedy_color(&g, 3, 9, 400).unwrap();
        assert!(
            out.rounds <= 60,
            "O(log n) rounds expected, got {}",
            out.rounds
        );
    }

    #[test]
    fn reproducible_given_seed() {
        let g = gen::cycle(32);
        let a = rand_greedy_color(&g, 3, 7, 200).unwrap();
        let b = rand_greedy_color(&g, 3, 7, 200).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_small_palette() {
        let g = gen::complete(4);
        let _ = rand_greedy_color(&g, 3, 0, 100);
    }
}
