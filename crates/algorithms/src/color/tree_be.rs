//! Barenboim–Elkin `q`-coloring of forests (Theorem 9):
//! `O(q·log_q n + log* n + q²)` rounds, independent of Δ.
//!
//! Pipeline (all phases are engine protocols; the orchestrator only threads
//! outputs of one phase into inputs of the next and sums rounds):
//!
//! 1. **H-partition peel** — repeatedly remove vertices with residual degree
//!    `≤ q−1`; a forest loses a `1 − 2/q` fraction of its vertices per round,
//!    so `ℓ = O(log_q n)` layers suffice, and each vertex has at most `q−1`
//!    neighbors in its own or later layers.
//! 2. **Within-layer Linial** — the union of same-layer edges has maximum
//!    degree `q−1`; Linial's algorithm colors it with `O(q²)` colors in
//!    `O(log* n)` rounds.
//! 3. **Within-layer reduction** — `O(q²) → q` colors, one class per round.
//! 4. **Scheduled sweep** — vertex with (layer `i`, class `c`) picks a free
//!    color from the `q`-palette at time `(ℓ−i)·q + c`: all constraining
//!    neighbors (same or later layers, at most `q−1` of them) act strictly
//!    earlier, so a free color always exists.
//!
//! The paper's Theorems 10 and 11 both use this algorithm as their Phase-2
//! finisher on shattered components (with palette offsets into the reserved
//! part of the Δ-palette).

use crate::color::grouped::{GroupLinial, GroupReduce, NO_GROUP};
use crate::color::linial::LinialSchedule;
use crate::color::{ColoringOutcome, UNCOLORED};
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit};

// ---------------------------------------------------------------- phase 1

#[derive(Debug, Clone, PartialEq, Eq)]
struct PeelState {
    active: bool,
    layer: Option<u32>,
}

struct PeelAlgo {
    q: usize,
    active: Vec<bool>,
}

impl SyncAlgorithm for PeelAlgo {
    type State = PeelState;
    type Output = u32;

    fn init(&self, init: &NodeInit<'_>) -> PeelState {
        PeelState {
            active: self.active[init.node],
            layer: None,
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &PeelState,
        neighbors: &[PeelState],
    ) -> SyncStep<PeelState, u32> {
        if !state.active {
            return SyncStep::Decide(state.clone(), u32::MAX);
        }
        debug_assert!(state.layer.is_none(), "decided vertices are not updated");
        let residual = neighbors
            .iter()
            .filter(|nb| nb.active && nb.layer.is_none())
            .count();
        if residual < self.q {
            let next = PeelState {
                active: true,
                layer: Some(round),
            };
            SyncStep::Decide(next, round)
        } else {
            SyncStep::Continue(state.clone())
        }
    }
}

// ---------------------------------------------------------------- phase 4

#[derive(Debug, Clone, PartialEq, Eq)]
struct SweepState {
    active: bool,
    layer: u32,
    class: u64,
    color: Option<usize>,
}

struct SweepAlgo {
    q: usize,
    ell: u32,
    layer_of: Vec<u32>,
    class_of: Vec<u64>,
    active: Vec<bool>,
}

impl SyncAlgorithm for SweepAlgo {
    type State = SweepState;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> SweepState {
        SweepState {
            active: self.active[init.node],
            layer: self.layer_of[init.node],
            class: self.class_of[init.node],
            color: None,
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &SweepState,
        neighbors: &[SweepState],
    ) -> SyncStep<SweepState, usize> {
        if !state.active {
            return SyncStep::Decide(state.clone(), UNCOLORED);
        }
        let my_time = u64::from(self.ell - state.layer) * self.q as u64 + state.class + 1;
        if u64::from(round) != my_time {
            return SyncStep::Continue(state.clone());
        }
        let used: Vec<usize> = neighbors
            .iter()
            .filter(|nb| nb.active)
            .filter_map(|nb| nb.color)
            .collect();
        let color = (0..self.q)
            .find(|c| !used.contains(c))
            .expect("at most q-1 constraining neighbors act before this vertex");
        let next = SweepState {
            color: Some(color),
            ..state.clone()
        };
        SyncStep::Decide(next, color)
    }
}

// ------------------------------------------------------------ orchestrator

/// Per-phase round breakdown of a Theorem-9 run.
///
/// `peel_rounds` is the H-partition depth `ℓ = Θ(log_q n)` — the *only*
/// n-dependent term of the paper's bound. `linial_rounds` is `O(log* n)`.
/// `reduce_rounds` is our implementation's `O(q²)` additive constant
/// (documented simplification: one color class per round instead of
/// Barenboim–Elkin's pipelining) and `sweep_rounds ≤ ℓ·q`.
#[derive(Debug, Clone)]
pub struct BeOutcome {
    /// The coloring and total rounds.
    pub coloring: ColoringOutcome,
    /// H-partition rounds (`ℓ`).
    pub peel_rounds: u32,
    /// Within-layer Linial rounds.
    pub linial_rounds: u32,
    /// Within-layer color-reduction rounds.
    pub reduce_rounds: u32,
    /// Scheduled-sweep rounds.
    pub sweep_rounds: u32,
}

/// `q`-color the active subgraph of a forest with colors
/// `palette_offset .. palette_offset + q`, in DetLOCAL, using `ids` as the
/// initial locally-distinct colors (real IDs, or random IDs generated by a
/// RandLOCAL caller, unique w.h.p.).
///
/// Inactive vertices receive [`UNCOLORED`]. The reported `palette` is
/// `palette_offset + q` so the outcome validates directly against
/// `VertexColoring::new(palette_offset + q)` once combined with other
/// phases' colors.
///
/// # Panics
///
/// Panics if `q < 3`, if the active subgraph contains a cycle, if `ids` has
/// the wrong length, or if the ids are not distinct among active vertices
/// within distance 1 (detected by Linial's recolorer).
pub fn be_forest_coloring(
    g: &Graph,
    q: usize,
    ids: &[u64],
    active: Option<&[bool]>,
    palette_offset: usize,
) -> ColoringOutcome {
    be_forest_coloring_detailed(g, q, ids, active, palette_offset).coloring
}

/// [`be_forest_coloring`] with the per-phase round breakdown (used by the
/// E1 experiment to isolate the `Θ(log_q n)` peel depth from the `O(q²)`
/// additive constant of the simple reduction).
///
/// # Panics
///
/// Same conditions as [`be_forest_coloring`].
pub fn be_forest_coloring_detailed(
    g: &Graph,
    q: usize,
    ids: &[u64],
    active: Option<&[bool]>,
    palette_offset: usize,
) -> BeOutcome {
    assert!(q >= 3, "Theorem 9 requires q >= 3");
    assert_eq!(ids.len(), g.n(), "one id per vertex");
    let active: Vec<bool> = match active {
        Some(a) => {
            assert_eq!(a.len(), g.n(), "one active flag per vertex");
            a.to_vec()
        }
        None => vec![true; g.n()],
    };
    // The active subgraph must be a forest: check via edge count per
    // component (cheap union-find).
    {
        let mut parent: Vec<usize> = (0..g.n()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(u, v) in g.edges() {
            if active[u] && active[v] {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                assert!(
                    ru != rv,
                    "active subgraph contains a cycle through ({u},{v})"
                );
                parent[ru] = rv;
            }
        }
    }
    let mut total_rounds = 0u32;

    // Phase 1: H-partition.
    let peel = PeelAlgo {
        q,
        active: active.clone(),
    };
    let peel_out = run_sync(
        g,
        Mode::deterministic(),
        &peel,
        &ExecSpec::rounds(g.n() as u32 + 2),
    )
    .strict()
    .expect("every forest vertex eventually peels");
    total_rounds += peel_out.rounds;
    let layer_of: Vec<u32> = peel_out.outputs;
    let ell = layer_of
        .iter()
        .filter(|&&l| l != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0);

    // Phase 2: Linial on same-layer edges (max degree q−1 there).
    let max_id = g
        .vertices()
        .filter(|&v| active[v])
        .map(|v| ids[v])
        .max()
        .unwrap_or(0);
    let schedule = LinialSchedule::new(max_id + 1, q - 1);
    let c_colors = schedule.final_palette();
    let group_of: Vec<u64> = g
        .vertices()
        .map(|v| {
            if active[v] {
                u64::from(layer_of[v])
            } else {
                NO_GROUP
            }
        })
        .collect();
    let linial = GroupLinial {
        schedule,
        colors: ids.to_vec(),
        group_of: group_of.clone(),
    };
    let linial_out = run_sync(
        g,
        Mode::deterministic(),
        &linial,
        &ExecSpec::rounds(g.n() as u32 + 200),
    )
    .strict()
    .expect("Linial halts after its schedule");
    total_rounds += linial_out.rounds;

    // Phase 3: reduce within-layer colors to q.
    let reduce = GroupReduce {
        from: c_colors as usize,
        to: q,
        colors: linial_out.outputs.iter().map(|&c| c as usize).collect(),
        group_of: group_of.clone(),
    };
    let reduce_out = run_sync(
        g,
        Mode::deterministic(),
        &reduce,
        &ExecSpec::rounds(c_colors as u32 + 2),
    )
    .strict()
    .expect("reduction halts");
    total_rounds += reduce_out.rounds;

    // Phase 4: scheduled sweep.
    let sweep = SweepAlgo {
        q,
        ell,
        layer_of: layer_of
            .iter()
            .map(|&l| if l == u32::MAX { 0 } else { l })
            .collect(),
        class_of: reduce_out.outputs,
        active: active.clone(),
    };
    let budget = (u64::from(ell) + 1) * q as u64 + 4;
    let sweep_out = run_sync(
        g,
        Mode::deterministic(),
        &sweep,
        &ExecSpec::rounds(budget as u32),
    )
    .strict()
    .expect("sweep halts after its schedule");
    total_rounds += sweep_out.rounds;

    let labels: Vec<usize> = sweep_out
        .outputs
        .into_iter()
        .map(|c| {
            if c == UNCOLORED {
                UNCOLORED
            } else {
                c + palette_offset
            }
        })
        .collect();
    BeOutcome {
        coloring: ColoringOutcome {
            labels: Labeling::new(labels),
            palette: palette_offset + q,
            rounds: total_rounds,
        },
        peel_rounds: peel_out.rounds,
        linial_rounds: linial_out.rounds,
        reduce_rounds: reduce_out.rounds,
        sweep_rounds: sweep_out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::{analysis, gen};
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_ids(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn assert_proper_active(g: &Graph, labels: &Labeling<usize>, active: &[bool], palette: usize) {
        for &(u, v) in g.edges() {
            if active[u] && active[v] {
                assert_ne!(labels.get(u), labels.get(v), "edge ({u},{v})");
            }
        }
        for v in g.vertices() {
            if active[v] {
                assert!(*labels.get(v) < palette, "vertex {v} color in palette");
            } else {
                assert_eq!(*labels.get(v), UNCOLORED);
            }
        }
    }

    #[test]
    fn three_colors_a_path() {
        let g = gen::path(40);
        let out = be_forest_coloring(&g, 3, &seq_ids(40), None, 0);
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn three_colors_random_trees() {
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..4 {
            let g = gen::random_tree(150 + trial * 37, &mut rng);
            let out = be_forest_coloring(&g, 3, &seq_ids(g.n()), None, 0);
            assert!(
                VertexColoring::new(3).validate(&g, &out.labels).is_ok(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn q_colors_high_degree_tree_independent_of_delta() {
        // A star has Δ = n−1 but q = 3 still works (Theorem 9 is independent
        // of Δ).
        let g = gen::star(64);
        let out = be_forest_coloring(&g, 3, &seq_ids(64), None, 0);
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn larger_q_reduces_layer_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_tree_max_degree(3000, 16, &mut rng);
        let small_q = be_forest_coloring(&g, 3, &seq_ids(g.n()), None, 0);
        let large_q = be_forest_coloring(&g, 16, &seq_ids(g.n()), None, 0);
        assert!(VertexColoring::new(3).validate(&g, &small_q.labels).is_ok());
        assert!(VertexColoring::new(16)
            .validate(&g, &large_q.labels)
            .is_ok());
    }

    #[test]
    fn palette_offset_shifts_colors() {
        let g = gen::path(20);
        let out = be_forest_coloring(&g, 3, &seq_ids(20), None, 10);
        assert_eq!(out.palette, 13);
        for v in g.vertices() {
            let c = *out.labels.get(v);
            assert!((10..13).contains(&c), "color {c} in offset window");
        }
        assert!(VertexColoring::new(13).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn restricted_to_active_forest_inside_cycle() {
        // A cycle is not a forest, but removing one vertex leaves a path.
        let g = gen::cycle(30);
        let mut active = vec![true; 30];
        active[0] = false;
        let out = be_forest_coloring(&g, 3, &seq_ids(30), Some(&active), 0);
        assert_proper_active(&g, &out.labels, &active, 3);
    }

    #[test]
    fn works_on_forest_with_many_components() {
        let mut rng = StdRng::seed_from_u64(5);
        // Build a forest: several disjoint random trees.
        let mut b = local_graphs::GraphBuilder::new(90);
        let mut offset = 0;
        for size in [20usize, 30, 40] {
            let t = gen::random_tree(size, &mut rng);
            for &(u, v) in t.edges() {
                b.add_edge(u + offset, v + offset).unwrap();
            }
            offset += size;
        }
        let g = b.build();
        assert!(analysis::is_forest(&g));
        let out = be_forest_coloring(&g, 4, &seq_ids(90), None, 0);
        assert!(VertexColoring::new(4).validate(&g, &out.labels).is_ok());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cyclic_active_subgraph() {
        let g = gen::cycle(10);
        let _ = be_forest_coloring(&g, 3, &seq_ids(10), None, 0);
    }

    #[test]
    #[should_panic(expected = "q >= 3")]
    fn rejects_q_two() {
        let g = gen::path(4);
        let _ = be_forest_coloring(&g, 2, &seq_ids(4), None, 0);
    }

    #[test]
    fn rounds_scale_logarithmically_in_n() {
        let mut rng = StdRng::seed_from_u64(11);
        let small = {
            let g = gen::random_tree_max_degree(100, 8, &mut rng);
            be_forest_coloring(&g, 8, &seq_ids(g.n()), None, 0).rounds
        };
        let large = {
            let g = gen::random_tree_max_degree(10_000, 8, &mut rng);
            be_forest_coloring(&g, 8, &seq_ids(g.n()), None, 0).rounds
        };
        // 100x more vertices: rounds grow like log_q n, far less than 100x.
        assert!(
            large <= small * 4,
            "rounds must grow logarithmically: {small} -> {large}"
        );
    }
}
