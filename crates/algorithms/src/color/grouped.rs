//! Group-restricted coloring phases.
//!
//! Several composite algorithms (Barenboim–Elkin layers, shattered
//! components, residual subgraphs) need Linial coloring and color reduction
//! *restricted to a subgraph*: only edges whose endpoints carry the same
//! group tag count. A tag of [`NO_GROUP`] means "not participating".

use crate::color::linial::LinialSchedule;
use crate::sync::{SyncAlgorithm, SyncCtx, SyncStep};
use local_model::NodeInit;

/// Group tag meaning "not participating".
pub const NO_GROUP: u64 = u64::MAX;

/// Public state of the grouped phases: a group tag and a current color.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupColorState {
    /// The vertex's group; edges within a group are the active subgraph.
    pub group: u64,
    /// The vertex's current color.
    pub color: u64,
}

/// Linial recoloring restricted to same-group edges. Non-participants output
/// 0 immediately.
#[derive(Debug, Clone)]
pub struct GroupLinial {
    /// The per-round family schedule.
    pub schedule: LinialSchedule,
    /// Initial per-vertex colors (locally distinct within each group).
    pub colors: Vec<u64>,
    /// Per-vertex group tags ([`NO_GROUP`] = inactive).
    pub group_of: Vec<u64>,
}

impl SyncAlgorithm for GroupLinial {
    type State = GroupColorState;
    type Output = u64;

    fn init(&self, init: &NodeInit<'_>) -> GroupColorState {
        GroupColorState {
            group: self.group_of[init.node],
            color: self.colors[init.node],
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &GroupColorState,
        neighbors: &[GroupColorState],
    ) -> SyncStep<GroupColorState, u64> {
        if state.group == NO_GROUP {
            return SyncStep::Decide(state.clone(), 0);
        }
        let i = (round - 1) as usize;
        if i >= self.schedule.rounds() as usize {
            return SyncStep::Decide(state.clone(), state.color);
        }
        let relevant: Vec<u64> = neighbors
            .iter()
            .filter(|nb| nb.group == state.group)
            .map(|nb| nb.color)
            .collect();
        let next = GroupColorState {
            group: state.group,
            color: self.schedule.family(i).recolor(state.color, &relevant),
        };
        if i + 1 == self.schedule.rounds() as usize {
            let c = next.color;
            SyncStep::Decide(next, c)
        } else {
            SyncStep::Continue(next)
        }
    }
}

/// Color-class reduction restricted to same-group edges. Requires each
/// vertex's same-group degree to be `< to`.
#[derive(Debug, Clone)]
pub struct GroupReduce {
    /// Source palette size.
    pub from: usize,
    /// Target palette size.
    pub to: usize,
    /// Initial per-vertex colors (proper within each group).
    pub colors: Vec<usize>,
    /// Per-vertex group tags ([`NO_GROUP`] = inactive).
    pub group_of: Vec<u64>,
}

impl SyncAlgorithm for GroupReduce {
    type State = GroupColorState;
    type Output = u64;

    fn init(&self, init: &NodeInit<'_>) -> GroupColorState {
        GroupColorState {
            group: self.group_of[init.node],
            color: self.colors[init.node] as u64,
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &GroupColorState,
        neighbors: &[GroupColorState],
    ) -> SyncStep<GroupColorState, u64> {
        if state.group == NO_GROUP {
            return SyncStep::Decide(state.clone(), 0);
        }
        let retiring = (self.from - round as usize) as u64;
        let mut color = state.color;
        if color == retiring && color >= self.to as u64 {
            let used: Vec<u64> = neighbors
                .iter()
                .filter(|nb| nb.group == state.group)
                .map(|nb| nb.color)
                .collect();
            color = (0..self.to as u64)
                .find(|c| !used.contains(c))
                .expect("same-group degree < target palette guarantees a free color");
        }
        let next = GroupColorState {
            group: state.group,
            color,
        };
        if color < self.to as u64 {
            SyncStep::Decide(next, color)
        } else {
            SyncStep::Continue(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use local_graphs::gen;
    use local_model::{ExecSpec, Mode};

    #[test]
    fn grouped_linial_only_constrains_within_groups() {
        // Path 0-1-2-3; groups {0,1} and {2,3}: the 1-2 edge is inter-group,
        // so colors may clash across it but not within groups.
        let g = gen::path(4);
        let group_of = vec![7, 7, 9, 9];
        let ids = vec![0u64, 1, 2, 3];
        let schedule = LinialSchedule::new(4, 1);
        let algo = GroupLinial {
            schedule,
            colors: ids,
            group_of,
        };
        let out = run_sync(&g, Mode::deterministic(), &algo, &ExecSpec::rounds(100))
            .strict()
            .unwrap();
        assert_ne!(out.outputs[0], out.outputs[1]);
        assert_ne!(out.outputs[2], out.outputs[3]);
    }

    #[test]
    fn inactive_vertices_output_zero_immediately() {
        let g = gen::path(3);
        let algo = GroupLinial {
            schedule: LinialSchedule::new(3, 2),
            colors: vec![0, 1, 2],
            group_of: vec![NO_GROUP, 1, 1],
        };
        let out = run_sync(&g, Mode::deterministic(), &algo, &ExecSpec::rounds(100))
            .strict()
            .unwrap();
        assert_eq!(out.outputs[0], 0);
        assert_ne!(out.outputs[1], out.outputs[2]);
    }

    #[test]
    fn grouped_reduce_respects_groups() {
        let g = gen::cycle(6);
        // Two groups: even/odd positions... on a cycle adjacent vertices
        // alternate groups, so every edge is inter-group: any colors pass.
        let group_of: Vec<u64> = (0..6).map(|v| (v % 2) as u64).collect();
        let algo = GroupReduce {
            from: 6,
            to: 1,
            colors: (0..6).collect(),
            group_of,
        };
        let out = run_sync(&g, Mode::deterministic(), &algo, &ExecSpec::rounds(100))
            .strict()
            .unwrap();
        assert!(out.outputs.iter().all(|&c| c == 0));
    }
}
