//! 2-coloring paths: the `Ω(n)` side of Theorem 7's dichotomy.
//!
//! Theorem 7: on hereditary classes with Δ = 2, every LCL is either
//! `O(log* n)` or `Ω(n)`. 3-coloring sits on the fast side
//! ([`crate::color::cole_vishkin`]); **2-coloring** sits on the slow side —
//! a path's proper 2-coloring is determined by distance parity to a common
//! reference endpoint, which no `o(n)`-round algorithm can know in the
//! middle of the path.
//!
//! The algorithm is the optimal one: each endpoint starts a *parity wave*
//! carrying its ID and the distance parity from it; vertices merge the waves
//! they hear (a path has exactly two endpoints, so two origins), finalize
//! once both origins arrived, and color by the parity of the larger-ID
//! origin — both endpoints' waves agree with a consistent alternating
//! coloring, so any common tie-break works. Measured complexity:
//! `max_v max(dist to the two ends) = n − 1` rounds, the `Θ(n)` the
//! dichotomy forces.

use crate::color::ColoringOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit, SimError};

/// Public state: the waves heard so far, as `(origin id, my parity in that
/// wave)`, at most one entry per origin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaveState {
    waves: Vec<(u64, usize)>,
}

/// The parity-wave 2-coloring of paths (DetLOCAL: endpoint IDs break the
/// symmetry between the two wave sources).
#[derive(Debug, Clone, Default)]
pub struct PathTwoColoring;

impl SyncAlgorithm for PathTwoColoring {
    type State = WaveState;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> WaveState {
        assert!(init.degree <= 2, "2-coloring waves run on paths");
        if init.degree <= 1 {
            WaveState {
                waves: vec![(init.id.expect("DetLOCAL run"), 0)],
            }
        } else {
            WaveState::default()
        }
    }

    fn update(
        &self,
        _round: u32,
        ctx: &mut SyncCtx<'_>,
        state: &WaveState,
        neighbors: &[WaveState],
    ) -> SyncStep<WaveState, usize> {
        let mut waves = state.waves.clone();
        for nb in neighbors {
            for &(origin, parity) in &nb.waves {
                if !waves.iter().any(|&(o, _)| o == origin) {
                    waves.push((origin, 1 - parity));
                }
            }
        }
        waves.sort_unstable();
        // A path on n ≥ 2 vertices has exactly two endpoints; n = 1 has one.
        let expected = if ctx.params().n >= 2 { 2 } else { 1 };
        if waves.len() >= expected {
            let &(_, parity) = waves.last().expect("nonempty");
            SyncStep::Decide(WaveState { waves }, parity)
        } else {
            SyncStep::Continue(WaveState { waves })
        }
    }
}

/// 2-color a path. Rounds `= n − 1` (the far endpoint's wave must cross the
/// whole path) — the `Ω(n)` behavior Theorem 7 proves unavoidable.
///
/// # Errors
///
/// Propagates the engine round-limit error (fires on non-path inputs such
/// as cycles, which have no endpoints to start waves).
///
/// # Panics
///
/// Panics (inside the engine) if some vertex has degree > 2.
pub fn path_two_coloring(g: &Graph) -> Result<ColoringOutcome, SimError> {
    let out = run_sync(
        g,
        Mode::deterministic(),
        &PathTwoColoring,
        &ExecSpec::rounds(g.n() as u32 + 4),
    )
    .strict()?;
    Ok(ColoringOutcome {
        labels: Labeling::new(out.outputs),
        palette: 2,
        rounds: out.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use local_model::SimError;

    #[test]
    fn two_colors_paths_properly() {
        for n in [1usize, 2, 3, 4, 10, 101] {
            let g = gen::path(n);
            let out = path_two_coloring(&g).unwrap();
            VertexColoring::new(2)
                .validate(&g, &out.labels)
                .unwrap_or_else(|v| panic!("n={n}: {v}"));
        }
    }

    #[test]
    fn rounds_are_linear_in_n() {
        let small = path_two_coloring(&gen::path(64)).unwrap().rounds;
        let large = path_two_coloring(&gen::path(1024)).unwrap().rounds;
        assert_eq!(small, 63, "the far wave crosses the whole path");
        assert_eq!(large, 1023);
        assert!(large >= 16 * small);
    }

    #[test]
    fn cycles_deadlock_the_wave() {
        // No endpoint, no wave — and indeed no o(n) algorithm could 2-color
        // a cycle (odd ones are not 2-colorable at all; even ones need a
        // global parity agreement).
        let g = gen::cycle(8);
        assert!(matches!(
            path_two_coloring(&g),
            Err(SimError::RoundLimitExceeded { .. })
        ));
    }

    #[test]
    fn works_on_forests_of_paths() {
        // Two disjoint paths inside one graph: params.n ≥ 2 so each
        // component waits for two origins — its own two endpoints.
        let mut b = local_graphs::GraphBuilder::new(7);
        for (u, v) in [(0, 1), (1, 2), (4, 5), (5, 6)] {
            b.add_edge(u, v).unwrap();
        }
        // Vertex 3 is isolated: degree 0 — it anchors itself but expects two
        // waves; give it its own component semantics by… the expected count
        // is global (n ≥ 2 ⇒ 2), so an isolated vertex would deadlock. This
        // documents the algorithm's contract: components must be paths with
        // ≥ 2 vertices (or the whole graph a single vertex).
        let g = b.build();
        let out = path_two_coloring(&g);
        // Isolated vertex 3 never hears a second wave: round limit.
        assert!(out.is_err());
    }
}
