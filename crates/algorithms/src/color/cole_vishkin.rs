//! Cole–Vishkin 3-coloring of oriented rings in `log* n + O(1)` rounds.
//!
//! The classical `Δ = 2` algorithm: every vertex knows its *successor* (a
//! consistent orientation is part of the input, as in the standard statement
//! of ring coloring). Colors start as IDs; each round a vertex finds the
//! lowest bit position `i` where its color differs from its successor's and
//! re-colors to `2i + bit_i(own)`, collapsing `b`-bit colors to
//! `⌈log b⌉ + 1` bits. Once the palette reaches `{0..5}`, three shift-free
//! retirement rounds bring it to `{0, 1, 2}`.
//!
//! The experiments use this algorithm for the `Δ = 2` row of Theorem 7's
//! dichotomy (either `O(log* n)` or `Ω(n)` on paths/cycles).

use crate::color::ColoringOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::{Graph, NodeId, PortId};
use local_lcl::Labeling;
use local_model::{ExecSpec, IdAssignment, Mode, NodeInit};

/// Number of Cole–Vishkin halving iterations needed from `bits`-bit colors
/// down to colors `< 6` (values ≤ 5).
fn cv_iterations(mut bits: u32) -> u32 {
    let mut it = 0;
    while bits > 3 {
        bits = 32 - (bits - 1).leading_zeros() + 1; // ceil(log2 bits) + 1
        it += 1;
    }
    // With 3-bit colors one more iteration lands in {0..5}: i ≤ 2 ⇒ 2i+b ≤ 5.
    it + 1
}

/// Per-vertex public state: the current color plus the vertex's successor
/// port. The port is *local input* (the ring orientation), carried in the
/// state because [`SyncAlgorithm::update`] deliberately has no vertex
/// identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvState {
    color: u64,
    succ_port: PortId,
}

/// The Cole–Vishkin algorithm on an oriented ring.
#[derive(Debug, Clone)]
pub struct ColeVishkin {
    succ_port: Vec<PortId>,
    ids: Vec<u64>,
    cv_rounds: u32,
}

impl ColeVishkin {
    /// Build for a cycle where `succ_port[v]` is the port of `v`'s successor
    /// (the input orientation), with `ids` the initial distinct colors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths disagree.
    pub fn new(succ_port: Vec<PortId>, ids: Vec<u64>) -> Self {
        assert_eq!(succ_port.len(), ids.len(), "one successor port per vertex");
        let max_id = ids.iter().copied().max().unwrap_or(0);
        let id_bits = (64 - max_id.leading_zeros()).max(3);
        ColeVishkin {
            succ_port,
            ids,
            cv_rounds: cv_iterations(id_bits),
        }
    }

    /// Number of halving iterations this instance will run.
    pub fn cv_rounds(&self) -> u32 {
        self.cv_rounds
    }
}

impl SyncAlgorithm for ColeVishkin {
    type State = CvState;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> CvState {
        assert_eq!(init.degree, 2, "Cole-Vishkin runs on cycles (degree 2)");
        CvState {
            color: self.ids[init.node],
            succ_port: self.succ_port[init.node],
        }
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &CvState,
        neighbors: &[CvState],
    ) -> SyncStep<CvState, usize> {
        if round <= self.cv_rounds {
            // Halving phase.
            let succ_color = neighbors[state.succ_port].color;
            let diff = state.color ^ succ_color;
            debug_assert_ne!(diff, 0, "proper coloring keeps successor distinct");
            let i = diff.trailing_zeros() as u64;
            let bit = (state.color >> i) & 1;
            return SyncStep::Continue(CvState {
                color: 2 * i + bit,
                succ_port: state.succ_port,
            });
        }
        // Retirement phase: rounds cv+1, cv+2, cv+3 retire colors 5, 4, 3.
        // Each retiring class is an independent set (its members hold equal
        // colors, and the coloring stays proper), so simultaneous recoloring
        // is safe.
        let retiring = 5 - u64::from(round - self.cv_rounds - 1);
        let mut color = state.color;
        if color == retiring {
            let used: Vec<u64> = neighbors.iter().map(|s| s.color).collect();
            color = (0..3)
                .find(|c| !used.contains(c))
                .expect("two neighbors, three colors");
        }
        let next = CvState {
            color,
            succ_port: state.succ_port,
        };
        if retiring == 3 {
            SyncStep::Decide(next, color as usize)
        } else {
            SyncStep::Continue(next)
        }
    }
}

/// 3-color the standard cycle `C_n` (as produced by
/// [`local_graphs::gen::cycle`]) in `log* n + O(1)` rounds, using the natural
/// orientation `v → v+1` as input and the chosen ID assignment as initial
/// colors.
///
/// # Panics
///
/// Panics if `g` is not 2-regular or `n < 3`.
pub fn cv_color_cycle(g: &Graph, ids: &IdAssignment) -> ColoringOutcome {
    assert!(
        g.n() >= 3 && g.is_regular(2),
        "cv_color_cycle needs a cycle"
    );
    let n = g.n();
    let succ_port: Vec<PortId> = (0..n)
        .map(|v: NodeId| {
            g.port_to(v, (v + 1) % n)
                .expect("gen::cycle adjacency: v is adjacent to v+1")
        })
        .collect();
    let algo = ColeVishkin::new(succ_port, ids.assign(g));
    let budget = algo.cv_rounds() + 10;
    let out = run_sync(g, Mode::deterministic(), &algo, &ExecSpec::rounds(budget))
        .strict()
        .expect("Cole-Vishkin halts after its fixed schedule");
    ColoringOutcome {
        labels: Labeling::new(out.outputs),
        palette: 3,
        rounds: out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;

    #[test]
    fn iterations_shrink_like_log_star() {
        assert_eq!(cv_iterations(3), 1);
        assert!(cv_iterations(8) <= 3);
        assert!(cv_iterations(32) <= 4);
        assert!(cv_iterations(64) <= 5);
        // Doubling the bit width adds at most one iteration.
        assert!(cv_iterations(64) <= cv_iterations(32) + 1);
    }

    #[test]
    fn three_colors_various_cycles() {
        for n in [3usize, 4, 5, 8, 17, 64, 255, 1000] {
            let g = gen::cycle(n);
            let out = cv_color_cycle(&g, &IdAssignment::Sequential);
            assert_eq!(out.palette, 3);
            VertexColoring::new(3)
                .validate(&g, &out.labels)
                .unwrap_or_else(|v| panic!("n={n}: {v}"));
        }
    }

    #[test]
    fn shuffled_ids_also_work() {
        let g = gen::cycle(100);
        let out = cv_color_cycle(&g, &IdAssignment::Shuffled { seed: 5 });
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn rounds_grow_log_star_in_n() {
        let small = cv_color_cycle(&gen::cycle(16), &IdAssignment::Sequential).rounds;
        let large = cv_color_cycle(&gen::cycle(4096), &IdAssignment::Sequential).rounds;
        assert!(
            large <= small + 2,
            "CV rounds must be log*: {small} vs {large}"
        );
    }

    #[test]
    fn wide_random_ids() {
        let g = gen::cycle(50);
        let out = cv_color_cycle(&g, &IdAssignment::RandomBits { seed: 1, bits: 32 });
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
    }

    #[test]
    #[should_panic(expected = "needs a cycle")]
    fn rejects_non_cycle() {
        let g = gen::path(5);
        let _ = cv_color_cycle(&g, &IdAssignment::Sequential);
    }
}
