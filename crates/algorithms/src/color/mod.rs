//! Vertex-coloring algorithms.
//!
//! * [`cover_free`] — the polynomial set systems behind Linial's one-round
//!   recoloring (Theorem 1).
//! * [`linial`] — Linial's `O(log* n)`-round `O(Δ²)`-coloring (Theorem 2).
//! * [`reduce`] — standard color reduction `k → Δ+1`, one class per round.
//! * [`cole_vishkin`] — 3-coloring oriented rings in `log* n + O(1)` rounds.
//! * [`rand_greedy`] — randomized `(Δ+1)`-coloring by trial coloring,
//!   `O(log n)` rounds w.h.p.
//! * [`defective`] — randomized defective coloring by bid-arbitrated local
//!   search, settling at a fixed horizon.
//! * [`tree_be`] — Barenboim–Elkin `q`-coloring of forests (Theorem 9),
//!   `O(log_q n)`-layer H-partition plus a Linial-scheduled sweep.

pub mod cole_vishkin;
pub mod cover_free;
pub mod defective;
pub mod edge_distributed;
pub mod grouped;
pub mod linial;
pub mod path_two_color;
pub mod rand_greedy;
pub mod reduce;
pub mod tree_be;

pub use cover_free::PolyFamily;
pub use defective::{DefectiveLocalSearch, DefectiveState};
pub use edge_distributed::edge_color_distributed;
pub use linial::{linial_color, LinialSchedule};
pub use rand_greedy::rand_greedy_color;
pub use reduce::reduce_colors;
pub use tree_be::{be_forest_coloring, be_forest_coloring_detailed, BeOutcome};

use local_lcl::Labeling;

/// Sentinel label for vertices a restricted run did not color (inactive
/// vertices in masked phases).
pub const UNCOLORED: usize = usize::MAX;

/// The outcome of a coloring pipeline: the final labeling, its palette size,
/// and the total number of LOCAL rounds consumed.
#[derive(Debug, Clone)]
pub struct ColoringOutcome {
    /// Final vertex colors in `0..palette`.
    pub labels: Labeling<usize>,
    /// Palette size of the final coloring.
    pub palette: usize,
    /// Total LOCAL rounds across all composed phases.
    pub rounds: u32,
}

/// Deterministic pipeline: Linial `O(Δ²)`-coloring followed by reduction to
/// `palette` colors. Requires `palette > Δ(G)`.
///
/// Round complexity: `O(log* n + Δ²)` — the `Δ²` term from one-class-per-round
/// reduction.
///
/// # Panics
///
/// Panics if `palette <= Δ(G)` or the graph is empty of vertices.
///
/// # Example
///
/// ```
/// use local_graphs::gen;
/// use local_algorithms::color::linial_then_reduce;
/// use local_lcl::{LclProblem, problems::VertexColoring};
///
/// let g = gen::cycle(32);
/// let out = linial_then_reduce(&g, 3, 7);
/// assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
/// ```
pub fn linial_then_reduce(g: &local_graphs::Graph, palette: usize, seed: u64) -> ColoringOutcome {
    assert!(
        palette > g.max_degree(),
        "palette {palette} must exceed Δ = {}",
        g.max_degree()
    );
    let base = linial_color(g, &local_model::IdAssignment::Shuffled { seed });
    let reduced = reduce_colors(g, &base.labels, base.palette, palette);
    ColoringOutcome {
        labels: reduced.labels,
        palette,
        rounds: base.rounds + reduced.rounds,
    }
}
