//! Standard color reduction: trade rounds for palette, one class per round.
//!
//! Given a proper `k`-coloring and a target palette of size `t > Δ`, rounds
//! `1, 2, …` retire color classes `k−1, k−2, …, t` in order: the vertices of
//! the retiring class simultaneously pick a free color below `t` (they form
//! an independent set, so no conflicts arise). Total: `k − t` rounds.

use crate::color::ColoringOutcome;
use crate::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::Graph;
use local_lcl::Labeling;
use local_model::{ExecSpec, Mode, NodeInit};

/// The reduction as a [`SyncAlgorithm`]. States are current colors.
#[derive(Debug, Clone)]
pub struct ColorReduction {
    from: usize,
    to: usize,
    initial: Vec<usize>,
}

impl ColorReduction {
    /// Reduce the proper coloring `initial` (palette `0..from`) to palette
    /// `0..to`.
    ///
    /// # Panics
    ///
    /// Panics if `to == 0` or `to > from`.
    pub fn new(initial: Vec<usize>, from: usize, to: usize) -> Self {
        assert!(to > 0, "target palette must be nonempty");
        assert!(to <= from, "target {to} exceeds source {from}");
        ColorReduction { from, to, initial }
    }
}

impl SyncAlgorithm for ColorReduction {
    type State = usize;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> usize {
        let c = self.initial[init.node];
        assert!(
            c < self.from,
            "initial color {c} outside palette {}",
            self.from
        );
        c
    }

    fn update(
        &self,
        round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &usize,
        neighbors: &[usize],
    ) -> SyncStep<usize, usize> {
        // Round j retires class from−j.
        let retiring = self.from - round as usize;
        let mut next = *state;
        if *state == retiring && *state >= self.to {
            let used: std::collections::HashSet<usize> = neighbors.iter().copied().collect();
            next = (0..self.to)
                .find(|c| !used.contains(c))
                .expect("degree < target palette guarantees a free color");
        }
        if next < self.to {
            SyncStep::Decide(next, next)
        } else {
            SyncStep::Continue(next)
        }
    }
}

/// Reduce a proper coloring to `target` colors, one class per round.
///
/// # Panics
///
/// Panics if `target <= Δ(G)` (a free color could be missing), if
/// `target > from`, or if `labels` is not a proper coloring (free-color
/// search would fail).
pub fn reduce_colors(
    g: &Graph,
    labels: &Labeling<usize>,
    from: usize,
    target: usize,
) -> ColoringOutcome {
    assert!(
        target > g.max_degree(),
        "target palette {target} must exceed Δ = {}",
        g.max_degree()
    );
    let algo = ColorReduction::new(labels.as_slice().to_vec(), from, target);
    let out = run_sync(
        g,
        Mode::deterministic(),
        &algo,
        &ExecSpec::rounds((from - target) as u32 + 2),
    )
    .strict()
    .expect("reduction halts after from-target rounds");
    ColoringOutcome {
        labels: Labeling::new(out.outputs),
        palette: target,
        rounds: out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::linial_then_reduce;
    use local_graphs::gen;
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduces_sequential_coloring_on_path() {
        let g = gen::path(10);
        let initial: Labeling<usize> = (0..10).collect();
        let out = reduce_colors(&g, &initial, 10, 3);
        assert_eq!(out.palette, 3);
        assert!(VertexColoring::new(3).validate(&g, &out.labels).is_ok());
        assert_eq!(out.rounds, 7); // 10 - 3
    }

    #[test]
    fn reduce_to_delta_plus_one_on_complete() {
        let g = gen::complete(5);
        let initial: Labeling<usize> = (0..5).map(|v| v * 2).collect();
        let out = reduce_colors(&g, &initial, 10, 5);
        assert!(VertexColoring::new(5).validate(&g, &out.labels).is_ok());
    }

    #[test]
    fn no_op_when_already_within_target() {
        let g = gen::cycle(6);
        let initial: Labeling<usize> = (0..6).map(|v| v % 3).collect();
        let out = reduce_colors(&g, &initial, 3, 3);
        assert_eq!(out.labels, initial);
        assert!(out.rounds <= 1);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn rejects_target_at_most_delta() {
        let g = gen::complete(4); // Δ = 3
        let initial: Labeling<usize> = (0..4).collect();
        let _ = reduce_colors(&g, &initial, 4, 3);
    }

    #[test]
    fn pipeline_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..5 {
            let g = gen::gnp(50, 0.1, &mut rng);
            let target = g.max_degree() + 1;
            let out = linial_then_reduce(&g, target, i);
            assert!(
                VertexColoring::new(target)
                    .validate(&g, &out.labels)
                    .is_ok(),
                "trial {i}"
            );
        }
    }

    #[test]
    fn pipeline_rounds_scale_with_delta_squared_not_n() {
        // Δ+1 pipeline on cycles: rounds should be essentially flat in n.
        let r1 = linial_then_reduce(&gen::cycle(64), 3, 0).rounds;
        let r2 = linial_then_reduce(&gen::cycle(4096), 3, 0).rounds;
        assert!(
            r2 <= r1 + 3,
            "rounds must grow log*-slowly in n: {r1} vs {r2}"
        );
    }
}
