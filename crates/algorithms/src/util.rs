//! Shared numeric helpers for round-complexity bookkeeping.

/// The iterated logarithm `log* n`: how many times `log₂` must be applied to
/// `n` before the result is ≤ 1.
///
/// ```
/// use local_algorithms::util::log_star;
/// assert_eq!(log_star(1.0), 0);
/// assert_eq!(log_star(2.0), 1);
/// assert_eq!(log_star(4.0), 2);
/// assert_eq!(log_star(16.0), 3);
/// assert_eq!(log_star(65536.0), 4);
/// ```
pub fn log_star(mut x: f64) -> u32 {
    let mut k = 0;
    while x > 1.0 {
        x = x.log2();
        k += 1;
    }
    k
}

/// `⌈log₂ x⌉` for integer `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1, "ceil_log2 of 0");
    if x == 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// `log_b(x)` for experiment tables.
pub fn log_base(x: f64, b: f64) -> f64 {
    x.ln() / b.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0.5), 0);
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(3.0), 2);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(5.0), 3);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(17.0), 4);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(65537.0), 5);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of 0")]
    fn ceil_log2_zero_panics() {
        let _ = ceil_log2(0);
    }

    #[test]
    fn log_base_values() {
        assert!((log_base(8.0, 2.0) - 3.0).abs() < 1e-12);
        assert!((log_base(81.0, 3.0) - 4.0).abs() < 1e-12);
    }
}
