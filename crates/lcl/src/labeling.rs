//! Vertex labelings.

use local_graphs::NodeId;
use serde::{Deserialize, Serialize};

/// A per-vertex labeling `λ: V → Σ`.
///
/// A thin wrapper over `Vec<L>` that documents intent and offers the handful
/// of operations LCL checking needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Labeling<L>(Vec<L>);

impl<L> Labeling<L> {
    /// Wrap a per-vertex label vector (index = vertex).
    pub fn new(labels: Vec<L>) -> Self {
        Labeling(labels)
    }

    /// The label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn get(&self, v: NodeId) -> &L {
        &self.0[v]
    }

    /// Number of labeled vertices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the labeling is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[L] {
        &self.0
    }

    /// Iterate over `(vertex, label)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &L)> {
        self.0.iter().enumerate()
    }

    /// Consume into the underlying vector.
    pub fn into_inner(self) -> Vec<L> {
        self.0
    }
}

impl<L> From<Vec<L>> for Labeling<L> {
    fn from(labels: Vec<L>) -> Self {
        Labeling::new(labels)
    }
}

impl<L> FromIterator<L> for Labeling<L> {
    fn from_iter<T: IntoIterator<Item = L>>(iter: T) -> Self {
        Labeling(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let l: Labeling<u32> = vec![5, 6, 7].into();
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
        assert_eq!(*l.get(1), 6);
        assert_eq!(l.as_slice(), &[5, 6, 7]);
        assert_eq!(l.iter().count(), 3);
        assert_eq!(l.into_inner(), vec![5, 6, 7]);
    }

    #[test]
    fn from_iterator() {
        let l: Labeling<usize> = (0..4).collect();
        assert_eq!(l.as_slice(), &[0, 1, 2, 3]);
    }
}
