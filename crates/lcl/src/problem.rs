//! The LCL problem trait and the radius-1 local view.

use crate::labeling::Labeling;
use local_graphs::{Graph, NodeId, PortId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::borrow::Cow;
use std::fmt;

/// Why a local view is unacceptable.
///
/// A `Cow` so that the many fixed defect messages ("vertex is a sink", …)
/// borrow a `&'static str` and the fault-free checking path allocates
/// nothing; only parameterized messages (`format!`) pay for a `String`.
pub type Reason = Cow<'static, str>;

/// Why a labeling fails to solve an LCL problem, anchored at the vertex whose
/// radius-`r` neighborhood is unacceptable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The vertex whose `r`-ball is bad.
    pub vertex: NodeId,
    /// Human-readable description of the local defect.
    pub reason: Reason,
}

impl Violation {
    /// Construct a violation at `vertex`.
    pub fn new(vertex: NodeId, reason: impl Into<Reason>) -> Self {
        Violation {
            vertex,
            reason: reason.into(),
        }
    }
}

// Hand-written so the JSON shape matches what `#[derive]` produced when
// `reason` was a `String` (the vendored serde has no `Cow` impls).
impl Serialize for Violation {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (String::from("vertex"), self.vertex.to_value()),
            (
                String::from("reason"),
                Value::String(self.reason.clone().into_owned()),
            ),
        ])
    }
}

impl Deserialize for Violation {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Violation {
            vertex: Deserialize::from_value(v.field("vertex")?)?,
            reason: Cow::Owned(String::from_value(v.field("reason")?)?),
        })
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation at vertex {}: {}", self.vertex, self.reason)
    }
}

impl std::error::Error for Violation {}

/// What one vertex knows about a neighbor after a single exchange: its label,
/// its degree, the port it used toward us, and any per-edge input on the
/// connecting edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborView<L> {
    /// The neighbor's output label.
    pub label: L,
    /// The neighbor's degree.
    pub degree: usize,
    /// The neighbor's port on the connecting edge.
    pub back_port: PortId,
    /// Problem-specific input on the connecting edge (e.g. its color in ψ);
    /// `0` when the problem has no edge input.
    pub edge_input: u64,
}

/// The complete radius-1 knowledge of a vertex: its own label and degree plus
/// one [`NeighborView`] per port.
///
/// This is *exactly* what a 1-round distributed verifier can learn, so a
/// checker phrased over `LocalView` is locally checkable by construction —
/// [`crate::verifier::check_distributed`] evaluates the same predicate inside
/// the round engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalView<L> {
    /// This vertex's output label.
    pub label: L,
    /// This vertex's degree.
    pub degree: usize,
    /// Per-port neighbor views.
    pub neighbors: Vec<NeighborView<L>>,
}

impl<L: Clone> LocalView<L> {
    /// Build the view of `v` from global data (the centralized path).
    pub fn from_graph<P>(problem: &P, g: &Graph, labels: &Labeling<L>, v: NodeId) -> Self
    where
        P: LclProblem<Label = L> + ?Sized,
    {
        let neighbors = g
            .neighbors(v)
            .iter()
            .map(|nb| NeighborView {
                label: labels.get(nb.node).clone(),
                degree: g.degree(nb.node),
                back_port: nb.back_port,
                edge_input: problem.edge_input(nb.edge),
            })
            .collect();
        LocalView {
            label: labels.get(v).clone(),
            degree: g.degree(v),
            neighbors,
        }
    }
}

/// A locally checkable labeling problem with labels of type `L` and checking
/// radius `r`.
///
/// All of the paper's problems (coloring, MIS, maximal matching, sinkless
/// orientation, sinkless coloring) are radius-1 LCLs, so the acceptance
/// predicate is normally phrased over [`LocalView`] via [`check_view`]. The
/// formal class allows any constant radius; a problem with `radius() > 1`
/// (e.g. [`crate::problems::RulingSet`]) instead overrides [`check_ball`],
/// which sees the whole labeled `r`-ball, and every generic checking path
/// ([`validate`], [`violations`], [`crate::check_partial`]) routes through
/// it.
///
/// [`check_view`]: LclProblem::check_view
/// [`check_ball`]: LclProblem::check_ball
/// [`validate`]: LclProblem::validate
/// [`violations`]: LclProblem::violations
pub trait LclProblem {
    /// The label type Σ (finite in the formal definition; any `Clone + Eq`
    /// type here).
    type Label: Clone + Eq + Send + Sync;

    /// The checking radius `r` (1 for every built-in problem except the
    /// ruling set).
    fn radius(&self) -> usize {
        1
    }

    /// Short problem name for reports.
    fn name(&self) -> String;

    /// Problem-specific input carried by edge `e` (e.g. the color ψ(e) for
    /// sinkless coloring). Defaults to 0 for problems without edge input.
    fn edge_input(&self, _e: local_graphs::EdgeId) -> u64 {
        0
    }

    /// The acceptance predicate over a radius-1 view.
    ///
    /// # Errors
    ///
    /// A description of the local defect, if the view is unacceptable.
    fn check_view(&self, view: &LocalView<Self::Label>) -> Result<(), Reason>;

    /// The acceptance predicate over the radius-`r` ball around `v`.
    ///
    /// The caller guarantees every vertex within distance [`radius`] of `v`
    /// carries a label (`labels[u].is_some()`); the default implementation
    /// assembles the radius-1 [`LocalView`] and delegates to [`check_view`].
    /// Problems with `radius() > 1` override this instead of `check_view`.
    ///
    /// [`radius`]: LclProblem::radius
    /// [`check_view`]: LclProblem::check_view
    ///
    /// # Errors
    ///
    /// A description of the local defect, if the ball is unacceptable.
    ///
    /// # Panics
    ///
    /// May panic if a vertex inside the ball is unlabeled.
    fn check_ball(
        &self,
        g: &Graph,
        labels: &[Option<Self::Label>],
        v: NodeId,
    ) -> Result<(), Reason> {
        let expect = |u: NodeId| -> Self::Label {
            labels[u]
                .clone()
                .expect("check_ball caller guarantees the ball is fully labeled")
        };
        let neighbors = g
            .neighbors(v)
            .iter()
            .map(|nb| NeighborView {
                label: expect(nb.node),
                degree: g.degree(nb.node),
                back_port: nb.back_port,
                edge_input: self.edge_input(nb.edge),
            })
            .collect();
        let view = LocalView {
            label: expect(v),
            degree: g.degree(v),
            neighbors,
        };
        self.check_view(&view)
    }

    /// Check the radius-1 condition at a single vertex of a concrete graph
    /// (the radius-1 fast path; problems with a larger radius are checked
    /// via [`check_ball`](LclProblem::check_ball)).
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] at `v` if its labeled ball is not
    /// acceptable.
    fn check_vertex(
        &self,
        g: &Graph,
        labels: &Labeling<Self::Label>,
        v: NodeId,
    ) -> Result<(), Violation> {
        let view = LocalView::from_graph(self, g, labels, v);
        self.check_view(&view)
            .map_err(|reason| Violation { vertex: v, reason })
    }

    /// Check the whole labeling by checking every vertex.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found, scanning vertices in order.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != g.n()`.
    fn validate(&self, g: &Graph, labels: &Labeling<Self::Label>) -> Result<(), Violation> {
        assert_eq!(labels.len(), g.n(), "labeling must cover every vertex");
        if self.radius() == 1 {
            for v in g.vertices() {
                self.check_vertex(g, labels, v)?;
            }
            return Ok(());
        }
        let opts: Vec<Option<Self::Label>> = labels.as_slice().iter().cloned().map(Some).collect();
        for v in g.vertices() {
            self.check_ball(g, &opts, v)
                .map_err(|reason| Violation { vertex: v, reason })?;
        }
        Ok(())
    }

    /// All violations (for diagnostics), not just the first.
    fn violations(&self, g: &Graph, labels: &Labeling<Self::Label>) -> Vec<Violation> {
        if self.radius() == 1 {
            return g
                .vertices()
                .filter_map(|v| self.check_vertex(g, labels, v).err())
                .collect();
        }
        let opts: Vec<Option<Self::Label>> = labels.as_slice().iter().cloned().map(Some).collect();
        g.vertices()
            .filter_map(|v| {
                self.check_ball(g, &opts, v)
                    .err()
                    .map(|reason| Violation { vertex: v, reason })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation::new(3, "two neighbors share color 1");
        assert_eq!(
            v.to_string(),
            "violation at vertex 3: two neighbors share color 1"
        );
    }
}
