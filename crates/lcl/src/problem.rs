//! The LCL problem trait and the radius-1 local view.

use crate::labeling::Labeling;
use local_graphs::{Graph, NodeId, PortId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a labeling fails to solve an LCL problem, anchored at the vertex whose
/// radius-`r` neighborhood is unacceptable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The vertex whose `r`-ball is bad.
    pub vertex: NodeId,
    /// Human-readable description of the local defect.
    pub reason: String,
}

impl Violation {
    /// Construct a violation at `vertex`.
    pub fn new(vertex: NodeId, reason: impl Into<String>) -> Self {
        Violation {
            vertex,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violation at vertex {}: {}", self.vertex, self.reason)
    }
}

impl std::error::Error for Violation {}

/// What one vertex knows about a neighbor after a single exchange: its label,
/// its degree, the port it used toward us, and any per-edge input on the
/// connecting edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborView<L> {
    /// The neighbor's output label.
    pub label: L,
    /// The neighbor's degree.
    pub degree: usize,
    /// The neighbor's port on the connecting edge.
    pub back_port: PortId,
    /// Problem-specific input on the connecting edge (e.g. its color in ψ);
    /// `0` when the problem has no edge input.
    pub edge_input: u64,
}

/// The complete radius-1 knowledge of a vertex: its own label and degree plus
/// one [`NeighborView`] per port.
///
/// This is *exactly* what a 1-round distributed verifier can learn, so a
/// checker phrased over `LocalView` is locally checkable by construction —
/// [`crate::verifier::check_distributed`] evaluates the same predicate inside
/// the round engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalView<L> {
    /// This vertex's output label.
    pub label: L,
    /// This vertex's degree.
    pub degree: usize,
    /// Per-port neighbor views.
    pub neighbors: Vec<NeighborView<L>>,
}

impl<L: Clone> LocalView<L> {
    /// Build the view of `v` from global data (the centralized path).
    pub fn from_graph<P>(problem: &P, g: &Graph, labels: &Labeling<L>, v: NodeId) -> Self
    where
        P: LclProblem<Label = L> + ?Sized,
    {
        let neighbors = g
            .neighbors(v)
            .iter()
            .map(|nb| NeighborView {
                label: labels.get(nb.node).clone(),
                degree: g.degree(nb.node),
                back_port: nb.back_port,
                edge_input: problem.edge_input(nb.edge),
            })
            .collect();
        LocalView {
            label: labels.get(v).clone(),
            degree: g.degree(v),
            neighbors,
        }
    }
}

/// A locally checkable labeling problem with labels of type `L` and checking
/// radius 1.
///
/// All of the paper's problems (coloring, MIS, maximal matching, sinkless
/// orientation, sinkless coloring) are radius-1 LCLs; the trait is therefore
/// phrased over [`LocalView`]. The formal class allows any constant radius —
/// a radius-`r` problem can be expressed by first pre-aggregating `r−1`
/// levels of information into the labels, the standard reduction.
pub trait LclProblem {
    /// The label type Σ (finite in the formal definition; any `Clone + Eq`
    /// type here).
    type Label: Clone + Eq + Send + Sync;

    /// The checking radius `r` (1 for every built-in problem).
    fn radius(&self) -> usize {
        1
    }

    /// Short problem name for reports.
    fn name(&self) -> String;

    /// Problem-specific input carried by edge `e` (e.g. the color ψ(e) for
    /// sinkless coloring). Defaults to 0 for problems without edge input.
    fn edge_input(&self, _e: local_graphs::EdgeId) -> u64 {
        0
    }

    /// The acceptance predicate over a radius-1 view.
    ///
    /// # Errors
    ///
    /// A description of the local defect, if the view is unacceptable.
    fn check_view(&self, view: &LocalView<Self::Label>) -> Result<(), String>;

    /// Check the radius-1 condition at a single vertex of a concrete graph.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] at `v` if its labeled ball is not
    /// acceptable.
    fn check_vertex(
        &self,
        g: &Graph,
        labels: &Labeling<Self::Label>,
        v: NodeId,
    ) -> Result<(), Violation> {
        let view = LocalView::from_graph(self, g, labels, v);
        self.check_view(&view)
            .map_err(|reason| Violation { vertex: v, reason })
    }

    /// Check the whole labeling by checking every vertex.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found, scanning vertices in order.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != g.n()`.
    fn validate(&self, g: &Graph, labels: &Labeling<Self::Label>) -> Result<(), Violation> {
        assert_eq!(labels.len(), g.n(), "labeling must cover every vertex");
        for v in g.vertices() {
            self.check_vertex(g, labels, v)?;
        }
        Ok(())
    }

    /// All violations (for diagnostics), not just the first.
    fn violations(&self, g: &Graph, labels: &Labeling<Self::Label>) -> Vec<Violation> {
        g.vertices()
            .filter_map(|v| self.check_vertex(g, labels, v).err())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation::new(3, "two neighbors share color 1");
        assert_eq!(
            v.to_string(),
            "violation at vertex 3: two neighbors share color 1"
        );
    }
}
