//! Distributed LCL verification inside the round engine.
//!
//! The defining property of an LCL is that solutions are verifiable in `O(1)`
//! rounds. [`check_distributed`] demonstrates it mechanically: every vertex
//! exchanges exactly one round of messages (its label, degree, and sending
//! port), assembles the same [`LocalView`] the
//! centralized checker uses, and evaluates the same predicate. The two paths
//! agree by construction — a property test in the integration suite checks
//! it on random graphs and labelings.

use crate::labeling::Labeling;
use crate::problem::{LclProblem, LocalView, NeighborView, Reason, Violation};
use local_graphs::{Graph, PortId};
use local_model::{Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol};

/// One verification message: the sender's label, degree, and sending port.
type VerifyMsg<L> = (L, usize, PortId);

/// Per-vertex verifier state.
#[derive(Debug)]
pub struct VerifierNode<'a, P: LclProblem> {
    problem: &'a P,
    label: P::Label,
    edge_inputs: Vec<u64>,
}

impl<'a, P: LclProblem + Sync> NodeProgram for VerifierNode<'a, P>
where
    P::Label: Clone + Send + Sync,
{
    type Msg = VerifyMsg<P::Label>;
    type Output = Option<Reason>;

    fn step(&mut self, round: u32, io: &mut NodeIo<'_, Self::Msg>) -> Action<Self::Output> {
        if round == 0 {
            for p in 0..io.degree() {
                io.send(p, (self.label.clone(), io.degree(), p));
            }
            return Action::Continue;
        }
        let neighbors: Vec<NeighborView<P::Label>> = (0..io.degree())
            .map(|p| {
                let (label, degree, back_port) = io
                    .recv(p)
                    .expect("all verifier nodes send in round 0")
                    .clone();
                NeighborView {
                    label,
                    degree,
                    back_port,
                    edge_input: self.edge_inputs[p],
                }
            })
            .collect();
        let view = LocalView {
            label: self.label.clone(),
            degree: io.degree(),
            neighbors,
        };
        Action::Halt(self.problem.check_view(&view).err())
    }
}

/// The verification protocol: one exchange, then evaluate the local
/// predicate.
#[derive(Debug)]
pub struct VerifierProtocol<'a, P: LclProblem> {
    problem: &'a P,
    graph: &'a Graph,
    labels: &'a Labeling<P::Label>,
}

impl<'a, P: LclProblem + Sync> Protocol for VerifierProtocol<'a, P>
where
    P::Label: Clone + Send + Sync,
{
    type Node = VerifierNode<'a, P>;

    fn create(&self, init: &NodeInit<'_>) -> Self::Node {
        let edge_inputs = self
            .graph
            .neighbors(init.node)
            .iter()
            .map(|nb| self.problem.edge_input(nb.edge))
            .collect();
        VerifierNode {
            problem: self.problem,
            label: self.labels.get(init.node).clone(),
            edge_inputs,
        }
    }
}

/// Verify `labels` against `problem` *distributedly*: one round of message
/// exchange in the engine, then a purely local decision at every vertex.
///
/// Agrees with [`LclProblem::validate`] on every input (both evaluate
/// [`LclProblem::check_view`] on identical views).
///
/// # Errors
///
/// The violation at the lowest-indexed failing vertex, if any.
///
/// # Panics
///
/// Panics if `problem.radius() != 1` (all built-in problems are radius-1) or
/// if `labels.len() != g.n()`.
pub fn check_distributed<P>(
    problem: &P,
    g: &Graph,
    labels: &Labeling<P::Label>,
) -> Result<(), Violation>
where
    P: LclProblem + Sync,
    P::Label: Clone + Send + Sync,
{
    assert_eq!(
        problem.radius(),
        1,
        "the distributed verifier supports radius-1 LCLs"
    );
    assert_eq!(labels.len(), g.n(), "labeling must cover every vertex");
    let protocol = VerifierProtocol {
        problem,
        graph: g,
        labels,
    };
    let run = Engine::new(g, Mode::deterministic())
        .execute(&ExecSpec::default(), &protocol)
        .into_run(100_000)
        .expect("verifier halts after one exchange");
    debug_assert!(run.rounds <= 1);
    for (v, outcome) in run.outputs.into_iter().enumerate() {
        if let Some(reason) = outcome {
            return Err(Violation { vertex: v, reason });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Mis, VertexColoring};
    use local_graphs::gen;

    #[test]
    fn distributed_accepts_valid_coloring() {
        let g = gen::cycle(8);
        let labels: Labeling<usize> = (0..8).map(|v| v % 2).collect();
        assert!(check_distributed(&VertexColoring::new(2), &g, &labels).is_ok());
    }

    #[test]
    fn distributed_rejects_and_matches_centralized() {
        let g = gen::cycle(5); // odd cycle: 2-coloring impossible
        let labels: Labeling<usize> = (0..5).map(|v| v % 2).collect();
        let p = VertexColoring::new(2);
        let central = p.validate(&g, &labels).unwrap_err();
        let distributed = check_distributed(&p, &g, &labels).unwrap_err();
        assert_eq!(central.vertex, distributed.vertex);
        assert_eq!(central.reason, distributed.reason);
    }

    #[test]
    fn distributed_mis_check() {
        let g = gen::star(7);
        let mut labels = vec![false; 7];
        labels[0] = true;
        assert!(check_distributed(&Mis::new(), &g, &labels.into()).is_ok());
        let all_out: Labeling<bool> = vec![false; 7].into();
        assert!(check_distributed(&Mis::new(), &g, &all_out).is_err());
    }

    #[test]
    fn distributed_sinkless_coloring_uses_edge_inputs() {
        use crate::problems::SinklessColoring;
        let g = gen::cycle(6);
        let psi = local_graphs::edge_coloring::konig(&g).unwrap();
        let p = SinklessColoring::new(2, psi);
        let proper: Labeling<usize> = (0..6).map(|v| v % 2).collect();
        assert!(check_distributed(&p, &g, &proper).is_ok());
        let constant: Labeling<usize> = vec![0; 6].into();
        let central = p.validate(&g, &constant).unwrap_err();
        let distributed = check_distributed(&p, &g, &constant).unwrap_err();
        assert_eq!(central.vertex, distributed.vertex);
    }
}
