//! Locally checkable labeling (LCL) problems.
//!
//! Following Naor–Stockmeyer (and Section II of the paper), an LCL problem is
//! given by a radius `r`, a finite label set `Σ`, and a set `C` of acceptable
//! labeled radius-`r` neighborhoods: a labeling is a solution iff every
//! vertex's labeled `r`-ball is acceptable. The class contains essentially
//! every natural symmetry-breaking problem; this crate implements the ones
//! the paper works with:
//!
//! * [`problems::VertexColoring`] — proper `k`-coloring (`r = 1`).
//! * [`problems::Mis`] — maximal independent set (`r = 1`).
//! * [`problems::MaximalMatching`] — maximal matching (`r = 1`).
//! * [`problems::SinklessOrientation`] — on Δ-regular edge-colored graphs
//!   (`r = 1`).
//! * [`problems::SinklessColoring`] — on Δ-regular edge-colored graphs
//!   (`r = 1`).
//! * [`problems::EdgeKColoring`] — proper `k`-edge-coloring with per-port
//!   labels (`r = 1`).
//! * [`problems::DefectiveColoring`] — `d`-defective `k`-coloring (`r = 1`).
//! * [`problems::RulingSet`] — `(2,k)`-ruling sets (`r = k`), the crate's
//!   radius-`k` exemplar: it overrides [`LclProblem::check_ball`] instead of
//!   `check_view`.
//!
//! Every problem implements [`LclProblem`], whose `validate` is a
//! *centralized* checker used to verify algorithm outputs, and exposes its
//! radius so the distributed verifier ([`verifier::check_distributed`]) can
//! demonstrate that the problem really is locally checkable: the distributed
//! verifier inspects only radius-`r` views and accepts iff `validate` does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod labeling;
mod partial;
mod problem;
pub mod problems;
pub mod verifier;

pub use labeling::Labeling;
pub use partial::{check_complete, check_partial, PartialValidity};
pub use problem::{LclProblem, LocalView, NeighborView, Reason, Violation};
