//! The Brandt et al. problems: Δ-sinkless orientation and Δ-sinkless
//! coloring, both on Δ-regular graphs equipped with a proper Δ-edge coloring.
//!
//! These drive the paper's lower bounds (Theorem 4): a Δ-coloring of a
//! Δ-edge-colored Δ-regular graph is automatically a Δ-sinkless coloring, and
//! round elimination between the two problems forces the `Ω(log_Δ log n)` /
//! `Ω(log_Δ n)` bounds.

use crate::problem::{LclProblem, LocalView, Reason};
use local_graphs::edge_coloring::EdgeColoring;
use local_graphs::{EdgeId, PortId};
use serde::{Deserialize, Serialize};

/// A vertex's declared orientation of its incident edges, indexed by port:
/// `true` = outgoing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Orientation(pub Vec<bool>);

impl Orientation {
    /// Whether the vertex declared at least one outgoing edge.
    pub fn has_out_edge(&self) -> bool {
        self.0.iter().any(|&o| o)
    }

    /// The declared direction of port `p` (`true` = outgoing).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn outgoing(&self, p: PortId) -> bool {
        self.0[p]
    }
}

/// Δ-sinkless orientation: orient every edge such that every vertex has
/// out-degree ≥ 1, with per-vertex labels `{→,←}^Δ` that must be consistent
/// across each edge (`r = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinklessOrientation {
    delta: usize,
}

impl SinklessOrientation {
    /// The problem on Δ-regular graphs.
    pub fn new(delta: usize) -> Self {
        SinklessOrientation { delta }
    }

    /// The degree parameter Δ.
    pub fn delta(&self) -> usize {
        self.delta
    }
}

impl LclProblem for SinklessOrientation {
    type Label = Orientation;

    fn name(&self) -> String {
        format!("{}-sinkless orientation", self.delta)
    }

    fn check_view(&self, view: &LocalView<Orientation>) -> Result<(), Reason> {
        if view.degree != self.delta {
            return Err(format!(
                "degree {} but the problem is defined on {}-regular graphs",
                view.degree, self.delta
            )
            .into());
        }
        if view.label.0.len() != view.degree {
            return Err("orientation vector has wrong length".into());
        }
        for (p, nb) in view.neighbors.iter().enumerate() {
            if nb.back_port >= nb.label.0.len() {
                return Err(
                    format!("neighbor on port {p} declared a malformed orientation").into(),
                );
            }
            if view.label.outgoing(p) == nb.label.outgoing(nb.back_port) {
                return Err(format!("edge on port {p} oriented inconsistently").into());
            }
        }
        if !view.label.has_out_edge() {
            return Err("vertex is a sink".into());
        }
        Ok(())
    }
}

/// Δ-sinkless coloring: given a proper Δ-edge coloring ψ, find a vertex
/// Δ-coloring such that no edge `{u, v}` has `color(u) = color(v) = ψ({u,v})`
/// (`r = 1`).
///
/// Note monochromatic edges whose shared color *differs* from the edge's
/// color are allowed — this is weaker than proper coloring, which is exactly
/// why every Δ-coloring is a sinkless coloring but not vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinklessColoring {
    delta: usize,
    psi: EdgeColoring,
}

impl SinklessColoring {
    /// The problem with input edge coloring `psi` on a Δ-regular graph.
    ///
    /// # Panics
    ///
    /// Panics if `psi` uses more than Δ colors.
    pub fn new(delta: usize, psi: EdgeColoring) -> Self {
        assert!(
            psi.num_colors() <= delta,
            "sinkless coloring needs a Δ-edge coloring, got {} colors for Δ = {}",
            psi.num_colors(),
            delta
        );
        SinklessColoring { delta, psi }
    }

    /// The degree parameter Δ.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The input edge coloring ψ.
    pub fn psi(&self) -> &EdgeColoring {
        &self.psi
    }
}

impl LclProblem for SinklessColoring {
    type Label = usize;

    fn name(&self) -> String {
        format!("{}-sinkless coloring", self.delta)
    }

    fn edge_input(&self, e: EdgeId) -> u64 {
        self.psi.color(e) as u64
    }

    fn check_view(&self, view: &LocalView<usize>) -> Result<(), Reason> {
        let c = view.label;
        if c >= self.delta {
            return Err(format!("color {c} outside palette of size {}", self.delta).into());
        }
        for (p, nb) in view.neighbors.iter().enumerate() {
            if nb.label == c && nb.edge_input == c as u64 {
                return Err(format!(
                    "forbidden configuration on port {p}: edge color {} equals both endpoint colors",
                    nb.edge_input
                )
                .into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Labeling, LclProblem};
    use local_graphs::edge_coloring::konig;
    use local_graphs::gen;

    fn oriented_cycle(n: usize) -> Labeling<Orientation> {
        // On cycle ports: vertex v has ports to v−1 and v+1; orient "forward".
        let g = gen::cycle(n);
        (0..n)
            .map(|v| {
                let ports: Vec<bool> = g
                    .neighbors(v)
                    .iter()
                    .map(|nb| nb.node == (v + 1) % n)
                    .collect();
                Orientation(ports)
            })
            .collect()
    }

    #[test]
    fn accepts_directed_cycle() {
        let g = gen::cycle(6);
        let p = SinklessOrientation::new(2);
        assert!(p.validate(&g, &oriented_cycle(6)).is_ok());
    }

    #[test]
    fn rejects_sink() {
        let g = gen::cycle(4);
        let p = SinklessOrientation::new(2);
        // Vertex 0 declares both edges incoming; neighbors agree (outgoing
        // toward 0); vertex 2 gets both outgoing.
        let labels: Labeling<Orientation> = (0..4)
            .map(|v| {
                let ports: Vec<bool> = g
                    .neighbors(v)
                    .iter()
                    .map(|nb| match (v, nb.node) {
                        (0, _) => false,
                        (_, 0) => true,
                        (2, _) => true,
                        (_, 2) => false,
                        _ => unreachable!("C4 adjacency"),
                    })
                    .collect();
                Orientation(ports)
            })
            .collect();
        let err = p.validate(&g, &labels).unwrap_err();
        assert_eq!(err.vertex, 0);
        assert!(err.reason.contains("sink"));
    }

    #[test]
    fn rejects_inconsistent_edge() {
        let g = gen::cycle(3);
        let p = SinklessOrientation::new(2);
        let labels: Labeling<Orientation> = (0..3).map(|_| Orientation(vec![true, true])).collect();
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("inconsistently"));
    }

    #[test]
    fn rejects_wrong_degree() {
        let g = gen::path(3);
        let p = SinklessOrientation::new(2);
        let labels: Labeling<Orientation> = vec![
            Orientation(vec![true]),
            Orientation(vec![true, false]),
            Orientation(vec![false]),
        ]
        .into();
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("regular"));
    }

    #[test]
    fn sinkless_coloring_accepts_proper_coloring() {
        // Any proper Δ-coloring is a sinkless coloring (paper, Section IV).
        let g = gen::cycle(6);
        let psi = konig(&g).unwrap();
        let p = SinklessColoring::new(2, psi);
        let proper: Labeling<usize> = (0..6).map(|v| v % 2).collect();
        assert!(p.validate(&g, &proper).is_ok());
    }

    #[test]
    fn sinkless_coloring_flags_exactly_psi_colored_monochromatic_edges() {
        let g = gen::cycle(4);
        let psi = konig(&g).unwrap();
        let p = SinklessColoring::new(2, psi);
        // All vertices take color 1: the two ψ=1 edges are forbidden, each
        // endpoint reports once, so 4 violations; the ψ=0 edges are fine.
        let all_ones: Labeling<usize> = vec![1; 4].into();
        assert_eq!(p.violations(&g, &all_ones).len(), 4);
    }

    #[test]
    fn sinkless_coloring_rejects_out_of_palette() {
        let g = gen::cycle(4);
        let psi = konig(&g).unwrap();
        let p = SinklessColoring::new(2, psi);
        let labels: Labeling<usize> = vec![0, 1, 0, 7].into();
        let err = p.validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("palette"));
    }

    #[test]
    #[should_panic(expected = "edge coloring")]
    fn sinkless_coloring_requires_delta_edge_colors() {
        let g = gen::cycle(5); // odd cycle needs 3 edge colors
        let psi = local_graphs::edge_coloring::misra_gries(&g);
        let _ = SinklessColoring::new(2, psi);
    }

    #[test]
    fn orientation_helpers() {
        let o = Orientation(vec![false, true, false]);
        assert!(o.has_out_edge());
        assert!(o.outgoing(1));
        assert!(!o.outgoing(0));
        assert!(!Orientation(vec![false, false]).has_out_edge());
    }

    #[test]
    fn accessors() {
        let g = gen::cycle(4);
        let psi = konig(&g).unwrap();
        let p = SinklessColoring::new(2, psi.clone());
        assert_eq!(p.delta(), 2);
        assert_eq!(p.psi(), &psi);
        assert_eq!(SinklessOrientation::new(3).delta(), 3);
        assert_eq!(p.name(), "2-sinkless coloring");
    }
}
