//! Ruling sets as a radius-`k` LCL.
//!
//! A `(2, k)`-ruling set in this repo's convention (matching
//! `local_algorithms::mis::is_ruling_set`): set members are pairwise at
//! distance `> k`, and every vertex is within distance `k` of a member. For
//! `k = 1` this is exactly MIS; for `k ≥ 2` the condition is *not* checkable
//! from a radius-1 view, so this is the crate's first problem with
//! `radius() > 1` — it overrides [`LclProblem::check_ball`] and leaves
//! `check_view` as a defensive stub.

use crate::problem::{LclProblem, LocalView, Reason};
use local_graphs::{Graph, NodeId};
use std::collections::VecDeque;

/// The `(2, k)`-ruling set problem: members pairwise at distance `> k`,
/// every vertex within distance `k` of a member (`r = k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RulingSet {
    k: usize,
}

impl RulingSet {
    /// The ruling set problem with ruling distance `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "ruling distance must be at least 1");
        RulingSet { k }
    }

    /// The ruling distance `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Members of the labeled ball around `v`, paired with their distance
    /// from `v` (up to distance `k`, excluding `v` itself).
    fn members_in_ball(
        &self,
        g: &Graph,
        labels: &[Option<bool>],
        v: NodeId,
    ) -> Vec<(NodeId, usize)> {
        let mut dist = vec![usize::MAX; g.n()];
        let mut queue = VecDeque::new();
        let mut members = Vec::new();
        dist[v] = 0;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            if dist[u] == self.k {
                continue;
            }
            for nb in g.neighbors(u) {
                if dist[nb.node] != usize::MAX {
                    continue;
                }
                dist[nb.node] = dist[u] + 1;
                if labels[nb.node] == Some(true) {
                    members.push((nb.node, dist[nb.node]));
                }
                queue.push_back(nb.node);
            }
        }
        members
    }
}

impl LclProblem for RulingSet {
    type Label = bool;

    fn radius(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("(2,{})-ruling set", self.k)
    }

    fn check_view(&self, view: &LocalView<bool>) -> Result<(), Reason> {
        if self.k != 1 {
            // Radius-k checking goes through `check_ball`; a radius-1 view
            // cannot decide the k >= 2 condition.
            return Err("ruling sets are checked over the radius-k ball; use check_ball".into());
        }
        // k = 1 is exactly MIS.
        let neighbor_in = view.neighbors.iter().any(|nb| nb.label);
        match (view.label, neighbor_in) {
            (true, true) => Err("set vertex adjacent to another set vertex".into()),
            (false, false) => Err("vertex outside the set with no adjacent set vertex".into()),
            _ => Ok(()),
        }
    }

    fn check_ball(&self, g: &Graph, labels: &[Option<bool>], v: NodeId) -> Result<(), Reason> {
        let member = labels[v].expect("check_ball caller guarantees the ball is fully labeled");
        let others = self.members_in_ball(g, labels, v);
        if member {
            match others.first() {
                Some(&(u, d)) => Err(format!(
                    "set vertex with another set vertex {u} at distance {d} <= {}",
                    self.k
                )
                .into()),
                None => Ok(()),
            }
        } else if others.is_empty() {
            Err(format!(
                "vertex outside the set with no set vertex within distance {} (not ruled)",
                self.k
            )
            .into())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_complete, check_partial, Labeling};
    use local_graphs::gen;

    #[test]
    fn k1_agrees_with_mis_semantics() {
        let g = gen::path(5);
        let good: Labeling<bool> = vec![true, false, true, false, true].into();
        assert!(RulingSet::new(1).validate(&g, &good).is_ok());
        let adjacent: Labeling<bool> = vec![true, true, false, true, false].into();
        assert!(RulingSet::new(1).validate(&g, &adjacent).is_err());
    }

    #[test]
    fn accepts_distance_2_ruling_set_on_path() {
        let g = gen::path(5);
        // {0, 4}: members at distance 4 > 2; everything within distance 2.
        let l: Labeling<bool> = vec![true, false, false, false, true].into();
        assert!(RulingSet::new(2).validate(&g, &l).is_ok());
    }

    #[test]
    fn rejects_close_members_and_unruled_vertices() {
        let g = gen::path(6);
        // {0, 2}: members at distance 2 <= 2.
        let close: Labeling<bool> = vec![true, false, true, false, false, false].into();
        let err = RulingSet::new(2).validate(&g, &close).unwrap_err();
        assert!(err.reason.contains("distance"));
        // {0}: vertex 5 is at distance 5 > 2 from the only member.
        let sparse: Labeling<bool> = vec![true, false, false, false, false, false].into();
        let err = RulingSet::new(2).validate(&g, &sparse).unwrap_err();
        assert_eq!(err.vertex, 3);
        assert!(err.reason.contains("not ruled"));
    }

    #[test]
    fn partial_checking_skips_holey_balls() {
        let g = gen::path(6);
        let p = RulingSet::new(2);
        // Vertex 2 unlabeled: every vertex within distance 2 of it (0..=4)
        // is skipped; only vertex 5's ball {3,4,5} survives, and it is ruled
        // by... nothing labeled true — make 4 a member so 5 passes.
        let labels = vec![
            Some(true),
            Some(false),
            None,
            Some(false),
            Some(true),
            Some(false),
        ];
        let out = check_partial(&p, &g, &labels);
        assert_eq!(out.skipped, 5);
        assert_eq!(out.checked, 1);
        assert_eq!(out.valid, 1);
    }

    #[test]
    fn complete_check_agrees_with_validate() {
        let g = gen::cycle(9);
        let p = RulingSet::new(2);
        // {0, 3, 6} on C9: pairwise distance 3 > 2, everything within 1.
        let l: Labeling<bool> = (0..9).map(|v| v % 3 == 0).collect();
        assert!(p.validate(&g, &l).is_ok());
        let out = check_complete(&p, &g, &l);
        assert_eq!(out.checked, 9);
        assert!(out.all_checked_valid());
    }

    #[test]
    fn name_and_radius() {
        let p = RulingSet::new(2);
        assert_eq!(p.name(), "(2,2)-ruling set");
        assert_eq!(p.radius(), 2);
        assert_eq!(p.k(), 2);
    }
}
