//! The concrete LCL problems the paper works with.

mod coloring;
mod edge_coloring;
mod matching;
mod mis;
mod sinkless;

pub use coloring::VertexColoring;
pub use edge_coloring::{EdgeKColoring, PortColors};
pub use matching::MaximalMatching;
pub use mis::Mis;
pub use sinkless::{Orientation, SinklessColoring, SinklessOrientation};
