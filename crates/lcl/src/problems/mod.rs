//! The concrete LCL problems the paper works with.

mod coloring;
mod defective;
mod edge_coloring;
mod matching;
mod mis;
mod ruling_set;
mod sinkless;

pub use coloring::VertexColoring;
pub use defective::DefectiveColoring;
pub use edge_coloring::{EdgeKColoring, PortColors};
pub use matching::MaximalMatching;
pub use mis::Mis;
pub use ruling_set::RulingSet;
pub use sinkless::{Orientation, SinklessColoring, SinklessOrientation};
