//! Proper `k`-coloring as an LCL (`r = 1`, `Σ = {0, …, k−1}`).

use crate::problem::{LclProblem, LocalView, Reason};

/// Proper vertex coloring with palette `{0, …, k−1}`: adjacent vertices get
/// different colors.
///
/// # Example
///
/// ```
/// use local_graphs::gen;
/// use local_lcl::{LclProblem, Labeling};
/// use local_lcl::problems::VertexColoring;
///
/// let g = gen::cycle(4);
/// let p = VertexColoring::new(2);
/// let good: Labeling<usize> = vec![0, 1, 0, 1].into();
/// assert!(p.validate(&g, &good).is_ok());
/// let bad: Labeling<usize> = vec![0, 0, 1, 1].into();
/// assert!(p.validate(&g, &bad).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexColoring {
    k: usize,
}

impl VertexColoring {
    /// The `k`-coloring problem.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "palette must be nonempty");
        VertexColoring { k }
    }

    /// Palette size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl LclProblem for VertexColoring {
    type Label = usize;

    fn name(&self) -> String {
        format!("{}-coloring", self.k)
    }

    fn check_view(&self, view: &LocalView<usize>) -> Result<(), Reason> {
        let c = view.label;
        if c >= self.k {
            return Err(format!("color {c} outside palette of size {}", self.k).into());
        }
        for (p, nb) in view.neighbors.iter().enumerate() {
            if nb.label == c {
                return Err(format!("neighbor on port {p} shares color {c}").into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Labeling;
    use local_graphs::gen;

    #[test]
    fn accepts_proper_coloring() {
        let g = gen::complete(3);
        let p = VertexColoring::new(3);
        let l: Labeling<usize> = vec![0, 1, 2].into();
        assert!(p.validate(&g, &l).is_ok());
    }

    #[test]
    fn rejects_monochromatic_edge() {
        let g = gen::path(3);
        let p = VertexColoring::new(3);
        let l: Labeling<usize> = vec![1, 1, 0].into();
        let err = p.validate(&g, &l).unwrap_err();
        assert_eq!(err.vertex, 0);
        assert!(err.reason.contains("color 1"));
    }

    #[test]
    fn rejects_out_of_palette() {
        let g = gen::path(2);
        let p = VertexColoring::new(2);
        let l: Labeling<usize> = vec![0, 5].into();
        let err = p.validate(&g, &l).unwrap_err();
        assert_eq!(err.vertex, 1);
        assert!(err.reason.contains("outside palette"));
    }

    #[test]
    fn violations_lists_every_bad_vertex() {
        let g = gen::path(3);
        let p = VertexColoring::new(2);
        let l: Labeling<usize> = vec![0, 0, 0].into();
        assert_eq!(p.violations(&g, &l).len(), 3);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_palette_panics() {
        let _ = VertexColoring::new(0);
    }

    #[test]
    fn name_and_radius() {
        let p = VertexColoring::new(7);
        assert_eq!(p.name(), "7-coloring");
        assert_eq!(p.radius(), 1);
        assert_eq!(p.k(), 7);
    }

    #[test]
    fn isolated_vertex_always_acceptable() {
        let g = local_graphs::GraphBuilder::new(1).build();
        let p = VertexColoring::new(1);
        let l: Labeling<usize> = vec![0].into();
        assert!(p.validate(&g, &l).is_ok());
    }
}
