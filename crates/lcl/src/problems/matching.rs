//! Maximal matching as an LCL (`r = 1`).
//!
//! Label alphabet: each vertex declares the *port* of its matched edge (or
//! that it is unmatched). The radius-1 condition checks consistency (both
//! endpoints of a matched edge point at each other) and maximality (an
//! unmatched vertex has no unmatched neighbor).

use crate::labeling::Labeling;
use crate::problem::{LclProblem, LocalView, Reason};
use local_graphs::{Graph, PortId};

/// Maximal matching with per-vertex port labels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalMatching;

impl MaximalMatching {
    /// The maximal matching problem.
    pub fn new() -> Self {
        MaximalMatching
    }

    /// Convert an edge subset into the port labeling this problem checks.
    ///
    /// # Panics
    ///
    /// Panics if `in_matching` has the wrong length or the selected edges do
    /// not form a matching (two share an endpoint).
    pub fn labels_from_edges(g: &Graph, in_matching: &[bool]) -> Labeling<Option<PortId>> {
        assert_eq!(in_matching.len(), g.m(), "per-edge flag vector length");
        let mut labels: Vec<Option<PortId>> = vec![None; g.n()];
        for (e, &included) in in_matching.iter().enumerate() {
            if !included {
                continue;
            }
            let (u, v) = g.endpoints(e);
            for x in [u, v] {
                assert!(
                    labels[x].is_none(),
                    "edge {e} and another matched edge share vertex {x}"
                );
            }
            labels[u] = g.port_to(u, v);
            labels[v] = g.port_to(v, u);
        }
        Labeling::new(labels)
    }
}

impl LclProblem for MaximalMatching {
    type Label = Option<PortId>;

    fn name(&self) -> String {
        "maximal matching".to_owned()
    }

    fn check_view(&self, view: &LocalView<Option<PortId>>) -> Result<(), Reason> {
        match view.label {
            Some(p) => {
                if p >= view.degree {
                    return Err(format!("matched port {p} out of range").into());
                }
                let nb = &view.neighbors[p];
                if nb.label != Some(nb.back_port) {
                    return Err(format!("match on port {p} not reciprocated").into());
                }
                Ok(())
            }
            None => match view.neighbors.iter().position(|nb| nb.label.is_none()) {
                Some(p) => Err(format!(
                    "unmatched next to unmatched neighbor on port {p} (not maximal)"
                )
                .into()),
                None => Ok(()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn accepts_perfect_matching_on_path4() {
        let g = gen::path(4); // edges: (0,1) (1,2) (2,3)
        let labels = MaximalMatching::labels_from_edges(&g, &[true, false, true]);
        assert!(MaximalMatching::new().validate(&g, &labels).is_ok());
    }

    #[test]
    fn accepts_maximal_non_perfect() {
        let g = gen::path(3); // edges (0,1) (1,2); matching {(0,1)} leaves 2 alone
        let labels = MaximalMatching::labels_from_edges(&g, &[true, false]);
        assert!(MaximalMatching::new().validate(&g, &labels).is_ok());
    }

    #[test]
    fn rejects_non_maximal() {
        let g = gen::path(4);
        let labels = MaximalMatching::labels_from_edges(&g, &[false, false, false]);
        let err = MaximalMatching::new().validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("not maximal"));
    }

    #[test]
    fn rejects_unreciprocated_pointer() {
        let g = gen::path(3);
        let labels: Labeling<Option<PortId>> = vec![Some(0), None, None].into();
        let err = MaximalMatching::new().validate(&g, &labels).unwrap_err();
        assert_eq!(err.vertex, 0);
        assert!(err.reason.contains("not reciprocated"));
    }

    #[test]
    fn rejects_out_of_range_port() {
        let g = gen::path(2);
        let labels: Labeling<Option<PortId>> = vec![Some(5), Some(0)].into();
        let err = MaximalMatching::new().validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("out of range"));
    }

    #[test]
    #[should_panic(expected = "share vertex")]
    fn labels_from_edges_rejects_overlap() {
        let g = gen::path(3);
        let _ = MaximalMatching::labels_from_edges(&g, &[true, true]);
    }

    #[test]
    fn empty_graph_trivially_valid() {
        let g = local_graphs::GraphBuilder::new(3).build();
        let labels: Labeling<Option<PortId>> = vec![None, None, None].into();
        assert!(MaximalMatching::new().validate(&g, &labels).is_ok());
    }
}
