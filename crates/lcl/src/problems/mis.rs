//! Maximal independent set as an LCL (`r = 1`, `Σ = {in, out}`).

use crate::problem::{LclProblem, LocalView, Reason};

/// Maximal independent set: `v ∈ I` iff no neighbor of `v` is in `I`
/// (independence + maximality in one local condition, exactly the paper's
/// formulation: `N(v) ∩ I = ∅  ⇔  v ∈ I`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mis;

impl Mis {
    /// The MIS problem.
    pub fn new() -> Self {
        Mis
    }
}

impl LclProblem for Mis {
    type Label = bool;

    fn name(&self) -> String {
        "MIS".to_owned()
    }

    fn check_view(&self, view: &LocalView<bool>) -> Result<(), Reason> {
        let neighbor_in = view.neighbors.iter().any(|nb| nb.label);
        match (view.label, neighbor_in) {
            (true, true) => Err("two adjacent vertices in the set".into()),
            (false, false) => {
                Err("vertex outside the set with no neighbor inside (not maximal)".into())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Labeling;
    use local_graphs::gen;

    #[test]
    fn accepts_alternating_set_on_path() {
        let g = gen::path(5);
        let l: Labeling<bool> = vec![true, false, true, false, true].into();
        assert!(Mis::new().validate(&g, &l).is_ok());
    }

    #[test]
    fn accepts_single_center_on_star() {
        let g = gen::star(6);
        let mut labels = vec![false; 6];
        labels[0] = true;
        assert!(Mis::new().validate(&g, &labels.into()).is_ok());
    }

    #[test]
    fn rejects_adjacent_members() {
        let g = gen::path(2);
        let l: Labeling<bool> = vec![true, true].into();
        let err = Mis::new().validate(&g, &l).unwrap_err();
        assert!(err.reason.contains("adjacent"));
    }

    #[test]
    fn rejects_non_maximal() {
        let g = gen::path(3);
        let l: Labeling<bool> = vec![true, false, false].into();
        let err = Mis::new().validate(&g, &l).unwrap_err();
        assert_eq!(err.vertex, 2);
        assert!(err.reason.contains("maximal"));
    }

    #[test]
    fn isolated_vertices_must_join() {
        let g = local_graphs::GraphBuilder::new(2).build();
        let l: Labeling<bool> = vec![false, false].into();
        assert!(Mis::new().validate(&g, &l).is_err());
        let l: Labeling<bool> = vec![true, true].into();
        assert!(Mis::new().validate(&g, &l).is_ok());
    }
}
