//! Proper `k`-edge-coloring as an LCL (`r = 1`).
//!
//! Label alphabet: each vertex announces a color per port; the radius-1
//! condition checks that both endpoints of every edge announce the *same*
//! color (consistency) and that each vertex's ports carry pairwise distinct
//! colors (properness). The paper's survey contrasts `(2Δ−1)`-edge-coloring
//! (easy, `O(log* n)`-ish deterministically) with maximal matching — this
//! problem backs those baselines.

use crate::problem::{LclProblem, LocalView, Reason};
use serde::{Deserialize, Serialize};

/// A vertex's per-port edge colors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortColors(pub Vec<usize>);

/// Proper edge coloring with palette `{0, …, k−1}`, labeled per vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeKColoring {
    k: usize,
}

impl EdgeKColoring {
    /// The `k`-edge-coloring problem.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "palette must be nonempty");
        EdgeKColoring { k }
    }

    /// Palette size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Build the per-vertex labeling from a per-edge color vector.
    ///
    /// # Panics
    ///
    /// Panics if `colors.len() != g.m()`.
    pub fn labels_from_edge_colors(
        g: &local_graphs::Graph,
        colors: &[usize],
    ) -> crate::Labeling<PortColors> {
        assert_eq!(colors.len(), g.m(), "one color per edge");
        g.vertices()
            .map(|v| PortColors(g.neighbors(v).iter().map(|nb| colors[nb.edge]).collect()))
            .collect()
    }
}

impl LclProblem for EdgeKColoring {
    type Label = PortColors;

    fn name(&self) -> String {
        format!("{}-edge-coloring", self.k)
    }

    fn check_view(&self, view: &LocalView<PortColors>) -> Result<(), Reason> {
        if view.label.0.len() != view.degree {
            return Err("port-color vector has wrong length".into());
        }
        for (p, &c) in view.label.0.iter().enumerate() {
            if c >= self.k {
                return Err(format!("port {p} color {c} outside palette {}", self.k).into());
            }
            for (q, &c2) in view.label.0.iter().enumerate().skip(p + 1) {
                if c == c2 {
                    return Err(format!("ports {p} and {q} share color {c}").into());
                }
            }
        }
        for (p, nb) in view.neighbors.iter().enumerate() {
            match nb.label.0.get(nb.back_port) {
                Some(&theirs) if theirs == view.label.0[p] => {}
                Some(&theirs) => {
                    return Err(format!(
                        "edge on port {p}: we say {}, neighbor says {theirs}",
                        view.label.0[p]
                    )
                    .into());
                }
                None => return Err(format!("neighbor on port {p} mislabeled its ports").into()),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Labeling, LclProblem};
    use local_graphs::{edge_coloring, gen};

    #[test]
    fn accepts_misra_gries_output() {
        let g = gen::complete(5);
        let col = edge_coloring::misra_gries(&g);
        let labels = EdgeKColoring::labels_from_edge_colors(&g, col.as_slice());
        let p = EdgeKColoring::new(col.num_colors());
        assert!(p.validate(&g, &labels).is_ok());
    }

    #[test]
    fn rejects_clashing_ports() {
        let g = gen::path(3); // vertex 1 has two ports
        let labels: Labeling<PortColors> = vec![
            PortColors(vec![0]),
            PortColors(vec![0, 0]),
            PortColors(vec![0]),
        ]
        .into();
        let err = EdgeKColoring::new(2).validate(&g, &labels).unwrap_err();
        assert_eq!(err.vertex, 1);
        assert!(err.reason.contains("share color"));
    }

    #[test]
    fn rejects_inconsistent_edge() {
        let g = gen::path(2);
        let labels: Labeling<PortColors> = vec![PortColors(vec![0]), PortColors(vec![1])].into();
        let err = EdgeKColoring::new(2).validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("neighbor says"));
    }

    #[test]
    fn rejects_out_of_palette() {
        let g = gen::path(2);
        let labels: Labeling<PortColors> = vec![PortColors(vec![5]), PortColors(vec![5])].into();
        let err = EdgeKColoring::new(2).validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("outside palette"));
    }

    #[test]
    fn rejects_wrong_length() {
        let g = gen::path(2);
        let labels: Labeling<PortColors> = vec![PortColors(vec![]), PortColors(vec![0])].into();
        let err = EdgeKColoring::new(2).validate(&g, &labels).unwrap_err();
        assert!(err.reason.contains("wrong length"));
    }
}
