//! Defective coloring as an LCL (`r = 1`).
//!
//! A `d`-defective `k`-coloring colors the vertices with `k` colors such
//! that every vertex has at most `d` neighbors of its own color — proper
//! coloring relaxed to tolerate bounded monochromatic degree. The
//! Ghaffari–Kuhn line of work uses defective (and arb-defective) colorings
//! as the workhorse subroutine for derandomized local coloring; here it
//! rounds out the workload catalog with a problem whose solutions are
//! abundant (2 colors with defect 1 always exist on subcubic graphs) yet
//! still locally checkable.

use crate::problem::{LclProblem, LocalView, Reason};

/// `d`-defective `k`-coloring: labels in `{0, …, k−1}`, every vertex has at
/// most `d` same-colored neighbors (`r = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefectiveColoring {
    colors: usize,
    defect: usize,
}

impl DefectiveColoring {
    /// The `defect`-defective `colors`-coloring problem.
    ///
    /// # Panics
    ///
    /// Panics if `colors == 0`.
    pub fn new(colors: usize, defect: usize) -> Self {
        assert!(colors > 0, "palette must be nonempty");
        DefectiveColoring { colors, defect }
    }

    /// Palette size `k`.
    pub fn colors(&self) -> usize {
        self.colors
    }

    /// Maximum allowed monochromatic degree `d`.
    pub fn defect(&self) -> usize {
        self.defect
    }
}

impl LclProblem for DefectiveColoring {
    type Label = usize;

    fn name(&self) -> String {
        format!("{}-defective {}-coloring", self.defect, self.colors)
    }

    fn check_view(&self, view: &LocalView<usize>) -> Result<(), Reason> {
        let c = view.label;
        if c >= self.colors {
            return Err(format!("color {c} outside palette of size {}", self.colors).into());
        }
        let mono = view.neighbors.iter().filter(|nb| nb.label == c).count();
        if mono > self.defect {
            return Err(format!(
                "{mono} neighbors share color {c}, exceeding defect {}",
                self.defect
            )
            .into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Labeling;
    use local_graphs::gen;

    #[test]
    fn zero_defect_is_proper_coloring() {
        let g = gen::path(3);
        let p = DefectiveColoring::new(2, 0);
        let good: Labeling<usize> = vec![0, 1, 0].into();
        assert!(p.validate(&g, &good).is_ok());
        let bad: Labeling<usize> = vec![0, 0, 1].into();
        assert!(p.validate(&g, &bad).is_err());
    }

    #[test]
    fn defect_one_tolerates_one_monochromatic_neighbor() {
        let g = gen::path(3);
        let p = DefectiveColoring::new(2, 1);
        // The monochromatic edge 0–1 gives each endpoint exactly one
        // same-colored neighbor: allowed at defect 1.
        let l: Labeling<usize> = vec![0, 0, 1].into();
        assert!(p.validate(&g, &l).is_ok());
    }

    #[test]
    fn rejects_defect_overflow() {
        let g = gen::star(4); // center 0 with 3 leaves
        let p = DefectiveColoring::new(2, 1);
        let l: Labeling<usize> = vec![0, 0, 0, 1].into();
        let err = p.validate(&g, &l).unwrap_err();
        assert_eq!(err.vertex, 0);
        assert!(err.reason.contains("exceeding defect"));
    }

    #[test]
    fn rejects_out_of_palette() {
        let g = gen::path(2);
        let p = DefectiveColoring::new(2, 1);
        let l: Labeling<usize> = vec![0, 3].into();
        let err = p.validate(&g, &l).unwrap_err();
        assert!(err.reason.contains("outside palette"));
    }

    #[test]
    fn monochromatic_triangle_ok_at_defect_two() {
        let g = gen::complete(3);
        let p = DefectiveColoring::new(1, 2);
        let l: Labeling<usize> = vec![0, 0, 0].into();
        assert!(p.validate(&g, &l).is_ok());
        assert!(DefectiveColoring::new(1, 1).validate(&g, &l).is_err());
    }

    #[test]
    fn accessors_and_name() {
        let p = DefectiveColoring::new(2, 1);
        assert_eq!(p.name(), "1-defective 2-coloring");
        assert_eq!(p.colors(), 2);
        assert_eq!(p.defect(), 1);
        assert_eq!(p.radius(), 1);
    }
}
