//! Partial validation for labelings that survived a faulty run.
//!
//! A crash-tolerant execution yields labels only at the vertices that halted;
//! the rest are `None`. Validity is then a *local* notion: a vertex can be
//! judged only if its full radius-1 view survived — it and every neighbor
//! carry a label. [`check_partial`] scores exactly those vertices and reports
//! how many passed, so resilience experiments (E12) can speak of a validity
//! rate instead of an all-or-nothing verdict.

use crate::labeling::Labeling;
use crate::problem::{LclProblem, LocalView, NeighborView, Violation};
use local_graphs::Graph;
use std::collections::VecDeque;

/// The verdict of [`check_partial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialValidity {
    /// Vertices whose full radius-1 view survived and was checked.
    pub checked: usize,
    /// Checked vertices whose view is acceptable.
    pub valid: usize,
    /// Vertices skipped because they or a neighbor carry no label.
    pub skipped: usize,
    /// The violations among the checked vertices.
    pub violations: Vec<Violation>,
}

impl PartialValidity {
    /// Fraction of vertices that were both checkable and acceptable, over
    /// the whole graph (`valid / (checked + skipped)`); `1.0` on an empty
    /// graph. A fault that silences a vertex therefore *counts against*
    /// validity — its neighborhood becomes uncheckable.
    pub fn validity_rate(&self) -> f64 {
        let total = self.checked + self.skipped;
        if total == 0 {
            1.0
        } else {
            self.valid as f64 / total as f64
        }
    }

    /// Did every checkable vertex pass?
    pub fn all_checked_valid(&self) -> bool {
        self.valid == self.checked
    }
}

/// Check `problem`'s radius-`r` predicate at every vertex whose full ball
/// survived: the vertex and everything within distance `problem.radius()`
/// is labeled. Vertices with a hole anywhere in the ball are skipped, never
/// failed.
///
/// A complete labeling (`labels.iter().all(Option::is_some)`) checks every
/// vertex and agrees with [`LclProblem::validate`].
///
/// # Panics
///
/// Panics if `labels.len() != g.n()`.
pub fn check_partial<P: LclProblem>(
    problem: &P,
    g: &Graph,
    labels: &[Option<P::Label>],
) -> PartialValidity {
    assert_eq!(labels.len(), g.n(), "labeling must cover every vertex");
    if problem.radius() != 1 {
        return check_partial_ball(problem, g, labels);
    }
    let mut out = PartialValidity {
        checked: 0,
        valid: 0,
        skipped: 0,
        violations: Vec::new(),
    };
    for v in g.vertices() {
        let Some(label) = labels[v].as_ref() else {
            out.skipped += 1;
            continue;
        };
        let neighbors: Option<Vec<NeighborView<P::Label>>> = g
            .neighbors(v)
            .iter()
            .map(|nb| {
                labels[nb.node].as_ref().map(|l| NeighborView {
                    label: l.clone(),
                    degree: g.degree(nb.node),
                    back_port: nb.back_port,
                    edge_input: problem.edge_input(nb.edge),
                })
            })
            .collect();
        let Some(neighbors) = neighbors else {
            out.skipped += 1;
            continue;
        };
        let view = LocalView {
            label: label.clone(),
            degree: g.degree(v),
            neighbors,
        };
        out.checked += 1;
        match problem.check_view(&view) {
            Ok(()) => out.valid += 1,
            Err(reason) => out.violations.push(Violation { vertex: v, reason }),
        }
    }
    out
}

/// The radius-`r` generalization (`r > 1`): a vertex is checkable iff its
/// whole distance-`r` ball is labeled, in which case the problem's
/// [`LclProblem::check_ball`] judges it.
fn check_partial_ball<P: LclProblem>(
    problem: &P,
    g: &Graph,
    labels: &[Option<P::Label>],
) -> PartialValidity {
    let radius = problem.radius();
    let mut out = PartialValidity {
        checked: 0,
        valid: 0,
        skipped: 0,
        violations: Vec::new(),
    };
    // Scratch reused across vertices: BFS distances (usize::MAX = unvisited)
    // plus the list of stamped vertices to reset.
    let mut dist = vec![usize::MAX; g.n()];
    let mut stamped: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for v in g.vertices() {
        if labels[v].is_none() {
            out.skipped += 1;
            continue;
        }
        stamped.clear();
        queue.clear();
        dist[v] = 0;
        stamped.push(v);
        queue.push_back(v);
        let mut complete = true;
        'ball: while let Some(u) = queue.pop_front() {
            if dist[u] == radius {
                continue;
            }
            for nb in g.neighbors(u) {
                if dist[nb.node] != usize::MAX {
                    continue;
                }
                if labels[nb.node].is_none() {
                    complete = false;
                    break 'ball;
                }
                dist[nb.node] = dist[u] + 1;
                stamped.push(nb.node);
                queue.push_back(nb.node);
            }
        }
        for &u in &stamped {
            dist[u] = usize::MAX;
        }
        if !complete {
            out.skipped += 1;
            continue;
        }
        out.checked += 1;
        match problem.check_ball(g, labels, v) {
            Ok(()) => out.valid += 1,
            Err(reason) => out.violations.push(Violation { vertex: v, reason }),
        }
    }
    out
}

/// [`check_partial`] over a complete [`Labeling`] (test/diagnostic helper).
pub fn check_complete<P: LclProblem>(
    problem: &P,
    g: &Graph,
    labels: &Labeling<P::Label>,
) -> PartialValidity {
    let opts: Vec<Option<P::Label>> = labels.as_slice().iter().map(|l| Some(l.clone())).collect();
    check_partial(problem, g, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::VertexColoring;
    use local_graphs::gen;

    #[test]
    fn complete_valid_labeling_checks_everything() {
        let g = gen::path(4);
        let labels = vec![Some(0usize), Some(1), Some(0), Some(1)];
        let out = check_partial(&VertexColoring::new(2), &g, &labels);
        assert_eq!(out.checked, 4);
        assert_eq!(out.valid, 4);
        assert_eq!(out.skipped, 0);
        assert!(out.violations.is_empty());
        assert!((out.validity_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holes_skip_their_whole_neighborhood() {
        let g = gen::path(5);
        // Vertex 2 has no label: vertices 1, 2, 3 become uncheckable.
        let labels = vec![Some(0usize), Some(1), None, Some(1), Some(0)];
        let out = check_partial(&VertexColoring::new(2), &g, &labels);
        assert_eq!(out.checked, 2);
        assert_eq!(out.valid, 2);
        assert_eq!(out.skipped, 3);
        assert!((out.validity_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn surviving_violations_are_still_caught() {
        let g = gen::path(4);
        // 0–1 conflict survives even though vertex 3 is silent.
        let labels = vec![Some(0usize), Some(0), Some(1), None];
        let out = check_partial(&VertexColoring::new(2), &g, &labels);
        assert_eq!(out.checked, 2);
        assert_eq!(out.valid, 0);
        assert_eq!(out.violations.len(), 2);
        assert!(!out.all_checked_valid());
    }

    #[test]
    fn empty_graph_is_vacuously_valid() {
        let g = gen::path(0);
        let out = check_partial(&VertexColoring::new(2), &g, &[]);
        assert_eq!((out.checked, out.valid, out.skipped), (0, 0, 0));
        assert!((out.validity_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_validate_on_complete_labelings() {
        let g = gen::cycle(6);
        let labeling = Labeling::new(vec![0usize, 1, 0, 1, 0, 1]);
        let problem = VertexColoring::new(2);
        let out = check_complete(&problem, &g, &labeling);
        assert_eq!(out.checked, 6);
        assert_eq!(problem.validate(&g, &labeling).is_ok(), out.valid == 6);
    }
}
