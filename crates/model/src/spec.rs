//! The declarative execution specification.
//!
//! The paper's object of study is one thing — a synchronous LOCAL execution
//! — but PRs 2–4 grew a Cartesian product of entry points around it
//! (`run`/`run_faulty`, six `run_sync*` variants, five `TrialPlan::run*`
//! variants). [`ExecSpec`] collapses the axes into one value: *what faults*,
//! *what budget*, *what trace*, *what advertised parameters*. Every layer of
//! the stack now takes a spec instead of choosing a differently-named
//! function, and composing capabilities is field assignment, not a new API.
//!
//! `ExecSpec::default()` is the fault-free, untraced run under the engine's
//! own budget and parameters — byte-identical to the pre-refactor
//! `Engine::run` path (a golden differential test in the core crate holds
//! this fixed).

use crate::faults::FaultPlan;
use crate::params::GlobalParams;
use crate::recover::Budget;
use local_obs::{MetricSet, Trace};
use std::num::NonZeroUsize;

/// How one simulation executes: fault plan, watchdog budget, trace
/// attachment, and advertised global parameters.
///
/// All fields are `Option`s whose `None` means "keep the engine's own
/// setting", so a spec only states what it overrides. Borrowed fields
/// (`faults`, `trace`) keep the hot path allocation-free: a spec is a few
/// words on the stack, cheap to build per run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecSpec<'a> {
    /// Advertised global parameters (Theorems 3/6/8 pretend the graph is
    /// larger than it is); `None` advertises the engine's.
    pub params: Option<GlobalParams>,
    /// Watchdog budget (rounds, and optionally messages / wall-clock);
    /// `None` runs under the engine's budget.
    pub budget: Option<Budget>,
    /// Fault plan (drops, delays, crash-stop schedule); `None` is the
    /// statically-eliminated no-op plan — the fault-free fast path.
    pub faults: Option<&'a FaultPlan>,
    /// Trace buffer receiving run lifecycle events; `None` traces nothing
    /// (the disabled path is a single branch per sweep).
    pub trace: Option<&'a Trace>,
    /// Metric recorder receiving end-of-run aggregates (rounds, messages,
    /// halt/crash/cut counts, the two engine histograms); `None` records
    /// nothing — like tracing, the disabled path is a single branch.
    pub metrics: Option<&'a MetricSet>,
    /// Number of vertex shards the engine sweeps in parallel; `None` lets the
    /// engine choose (its own setting, or an automatic choice by graph size).
    /// Output is bit-identical across shard counts, so this is purely a
    /// performance/test knob.
    pub shards: Option<NonZeroUsize>,
}

impl<'a> ExecSpec<'a> {
    /// The fault-free, untraced spec under the engine's own settings.
    pub fn new() -> Self {
        ExecSpec::default()
    }

    /// Shorthand for a spec whose only override is a rounds-only [`Budget`].
    pub fn rounds(max_rounds: u32) -> Self {
        ExecSpec::default().with_budget(Budget::rounds(max_rounds))
    }

    /// Advertise `params` instead of the engine's.
    pub fn with_params(mut self, params: GlobalParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Run under `budget` instead of the engine's.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Override only the round axis, keeping any other budget axes already
    /// set on this spec.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        let mut b = self.budget.unwrap_or(Budget::rounds(max_rounds));
        b.max_rounds = max_rounds;
        self.budget = Some(b);
        self
    }

    /// Inject `faults` (drops, delays, crash-stop schedule).
    pub fn with_faults(mut self, faults: &'a FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attach `trace`: the run emits `run_start`, per-sweep `round` events,
    /// end-of-run histograms, and `run_end`.
    pub fn with_trace(mut self, trace: &'a Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// [`with_trace`](Self::with_trace) accepting the `Option` producers
    /// thread around — `None` leaves the spec untraced.
    pub fn traced(mut self, trace: Option<&'a Trace>) -> Self {
        self.trace = trace;
        self
    }

    /// Attach `metrics`: the run records its end-of-run aggregates into the
    /// per-trial recorder.
    pub fn with_metrics(mut self, metrics: &'a MetricSet) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// [`with_metrics`](Self::with_metrics) accepting the `Option` producers
    /// thread around — `None` leaves the spec unmetered.
    pub fn metered(mut self, metrics: Option<&'a MetricSet>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sweep with exactly `shards` vertex shards (clamped to `n` by the
    /// engine). Forces the sharded path even below the engine's automatic
    /// parallelism threshold, which the shard-invariance tests rely on.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(NonZeroUsize::new(shards).expect("shard count must be nonzero"));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_overrides_nothing() {
        let spec = ExecSpec::default();
        assert!(spec.params.is_none());
        assert!(spec.budget.is_none());
        assert!(spec.faults.is_none());
        assert!(spec.trace.is_none());
        assert!(spec.metrics.is_none());
        assert!(spec.shards.is_none());
    }

    #[test]
    fn with_shards_sets_count() {
        let spec = ExecSpec::default().with_shards(4);
        assert_eq!(spec.shards.map(NonZeroUsize::get), Some(4));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn with_shards_rejects_zero() {
        let _ = ExecSpec::default().with_shards(0);
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::none();
        let trace = Trace::new(0);
        let spec = ExecSpec::rounds(7)
            .with_faults(&plan)
            .with_trace(&trace)
            .with_max_rounds(9);
        assert_eq!(spec.budget.unwrap().max_rounds, 9);
        assert!(spec.faults.is_some());
        assert!(spec.trace.is_some());
    }

    #[test]
    fn with_max_rounds_keeps_other_axes() {
        let spec = ExecSpec::default()
            .with_budget(Budget::rounds(5).with_max_messages(10))
            .with_max_rounds(8);
        let b = spec.budget.unwrap();
        assert_eq!(b.max_rounds, 8);
        assert_eq!(b.max_messages, Some(10));
    }

    #[test]
    fn traced_none_is_untraced() {
        let spec = ExecSpec::default().traced(None);
        assert!(spec.trace.is_none());
    }

    #[test]
    fn metered_none_is_unmetered() {
        let spec = ExecSpec::default().metered(None);
        assert!(spec.metrics.is_none());
        let set = MetricSet::new();
        assert!(ExecSpec::default().with_metrics(&set).metrics.is_some());
        assert!(ExecSpec::default().metered(Some(&set)).metrics.is_some());
    }
}
