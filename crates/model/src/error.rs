//! Simulator errors.

use std::error::Error;
use std::fmt;

/// Errors from running a protocol in the round engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Some node had not halted when the round limit was reached.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u32,
        /// How many nodes were still live.
        live_nodes: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit, live_nodes } => write!(
                f,
                "{live_nodes} node(s) still running after the {limit}-round limit"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::RoundLimitExceeded {
            limit: 10,
            live_nodes: 3,
        };
        assert!(e.to_string().contains("10-round"));
        assert!(e.to_string().contains("3 node"));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
