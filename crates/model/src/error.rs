//! Simulator errors.

use std::error::Error;
use std::fmt;

/// Errors from running a protocol in the round engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Some node had not halted when the round limit was reached.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u32,
        /// How many nodes were still live.
        live_nodes: usize,
        /// The first few (≤ [`SimError::LIVE_SAMPLE_CAP`]) live vertex
        /// indices, so a diverging protocol is diagnosable from the error
        /// alone.
        live_sample: Vec<usize>,
    },
}

impl SimError {
    /// Maximum number of live vertex indices recorded in
    /// [`SimError::RoundLimitExceeded`].
    pub const LIVE_SAMPLE_CAP: usize = 8;
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded {
                limit,
                live_nodes,
                live_sample,
            } => {
                write!(
                    f,
                    "{live_nodes} node(s) still running after the {limit}-round limit"
                )?;
                if !live_sample.is_empty() {
                    write!(f, " (live vertices: {live_sample:?}")?;
                    if *live_nodes > live_sample.len() {
                        write!(f, ", …")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_live_sample() {
        let e = SimError::RoundLimitExceeded {
            limit: 10,
            live_nodes: 3,
            live_sample: vec![0, 4, 7],
        };
        assert!(e.to_string().contains("10-round"));
        assert!(e.to_string().contains("3 node"));
        assert!(e.to_string().contains("[0, 4, 7]"));
        assert!(!e.to_string().contains("…"), "sample covers all live nodes");
    }

    #[test]
    fn display_marks_truncated_sample() {
        let e = SimError::RoundLimitExceeded {
            limit: 5,
            live_nodes: 100,
            live_sample: (0..SimError::LIVE_SAMPLE_CAP).collect(),
        };
        assert!(e.to_string().contains('…'));
    }

    #[test]
    fn implements_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
