//! Deterministic fault injection for the round engine.
//!
//! The LOCAL model assumes perfectly synchronous, fault-free rounds; every
//! theorem the repo reproduces leans on that assumption. A [`FaultPlan`]
//! breaks it *on demand and reproducibly*: per-directed-edge message-drop
//! probabilities, a per-node crash-at-round schedule, and an optional
//! one-round message delay, all sampled from the plan's own ChaCha8 streams
//! (split via the engine's `splitmix64` convention). Given the same
//! `(graph, mode, fault_seed)` triple, a faulty run replays bit-identically —
//! including across the engine's sequential and parallel stepping paths,
//! because every fault decision is made on the delivery path, which is
//! single-threaded and ordered by directed-edge slot.
//!
//! Fault semantics (all crash-stop, no Byzantine behavior):
//!
//! * **Drop**: a message sent along directed edge `(v, p)` is discarded with
//!   the slot's drop probability, independently per round.
//! * **Delay**: a surviving message is deferred by one round with probability
//!   `delay_p`. If the sender emits a fresh message on the same port in the
//!   next round, the newer message wins and the delayed one is dropped (each
//!   port buffers at most one message per round in the LOCAL model).
//! * **Crash**: a node with `crash_round = Some(r)` falls silent from sweep
//!   `r` on — it stops stepping, sends nothing, and never halts. Messages it
//!   sent in earlier rounds still deliver.
//!
//! [`Engine::run_faulty`](crate::Engine::run_faulty) consumes a plan and
//! reports per-node [`Outcome`]s with partial outputs instead of the
//! all-or-nothing [`Run`](crate::Run).

use crate::engine::{splitmix64, Run, RunStats};
use crate::error::SimError;
use local_graphs::{Graph, NodeId, PortId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Stream tag for the crash-schedule sampler (split from the fault seed).
const CRASH_STREAM: u64 = 0xC4A5;
/// Stream tag base for per-round drop/delay decisions.
const ROUND_STREAM: u64 = 0xD409;

/// The knobs of a sampled fault plan: how faulty the network should be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability that any given message is dropped (applied independently
    /// per directed edge per round).
    pub drop_p: f64,
    /// Probability that a surviving message is delayed by one round.
    pub delay_p: f64,
    /// Probability that a node crashes at all.
    pub crash_p: f64,
    /// Crashing nodes pick their crash round uniformly from
    /// `0..crash_window` (a node crashing at round 0 never acts).
    pub crash_window: u32,
}

/// Reject a probability outside `[0, 1]` (NaN included) with a message
/// naming the offending knob.
fn checked_probability(knob: &str, p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "{knob}: probability must be in [0, 1], got {p}"
    );
    p
}

impl FaultSpec {
    /// The fault-free specification.
    pub fn none() -> Self {
        FaultSpec {
            drop_p: 0.0,
            delay_p: 0.0,
            crash_p: 0.0,
            crash_window: 0,
        }
    }

    /// Fault-free, then with the given drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = checked_probability("FaultSpec::with_drop", p);
        self
    }

    /// Fault-free, then with the given delay probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_delay(mut self, p: f64) -> Self {
        self.delay_p = checked_probability("FaultSpec::with_delay", p);
        self
    }

    /// Fault-free, then with the given crash probability and window.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_crash(mut self, p: f64, window: u32) -> Self {
        self.crash_p = checked_probability("FaultSpec::with_crash", p);
        self.crash_window = window;
        self
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// A fully materialized, deterministic fault schedule for one graph.
///
/// Construct with [`FaultPlan::none`] (trivial, observably identical to the
/// fault-free engine), [`FaultPlan::sample`] (from a [`FaultSpec`] and a
/// fault seed), or [`FaultPlan::from_crash_schedule`] (explicit crash rounds,
/// for tests).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-directed-edge drop probability, indexed by CSR slot (vertex `v`'s
    /// port `p` is slot `offset(v) + p`). Empty = no drops anywhere.
    drop: Vec<f64>,
    /// Probability a surviving message is deferred one round.
    delay_p: f64,
    /// Per-node crash round. Empty = no crashes anywhere.
    crash_round: Vec<Option<u32>>,
    /// The seed the per-round drop/delay streams are split from.
    seed: u64,
}

impl FaultPlan {
    /// The trivial plan: no drops, no delays, no crashes.
    pub fn none() -> Self {
        FaultPlan {
            drop: Vec::new(),
            delay_p: 0.0,
            crash_round: Vec::new(),
            seed: 0,
        }
    }

    /// Sample a plan for `g` from `spec`, deterministically in `fault_seed`.
    ///
    /// The crash schedule is drawn up front from its own split stream; drop
    /// and delay decisions are drawn later, per round, from per-round split
    /// streams — so the whole fault trace is a pure function of
    /// `(g, spec, fault_seed)`.
    pub fn sample(g: &Graph, spec: &FaultSpec, fault_seed: u64) -> Self {
        let crash_round = if spec.crash_p > 0.0 {
            let mut rng =
                ChaCha8Rng::seed_from_u64(splitmix64(fault_seed ^ splitmix64(CRASH_STREAM)));
            (0..g.n())
                .map(|_| {
                    if rng.gen::<f64>() < spec.crash_p {
                        Some(rng.gen_range(0..u64::from(spec.crash_window.max(1))) as u32)
                    } else {
                        None
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let drop = if spec.drop_p > 0.0 {
            vec![spec.drop_p; g.vertices().map(|v| g.degree(v)).sum()]
        } else {
            Vec::new()
        };
        FaultPlan {
            drop,
            delay_p: spec.delay_p,
            crash_round,
            seed: fault_seed,
        }
    }

    /// A plan with an explicit per-node crash schedule and no message faults.
    pub fn from_crash_schedule(crash_round: Vec<Option<u32>>) -> Self {
        FaultPlan {
            drop: Vec::new(),
            delay_p: 0.0,
            crash_round,
            seed: 0,
        }
    }

    /// Override the drop probability of the single directed edge `(v, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= g.degree(v)`, or if `drop_p` is not in `[0, 1]`
    /// (NaN rejected) — the same contract as the [`FaultSpec`] builders.
    pub fn set_edge_drop(&mut self, g: &Graph, v: NodeId, p: PortId, drop_p: f64) {
        assert!(p < g.degree(v), "port {p} out of range for vertex {v}");
        let drop_p = checked_probability("FaultPlan::set_edge_drop", drop_p);
        let total: usize = g.vertices().map(|u| g.degree(u)).sum();
        if self.drop.is_empty() {
            self.drop = vec![0.0; total];
        }
        let offset: usize = (0..v).map(|u| g.degree(u)).sum();
        self.drop[offset + p] = drop_p;
    }

    /// Whether this plan can never inject a fault (the engine then takes the
    /// plain fault-free paths, so a trivial plan is observably identical to
    /// no plan at all).
    pub fn is_trivial(&self) -> bool {
        !self.has_drops() && !self.has_delays() && !self.has_crashes()
    }

    /// The fault seed the message-fault streams are split from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-node crash schedule (empty if no crashes are planned).
    pub fn crash_schedule(&self) -> &[Option<u32>] {
        &self.crash_round
    }

    /// Set (or clear, with `None`) the crash round of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn set_crash(&mut self, g: &Graph, v: NodeId, round: Option<u32>) {
        assert!(v < g.n(), "vertex {v} out of range (n = {})", g.n());
        if self.crash_round.is_empty() {
            if round.is_none() {
                return;
            }
            self.crash_round = vec![None; g.n()];
        }
        self.crash_round[v] = round;
    }

    /// Number of nodes with a scheduled crash.
    pub fn crash_count(&self) -> usize {
        self.crash_round.iter().filter(|r| r.is_some()).count()
    }

    /// Number of directed-edge slots with a nonzero drop probability.
    pub fn dropped_edge_count(&self) -> usize {
        self.drop.iter().filter(|&&p| p > 0.0).count()
    }

    /// The nonzero per-directed-edge drop probabilities, as
    /// `(CSR slot, probability)` pairs in slot order.
    pub fn edge_drops(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.drop
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(slot, &p)| (slot, p))
    }

    /// The delay probability of this plan.
    pub fn delay_probability(&self) -> f64 {
        self.delay_p
    }

    /// The drop probability of directed-edge `slot` (0.0 when unset).
    pub fn edge_drop(&self, slot: usize) -> f64 {
        self.drop.get(slot).copied().unwrap_or(0.0)
    }

    /// Propose the neighborhood move derived from `move_seed` (see
    /// [`FaultMove::seed`]): a uniformly chosen crash-round set/clear or
    /// directed-edge drop toggle. Crash rounds are drawn from
    /// `0..crash_window.max(1)`. The proposal depends only on
    /// `(g, move_seed, crash_window)` — not on the plan's current state — so
    /// a search trajectory replays exactly from its seed.
    pub fn propose(&self, g: &Graph, move_seed: u64, crash_window: u32) -> FaultMove {
        let total: usize = g.vertices().map(|u| g.degree(u)).sum();
        let r0 = splitmix64(move_seed);
        let r1 = splitmix64(r0);
        let r2 = splitmix64(r1);
        match r0 % 4 {
            0 | 1 => FaultMove::SetCrash {
                v: (r1 % g.n() as u64) as NodeId,
                round: (r2 % u64::from(crash_window.max(1))) as u32,
            },
            2 => FaultMove::ClearCrash {
                v: (r1 % g.n() as u64) as NodeId,
            },
            _ => FaultMove::ToggleDrop {
                slot: (r1 % total.max(1) as u64) as usize,
            },
        }
    }

    /// Apply `mv` to this plan. Drop toggles flip the slot between 0.0 and
    /// 1.0 (adversary plans are hard-fault plans: an edge either always
    /// delivers or never does, which also keeps their JSON artifacts exact).
    ///
    /// # Panics
    ///
    /// Panics if the move's vertex or slot is out of range for `g`.
    pub fn apply(&mut self, g: &Graph, mv: &FaultMove) {
        match *mv {
            FaultMove::SetCrash { v, round } => self.set_crash(g, v, Some(round)),
            FaultMove::ClearCrash { v } => self.set_crash(g, v, None),
            FaultMove::ToggleDrop { slot } => {
                let total: usize = g.vertices().map(|u| g.degree(u)).sum();
                assert!(slot < total, "slot {slot} out of range ({total} ports)");
                if self.drop.is_empty() {
                    self.drop = vec![0.0; total];
                }
                self.drop[slot] = if self.drop[slot] > 0.0 { 0.0 } else { 1.0 };
            }
        }
    }

    pub(crate) fn has_drops(&self) -> bool {
        self.drop.iter().any(|&p| p > 0.0)
    }

    pub(crate) fn has_delays(&self) -> bool {
        self.delay_p > 0.0
    }

    pub(crate) fn has_crashes(&self) -> bool {
        self.crash_round.iter().any(Option::is_some)
    }

    pub(crate) fn drop_p(&self, slot: usize) -> f64 {
        self.drop.get(slot).copied().unwrap_or(0.0)
    }

    pub(crate) fn delay_p(&self) -> f64 {
        self.delay_p
    }

    pub(crate) fn crash_round(&self, v: NodeId) -> Option<u32> {
        self.crash_round.get(v).copied().flatten()
    }

    /// The drop/delay decision stream for the exchange after sweep `round`.
    /// Split per round so the trace is independent of how many messages
    /// earlier rounds carried.
    pub(crate) fn round_rng(&self, round: u32) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(splitmix64(
            self.seed ^ splitmix64(ROUND_STREAM.wrapping_add(u64::from(round))),
        ))
    }
}

/// Stream tag base for adversary-search move seeds.
const MOVE_STREAM: u64 = 0xAD5E;

/// One local move in the adversary-search neighborhood of a [`FaultPlan`].
///
/// Moves are the unit of the worst-case fault search: each search step
/// proposes candidate moves via [`FaultPlan::propose`], scores the mutated
/// plans, and applies the winner with [`FaultPlan::apply`]. A move is plain
/// data, so an accepted trajectory is fully described by
/// `(search_seed, step)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMove {
    /// Schedule (or reschedule) vertex `v` to crash at sweep `round`.
    SetCrash {
        /// The vertex to crash.
        v: NodeId,
        /// The sweep from which it falls silent.
        round: u32,
    },
    /// Remove vertex `v`'s scheduled crash.
    ClearCrash {
        /// The vertex to revive.
        v: NodeId,
    },
    /// Flip directed-edge `slot` between never-drop (0.0) and always-drop
    /// (1.0).
    ToggleDrop {
        /// The CSR slot of the directed edge (vertex `v`'s port `p` is slot
        /// `offset(v) + p`).
        slot: usize,
    },
}

impl FaultMove {
    /// The move seed for step `step` of a search started from `search_seed`,
    /// split with the engine's `splitmix64` convention. Feeding this to
    /// [`FaultPlan::propose`] replays the exact proposal, so a search
    /// trajectory is a pure function of its `(search_seed, step)` sequence.
    pub fn seed(search_seed: u64, step: u64) -> u64 {
        splitmix64(search_seed ^ splitmix64(MOVE_STREAM.wrapping_add(step)))
    }

    /// The tabu attribute this move touches: crash moves key on the vertex,
    /// drop toggles on the slot. A tabu list bans *attributes* for a tenure,
    /// so a just-crashed vertex cannot be immediately revived (and vice
    /// versa), the classic PARTIALCOL-style anti-cycling rule.
    pub fn key(&self) -> u64 {
        match *self {
            FaultMove::SetCrash { v, .. } | FaultMove::ClearCrash { v } => v as u64,
            FaultMove::ToggleDrop { slot } => (1 << 63) | slot as u64,
        }
    }

    /// A short human/trace label, e.g. `crash(v3@r1)`, `revive(v3)`,
    /// `toggle(e17)`.
    pub fn describe(&self) -> String {
        match *self {
            FaultMove::SetCrash { v, round } => format!("crash(v{v}@r{round})"),
            FaultMove::ClearCrash { v } => format!("revive(v{v})"),
            FaultMove::ToggleDrop { slot } => format!("toggle(e{slot})"),
        }
    }
}

impl serde::Serialize for FaultMove {
    fn to_value(&self) -> serde::Value {
        let (kind, fields) = match *self {
            FaultMove::SetCrash { v, round } => (
                "set_crash",
                vec![
                    ("v".to_string(), serde::Value::U64(v as u64)),
                    ("round".to_string(), serde::Value::U64(u64::from(round))),
                ],
            ),
            FaultMove::ClearCrash { v } => (
                "clear_crash",
                vec![("v".to_string(), serde::Value::U64(v as u64))],
            ),
            FaultMove::ToggleDrop { slot } => (
                "toggle_drop",
                vec![("slot".to_string(), serde::Value::U64(slot as u64))],
            ),
        };
        let mut entries = vec![("move".to_string(), serde::Value::String(kind.to_string()))];
        entries.extend(fields);
        serde::Value::Object(entries)
    }
}

impl serde::Deserialize for FaultMove {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let kind = String::from_value(v.field("move")?)?;
        match kind.as_str() {
            "set_crash" => Ok(FaultMove::SetCrash {
                v: usize::from_value(v.field("v")?)?,
                round: u32::from_value(v.field("round")?)?,
            }),
            "clear_crash" => Ok(FaultMove::ClearCrash {
                v: usize::from_value(v.field("v")?)?,
            }),
            "toggle_drop" => Ok(FaultMove::ToggleDrop {
                slot: usize::from_value(v.field("slot")?)?,
            }),
            other => Err(serde::DeError(format!("unknown fault move `{other}`"))),
        }
    }
}

// Hand-written (the derive macro covers plain structs, not private-field
// invariants we want to keep): a plan serializes to a flat object whose
// `drop` entries are exact under the JSON writer when they are the
// adversary's 0.0/1.0 hard faults, so pinned artifacts round-trip
// byte-for-byte.
impl serde::Serialize for FaultPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("drop".to_string(), self.drop.to_value()),
            ("delay_p".to_string(), self.delay_p.to_value()),
            ("crash_round".to_string(), self.crash_round.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl serde::Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(FaultPlan {
            drop: Vec::<f64>::from_value(v.field("drop")?)?,
            delay_p: f64::from_value(v.field("delay_p")?)?,
            crash_round: Vec::<Option<u32>>::from_value(v.field("crash_round")?)?,
            seed: u64::from_value(v.field("seed")?)?,
        })
    }
}

/// The fate of one node in a faulty run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<O> {
    /// The node halted normally with an output.
    Halted {
        /// The round in which it halted.
        round: u32,
        /// Its output.
        output: O,
    },
    /// The node crashed (fell permanently silent) before halting.
    Crashed {
        /// The sweep from which it stopped participating.
        round: u32,
    },
    /// The node was still live when the sweep budget cut the run.
    Cut,
}

impl<O> Outcome<O> {
    /// The output, if the node halted.
    pub fn output(&self) -> Option<&O> {
        match self {
            Outcome::Halted { output, .. } => Some(output),
            _ => None,
        }
    }

    /// Whether the node halted normally.
    pub fn is_halted(&self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }

    /// Whether the node crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }

    /// Whether the node was cut by the sweep budget.
    pub fn is_cut(&self) -> bool {
        matches!(self, Outcome::Cut)
    }
}

/// The result of a crash-tolerant run: per-node outcomes with partial
/// outputs, never an error — a run that exhausts its sweep budget degrades
/// to [`Outcome::Cut`] entries instead of failing wholesale.
#[derive(Debug, Clone)]
pub struct FaultyRun<O> {
    /// Per-vertex fates, indexed by vertex.
    pub outcomes: Vec<Outcome<O>>,
    /// Maximum halting round over the nodes that did halt (0 if none).
    pub rounds: u32,
    /// Message and sweep counters (crashed nodes' pre-crash messages
    /// included).
    pub stats: RunStats,
    /// Messages discarded by drop faults (including delayed messages
    /// superseded by a fresher one on the same port).
    pub dropped: u64,
    /// Messages deferred by one round.
    pub delayed: u64,
    /// Which budget axis cut the run, if any ([`Outcome::Cut`] entries exist
    /// only when this is `Some`).
    pub breach: Option<crate::recover::Breach>,
}

impl<O> FaultyRun<O> {
    /// Number of nodes that halted normally.
    pub fn halted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_halted()).count()
    }

    /// Number of nodes that crashed.
    pub fn crashed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_crashed()).count()
    }

    /// Number of nodes cut by the sweep budget.
    pub fn cut(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_cut()).count()
    }

    /// Per-vertex outputs for the halted nodes, `None` elsewhere — the shape
    /// partial LCL validation consumes.
    pub fn partial_outputs(&self) -> Vec<Option<&O>> {
        self.outcomes.iter().map(Outcome::output).collect()
    }

    /// Collapse into the strict all-or-nothing [`Run`] shape: every node
    /// must have halted with an output.
    ///
    /// `limit` is the round budget reported on the error (callers know which
    /// budget they ran under; the run itself only records the breach axis).
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if any node was cut by the budget.
    ///
    /// # Panics
    ///
    /// If a node crashed: crash-stop outcomes have no strict-run equivalent,
    /// so converting a run executed under a crashing fault plan is a logic
    /// error.
    pub fn into_run(self, limit: u32) -> Result<Run<O>, SimError> {
        let cut = self.cut();
        if cut > 0 {
            return Err(SimError::RoundLimitExceeded {
                limit,
                live_nodes: cut,
                live_sample: self
                    .outcomes
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_cut())
                    .map(|(v, _)| v)
                    .take(SimError::LIVE_SAMPLE_CAP)
                    .collect(),
            });
        }
        let mut outputs = Vec::with_capacity(self.outcomes.len());
        let mut halt_rounds = Vec::with_capacity(self.outcomes.len());
        for outcome in self.outcomes {
            let (r, o) = match outcome {
                Outcome::Halted { round, output } => (round, output),
                _ => panic!("into_run on a run with crashed nodes"),
            };
            halt_rounds.push(r);
            outputs.push(o);
        }
        Ok(Run {
            outputs,
            rounds: self.rounds,
            halt_rounds,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use serde::{Deserialize, Serialize};

    #[test]
    fn trivial_plans_are_trivial() {
        assert!(FaultPlan::none().is_trivial());
        let g = gen::cycle(5);
        assert!(FaultPlan::sample(&g, &FaultSpec::none(), 7).is_trivial());
        assert!(FaultPlan::from_crash_schedule(vec![None; 5]).is_trivial());
        assert!(!FaultPlan::from_crash_schedule(vec![None, Some(2)]).is_trivial());
        assert!(!FaultPlan::sample(&g, &FaultSpec::none().with_drop(0.5), 7).is_trivial());
        assert!(!FaultPlan::sample(&g, &FaultSpec::none().with_delay(0.5), 7).is_trivial());
    }

    #[test]
    fn probability_boundaries_are_accepted() {
        let spec = FaultSpec::none()
            .with_drop(0.0)
            .with_delay(1.0)
            .with_crash(0.5, 4);
        assert_eq!(spec.drop_p, 0.0);
        assert_eq!(spec.delay_p, 1.0);
        assert_eq!(spec.crash_p, 0.5);
        assert_eq!(FaultSpec::none().with_drop(1.0).drop_p, 1.0);
        assert_eq!(FaultSpec::none().with_crash(0.0, 0).crash_p, 0.0);
    }

    #[test]
    #[should_panic(expected = "with_drop: probability must be in [0, 1]")]
    fn negative_drop_probability_panics() {
        let _ = FaultSpec::none().with_drop(-0.1);
    }

    #[test]
    #[should_panic(expected = "with_delay: probability must be in [0, 1]")]
    fn oversized_delay_probability_panics() {
        let _ = FaultSpec::none().with_delay(1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "with_crash: probability must be in [0, 1]")]
    fn nan_crash_probability_panics() {
        let _ = FaultSpec::none().with_crash(f64::NAN, 5);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let g = gen::cycle(64);
        let spec = FaultSpec {
            drop_p: 0.1,
            delay_p: 0.05,
            crash_p: 0.3,
            crash_window: 10,
        };
        let a = FaultPlan::sample(&g, &spec, 42);
        let b = FaultPlan::sample(&g, &spec, 42);
        let c = FaultPlan::sample(&g, &spec, 43);
        assert_eq!(a, b);
        assert_ne!(a.crash_schedule(), c.crash_schedule());
        assert!(a.has_crashes());
        assert!(a.crash_schedule().iter().flatten().all(|&r| r < 10));
    }

    #[test]
    fn edge_drop_overrides_one_slot() {
        let g = gen::path(3); // degrees 1, 2, 1 → slots 0..4
        let mut plan = FaultPlan::none();
        plan.set_edge_drop(&g, 1, 1, 0.75);
        assert_eq!(plan.drop_p(0), 0.0);
        assert_eq!(plan.drop_p(2), 0.75);
        assert!(plan.has_drops());
    }

    #[test]
    #[should_panic(expected = "FaultPlan::set_edge_drop: probability must be in [0, 1]")]
    fn negative_edge_drop_panics() {
        let g = gen::path(3);
        let mut plan = FaultPlan::none();
        plan.set_edge_drop(&g, 1, 0, -0.25);
    }

    #[test]
    #[should_panic(expected = "FaultPlan::set_edge_drop: probability must be in [0, 1]")]
    fn oversized_edge_drop_panics() {
        let g = gen::path(3);
        let mut plan = FaultPlan::none();
        plan.set_edge_drop(&g, 1, 0, 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "FaultPlan::set_edge_drop: probability must be in [0, 1]")]
    fn nan_edge_drop_panics() {
        let g = gen::path(3);
        let mut plan = FaultPlan::none();
        plan.set_edge_drop(&g, 1, 0, f64::NAN);
    }

    #[test]
    fn edge_drop_boundaries_are_accepted() {
        let g = gen::path(3);
        let mut plan = FaultPlan::none();
        plan.set_edge_drop(&g, 0, 0, 0.0);
        plan.set_edge_drop(&g, 2, 0, 1.0);
        assert_eq!(plan.drop_p(3), 1.0);
        assert!(!plan.is_trivial());
    }

    #[test]
    fn set_crash_and_counts() {
        let g = gen::cycle(5);
        let mut plan = FaultPlan::none();
        plan.set_crash(&g, 3, None); // clearing a crash on the empty plan is a no-op
        assert!(plan.is_trivial());
        plan.set_crash(&g, 3, Some(2));
        plan.set_crash(&g, 0, Some(0));
        assert_eq!(plan.crash_count(), 2);
        assert_eq!(plan.crash_schedule()[3], Some(2));
        plan.set_crash(&g, 3, None);
        assert_eq!(plan.crash_count(), 1);
    }

    #[test]
    fn move_proposals_replay_from_seed() {
        let g = gen::cycle(8);
        let plan = FaultPlan::none();
        for step in 0..64 {
            let seed = FaultMove::seed(99, step);
            assert_eq!(plan.propose(&g, seed, 4), plan.propose(&g, seed, 4));
        }
        // Different steps should not all collapse to one move.
        let moves: std::collections::BTreeSet<String> = (0..64)
            .map(|s| plan.propose(&g, FaultMove::seed(99, s), 4).describe())
            .collect();
        assert!(moves.len() > 8, "degenerate neighborhood: {moves:?}");
    }

    #[test]
    fn proposals_stay_in_range() {
        let g = gen::path(4); // 6 directed slots
        let plan = FaultPlan::none();
        let mut checked = plan.clone();
        for step in 0..256 {
            let mv = plan.propose(&g, FaultMove::seed(7, step), 3);
            match mv {
                FaultMove::SetCrash { v, round } => {
                    assert!(v < g.n());
                    assert!(round < 3);
                }
                FaultMove::ClearCrash { v } => assert!(v < g.n()),
                FaultMove::ToggleDrop { slot } => assert!(slot < 6),
            }
            checked.apply(&g, &mv); // must never panic for in-range moves
        }
    }

    #[test]
    fn toggle_drop_flips_between_hard_faults() {
        let g = gen::path(3);
        let mut plan = FaultPlan::none();
        let mv = FaultMove::ToggleDrop { slot: 2 };
        plan.apply(&g, &mv);
        assert_eq!(plan.drop_p(2), 1.0);
        plan.apply(&g, &mv);
        assert_eq!(plan.drop_p(2), 0.0);
        // Toggling a sampled soft fault lands on 0.0 first.
        let mut soft = FaultPlan::sample(&g, &FaultSpec::none().with_drop(0.3), 1);
        soft.apply(&g, &mv);
        assert_eq!(soft.drop_p(2), 0.0);
    }

    #[test]
    fn move_keys_distinguish_attributes() {
        let crash = FaultMove::SetCrash { v: 5, round: 1 };
        let revive = FaultMove::ClearCrash { v: 5 };
        let toggle = FaultMove::ToggleDrop { slot: 5 };
        assert_eq!(crash.key(), revive.key());
        assert_ne!(crash.key(), toggle.key());
        assert_ne!(toggle.key(), FaultMove::ToggleDrop { slot: 6 }.key());
    }

    #[test]
    fn fault_move_serde_round_trips() {
        for mv in [
            FaultMove::SetCrash { v: 3, round: 2 },
            FaultMove::ClearCrash { v: 0 },
            FaultMove::ToggleDrop { slot: 17 },
        ] {
            let back = FaultMove::from_value(&mv.to_value()).unwrap();
            assert_eq!(mv, back);
        }
        assert!(FaultMove::from_value(&serde::Value::Object(vec![(
            "move".to_string(),
            serde::Value::String("warp".to_string()),
        )]))
        .is_err());
    }

    #[test]
    fn fault_plan_serde_round_trips() {
        let g = gen::cycle(6);
        let mut plan = FaultPlan::sample(&g, &FaultSpec::none().with_crash(0.5, 4), 11);
        plan.apply(&g, &FaultMove::ToggleDrop { slot: 4 });
        plan.set_crash(&g, 2, Some(0));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Hard-fault plans must survive a second trip byte-for-byte: the
        // pinned-artifact replay gate depends on this.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn round_streams_differ_by_round_and_seed() {
        use rand::RngCore;
        let plan = FaultPlan {
            drop: vec![0.5],
            delay_p: 0.0,
            crash_round: Vec::new(),
            seed: 9,
        };
        let mut other = plan.clone();
        other.seed = 10;
        assert_ne!(plan.round_rng(0).next_u64(), plan.round_rng(1).next_u64());
        assert_ne!(plan.round_rng(0).next_u64(), other.round_rng(0).next_u64());
        assert_eq!(plan.round_rng(3).next_u64(), plan.round_rng(3).next_u64());
    }

    #[test]
    fn outcome_accessors() {
        let h: Outcome<u32> = Outcome::Halted {
            round: 3,
            output: 7,
        };
        assert!(h.is_halted());
        assert_eq!(h.output(), Some(&7));
        let c: Outcome<u32> = Outcome::Crashed { round: 1 };
        assert!(c.is_crashed());
        assert_eq!(c.output(), None);
        let cut: Outcome<u32> = Outcome::Cut;
        assert!(cut.is_cut());
        let run = FaultyRun {
            outcomes: vec![h, c, cut],
            rounds: 3,
            stats: RunStats {
                messages_sent: 0,
                sweeps: 4,
                live_per_round: vec![3, 2, 1, 1],
                messages_per_round: vec![0, 0, 0, 0],
            },
            dropped: 0,
            delayed: 0,
            breach: Some(crate::recover::Breach::Rounds),
        };
        assert_eq!(run.halted(), 1);
        assert_eq!(run.crashed(), 1);
        assert_eq!(run.cut(), 1);
        assert_eq!(run.partial_outputs(), vec![Some(&7), None, None]);
    }
}
