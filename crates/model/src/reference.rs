//! A deliberately simple baseline engine for differential testing.
//!
//! [`run_reference`] executes a protocol with per-node `Vec` inboxes and
//! outboxes allocated every sweep and messages *cloned* on delivery — the
//! straightforward implementation the arena engine ([`crate::Engine`])
//! replaced. It is kept (sequential only, no parallel path) so property
//! tests and benchmarks can check that the optimized message plane is
//! observably equivalent: same outputs, same halt rounds, same
//! `messages_sent`, same sweep count, for any protocol and seed.

use crate::engine::{splitmix64, Mode, Run, RunStats};
use crate::error::SimError;
use crate::node::{Action, NodeInit, NodeIo, NodeProgram, Protocol};
use crate::params::GlobalParams;
use local_graphs::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Run `protocol` on `g` under `mode` with the baseline message plane.
///
/// Semantics (round numbering, halting, message accounting, round limit,
/// RNG derivation) match [`crate::Engine::run`] exactly; only the internal
/// data layout differs.
///
/// # Errors
///
/// [`SimError::RoundLimitExceeded`] if live nodes remain after `max_rounds`
/// sweeps.
pub fn run_reference<P>(
    g: &Graph,
    mode: &Mode,
    protocol: &P,
    params: &GlobalParams,
    max_rounds: u32,
) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError>
where
    P: Protocol,
{
    let n = g.n();
    let ids: Option<Vec<u64>> = match mode {
        Mode::Deterministic { ids } => Some(ids.assign(g)),
        Mode::Randomized { .. } => None,
    };
    let seed = match mode {
        Mode::Randomized { seed } => Some(*seed),
        Mode::Deterministic { .. } => None,
    };

    struct RefSlot<N, M, O> {
        state: N,
        rng: Option<ChaCha8Rng>,
        id: Option<u64>,
        out: Vec<Option<M>>,
        done: Option<(u32, O)>,
        sent: u64,
    }
    type SlotsOf<P> = Vec<
        RefSlot<
            <P as Protocol>::Node,
            <<P as Protocol>::Node as NodeProgram>::Msg,
            <<P as Protocol>::Node as NodeProgram>::Output,
        >,
    >;

    let mut slots: SlotsOf<P> = (0..n)
        .map(|v| {
            let id = ids.as_ref().map(|ids| ids[v]);
            let init = NodeInit {
                node: v,
                degree: g.degree(v),
                id,
                params,
            };
            RefSlot {
                state: protocol.create(&init),
                rng: seed
                    .map(|s| ChaCha8Rng::seed_from_u64(splitmix64(s ^ splitmix64(v as u64 + 1)))),
                id,
                out: Vec::new(),
                done: None,
                sent: 0,
            }
        })
        .collect();

    let mut live = n;
    let mut sweep: u32 = 0;
    let mut live_per_round: Vec<usize> = Vec::new();
    let mut messages_per_round: Vec<u64> = Vec::new();
    let mut prev_out: Vec<Vec<Option<<P::Node as NodeProgram>::Msg>>> = Vec::new();

    while live > 0 {
        if sweep >= max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: max_rounds,
                live_nodes: live,
                live_sample: slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.done.is_none())
                    .map(|(v, _)| v)
                    .take(SimError::LIVE_SAMPLE_CAP)
                    .collect(),
            });
        }
        live_per_round.push(live);
        messages_per_round.push(0);
        prev_out.clear();
        prev_out.extend(slots.iter_mut().map(|s| std::mem::take(&mut s.out)));
        let round = sweep;

        for (v, slot) in slots.iter_mut().enumerate() {
            if slot.done.is_some() {
                continue;
            }
            let deg = g.degree(v);
            let inbox: Vec<Option<<P::Node as NodeProgram>::Msg>> = if round == 0 {
                (0..deg).map(|_| None).collect()
            } else {
                g.neighbors(v)
                    .iter()
                    .map(|nb| {
                        prev_out
                            .get(nb.node)
                            .and_then(|o| o.get(nb.back_port))
                            .cloned()
                            .flatten()
                    })
                    .collect()
            };
            let mut out: Vec<Option<<P::Node as NodeProgram>::Msg>> =
                (0..deg).map(|_| None).collect();
            let action = {
                let mut io = NodeIo {
                    degree: deg,
                    id: slot.id,
                    params,
                    inbox: &inbox,
                    outbox: &mut out,
                    rng: slot.rng.as_mut(),
                };
                slot.state.step(round, &mut io)
            };
            let sent_now = out.iter().filter(|m| m.is_some()).count() as u64;
            slot.sent += sent_now;
            *messages_per_round.last_mut().expect("pushed this sweep") += sent_now;
            slot.out = out;
            if let Action::Halt(o) = action {
                slot.done = Some((round, o));
            }
        }

        live = slots.iter().filter(|s| s.done.is_none()).count();
        sweep += 1;
    }

    let mut outputs = Vec::with_capacity(n);
    let mut halt_rounds = Vec::with_capacity(n);
    let mut rounds = 0;
    let mut messages_sent = 0u64;
    for slot in slots {
        messages_sent += slot.sent;
        let (r, o) = slot.done.expect("loop exits only when all halted");
        rounds = rounds.max(r);
        halt_rounds.push(r);
        outputs.push(o);
    }
    Ok(Run {
        outputs,
        rounds,
        halt_rounds,
        stats: RunStats {
            messages_sent,
            sweeps: sweep,
            live_per_round,
            messages_per_round,
        },
    })
}
