//! The synchronous round engine.

use crate::faults::{FaultPlan, FaultyRun, Outcome};
use crate::ids::IdAssignment;
use crate::node::{Action, NodeInit, NodeIo, NodeProgram, Protocol};
use crate::params::GlobalParams;
use crate::recover::{Breach, Budget};
use crate::spec::ExecSpec;
use local_graphs::Graph;
use local_obs::{EventData, MetricId, MetricSet, PowHistogram, Trace};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{DeError, Deserialize, Serialize, Value};

/// Which of the paper's two models a run executes under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// DetLOCAL: unique IDs, no randomness.
    Deterministic {
        /// How the unique IDs are assigned.
        ids: IdAssignment,
    },
    /// RandLOCAL: anonymous vertices, private per-node randomness derived
    /// from the seed.
    Randomized {
        /// Master seed; per-node streams are split from it.
        seed: u64,
    },
}

impl Mode {
    /// DetLOCAL with sequential IDs.
    pub fn deterministic() -> Self {
        Mode::Deterministic {
            ids: IdAssignment::Sequential,
        }
    }

    /// DetLOCAL with the given ID assignment.
    pub fn deterministic_with(ids: IdAssignment) -> Self {
        Mode::Deterministic { ids }
    }

    /// RandLOCAL with the given master seed.
    pub fn randomized(seed: u64) -> Self {
        Mode::Randomized { seed }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Total messages sent across all rounds.
    pub messages_sent: u64,
    /// Number of engine sweeps executed (≥ `rounds`).
    pub sweeps: u32,
    /// How many nodes were still live *entering* each sweep — the progress
    /// curve of the protocol (length = `sweeps`).
    pub live_per_round: Vec<usize>,
    /// Messages sent during each sweep — the per-round twin of
    /// `live_per_round` (length = `sweeps`; sums to `messages_sent`).
    pub messages_per_round: Vec<u64>,
}

// Hand-written so records serialized before `messages_per_round` existed
// (e.g. old checkpoint files) still decode: the field defaults to empty.
impl Serialize for RunStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("messages_sent".into(), self.messages_sent.to_value()),
            ("sweeps".into(), self.sweeps.to_value()),
            ("live_per_round".into(), self.live_per_round.to_value()),
            (
                "messages_per_round".into(),
                self.messages_per_round.to_value(),
            ),
        ])
    }
}

impl Deserialize for RunStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(RunStats {
            messages_sent: u64::from_value(v.field("messages_sent")?)?,
            sweeps: u32::from_value(v.field("sweeps")?)?,
            live_per_round: Vec::from_value(v.field("live_per_round")?)?,
            messages_per_round: match v.get("messages_per_round") {
                Some(x) => Vec::from_value(x)?,
                None => Vec::new(),
            },
        })
    }
}

/// The result of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct Run<O> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<O>,
    /// Round complexity: the maximum number of communication rounds any
    /// vertex consumed before halting.
    pub rounds: u32,
    /// Per-vertex halting rounds.
    pub halt_rounds: Vec<u32>,
    /// Message and sweep counters.
    pub stats: RunStats,
}

/// SplitMix64 finalizer — used to derive independent per-node seeds from the
/// master seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-vertex engine state, struct-of-arrays.
///
/// Earlier revisions kept one slot struct per vertex with an inline
/// `Option<ChaCha8Rng>`; in DetLOCAL mode that padded every vertex with a
/// dead ~136-byte RNG payload the sweep still had to stride over. Columns
/// keep each access pattern dense — the sweep walks `states`/`done`/`sent`
/// sequentially, and `rngs` is *empty* (not `None`-filled) when the mode is
/// deterministic — and they split cleanly into per-shard sub-slices.
struct NodeColumns<N: NodeProgram> {
    states: Vec<N>,
    /// Per-node RNG streams; empty in DetLOCAL mode.
    rngs: Vec<ChaCha8Rng>,
    done: Vec<Option<(u32, N::Output)>>,
    sent: Vec<u64>,
}

/// Vertex boundaries cutting `0..n` into `k` shards balanced by *directed
/// edge slots* (each shard owns ≈ `total/k` outbox slots), so a hub-heavy
/// prefix doesn't starve the other shards. Falls back to an even vertex
/// split on edgeless graphs. Boundaries are monotone; empty shards are legal.
fn shard_bounds(offsets: &[usize], k: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0usize);
    for s in 1..k {
        let b = if total == 0 {
            n * s / k
        } else {
            // First vertex whose starting slot reaches the s-th slot quantile.
            offsets.partition_point(|&o| o < total * s / k)
        };
        bounds.push(b.max(bounds[s - 1]).min(n));
    }
    bounds.push(n);
    bounds
}

/// Step the vertices of `range` for one sweep. All column and arena slices
/// are shard-relative: columns start at `range.start`, message arenas at
/// `offsets[range.start]`. `crashed` is global (and empty when the plan has
/// no crashes). Returns `(messages sent, nodes halted)` for the chunk.
///
/// This is the one stepping routine — the serial path calls it over `0..n`
/// and each shard worker over its own cut, so the two orders are
/// bit-identical by construction: every node reads only its own inbox
/// segment and pre-seeded RNG stream, and writes only its own column cells
/// and outbox segment.
#[allow(clippy::too_many_arguments)]
fn step_span<N: NodeProgram>(
    round: u32,
    range: std::ops::Range<usize>,
    offsets: &[usize],
    params: &GlobalParams,
    ids: Option<&[u64]>,
    crashed: &[bool],
    has_crashes: bool,
    states: &mut [N],
    rngs: &mut [ChaCha8Rng],
    done: &mut [Option<(u32, N::Output)>],
    sent: &mut [u64],
    inbox: &[Option<N::Msg>],
    out: &mut [Option<N::Msg>],
) -> (u64, u64) {
    let base = offsets[range.start];
    let randomized = !rngs.is_empty();
    let mut sent_total = 0u64;
    let mut halts = 0u64;
    for (i, v) in range.enumerate() {
        if done[i].is_some() || (has_crashes && crashed[v]) {
            continue;
        }
        let (o0, o1) = (offsets[v] - base, offsets[v + 1] - base);
        let action = {
            let mut io = NodeIo {
                degree: o1 - o0,
                id: ids.map(|ids| ids[v]),
                params,
                inbox: &inbox[o0..o1],
                outbox: &mut out[o0..o1],
                rng: if randomized { Some(&mut rngs[i]) } else { None },
            };
            states[i].step(round, &mut io)
        };
        let sent_now = out[o0..o1].iter().filter(|m| m.is_some()).count() as u64;
        sent[i] += sent_now;
        sent_total += sent_now;
        if let Action::Halt(o) = action {
            done[i] = Some((round, o));
            halts += 1;
        }
    }
    (sent_total, halts)
}

/// The CSR-indexed double-buffered message plane.
///
/// One slot per *directed* edge, laid out by the adjacency structure: the
/// outbox of vertex `v` is the contiguous segment
/// `offsets[v] .. offsets[v + 1]`, one slot per port. Two flat buffers play
/// complementary roles each sweep: nodes write sends into `out`, read
/// receives from `inbox`, and between sweeps every sent message is *moved*
/// (never cloned) to its receiver slot. Because the directed edge `(v, p)`
/// and its reverse `(u, q)` (where `u` is the neighbor of `v` on port `p`
/// and `q` the back port) occupy partner slots, delivery is the fixed
/// permutation `inbox[i] = out[partner[i]].take()` — the `take` doubles as
/// the clear of the out buffer, so after setup the plane never allocates.
struct MessagePlane<'g, M> {
    /// CSR offsets, borrowed straight from the graph's adjacency: vertex `v`
    /// owns slots `offsets[v] .. offsets[v + 1]`.
    offsets: &'g [usize],
    /// `partner[offsets[v] + p] = offsets[u] + q` for the reverse edge.
    partner: Vec<usize>,
    /// Receive buffer: after delivery, `v`'s inbox by port.
    inbox: Vec<Option<M>>,
    /// Send buffer: `v`'s outbox by port, all `None` between deliveries.
    out: Vec<Option<M>>,
    /// Messages deferred one round by delay faults (allocated only when the
    /// fault plan can delay).
    delayed: Vec<Option<M>>,
}

impl<'g, M> MessagePlane<'g, M> {
    fn new(g: &'g Graph) -> Self {
        let n = g.n();
        let offsets = g.csr_offsets();
        let total = offsets[n];
        let mut partner = vec![0usize; total];
        for v in 0..n {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                partner[offsets[v] + p] = offsets[nb.node] + nb.back_port;
            }
        }
        MessagePlane {
            offsets,
            partner,
            inbox: (0..total).map(|_| None).collect(),
            out: (0..total).map(|_| None).collect(),
            delayed: Vec::new(),
        }
    }

    /// Move every message sent this sweep to its receiver's inbox slot (and
    /// drop the now-consumed previous inbox). Leaves `out` all `None`.
    fn deliver(&mut self) {
        for (i, &j) in self.partner.iter().enumerate() {
            self.inbox[i] = self.out[j].take();
        }
    }

    /// [`deliver`](Self::deliver) through the fault plan: each sent message
    /// may be dropped or deferred one round, per the plan's per-round
    /// decision stream. `round` is the sweep that produced the messages.
    ///
    /// Runs single-threaded in ascending slot order, so the fault trace is a
    /// pure function of `(plan, round, message pattern)` — identical whether
    /// the nodes were stepped sequentially or in parallel.
    fn deliver_faulty(
        &mut self,
        plan: &FaultPlan,
        round: u32,
        dropped: &mut u64,
        delayed: &mut u64,
    ) {
        let drops = plan.has_drops();
        let delays = plan.has_delays();
        if !drops && !delays {
            self.deliver();
            return;
        }
        if delays && self.delayed.is_empty() {
            self.delayed = (0..self.partner.len()).map(|_| None).collect();
        }
        let mut rng = plan.round_rng(round);
        for (i, &j) in self.partner.iter().enumerate() {
            // A message delayed from the previous exchange arrives now,
            // unless a fresher on-time message supersedes it below.
            let mut incoming = if delays { self.delayed[i].take() } else { None };
            if let Some(m) = self.out[j].take() {
                if drops && rng.gen::<f64>() < plan.drop_p(j) {
                    *dropped += 1;
                } else if delays && rng.gen::<f64>() < plan.delay_p() {
                    self.delayed[i] = Some(m);
                    *delayed += 1;
                } else {
                    if incoming.is_some() {
                        *dropped += 1; // superseded delayed message
                    }
                    incoming = Some(m);
                }
            }
            self.inbox[i] = incoming;
        }
    }
}

/// Runs a [`Protocol`] on a graph under a [`Mode`], counting rounds.
///
/// Node steps within a sweep are independent (they read only the previous
/// exchange's messages), so the engine cuts the vertex set into contiguous
/// shards stepped on scoped threads for large graphs; results are
/// bit-identical to sequential execution — and invariant across shard
/// counts — because every node's randomness comes from its own pre-seeded
/// stream, nodes write only their own column cells and outbox segment, and
/// each inbox slot has exactly one writer per exchange.
#[derive(Debug)]
pub struct Engine<'g> {
    graph: &'g Graph,
    mode: Mode,
    params: GlobalParams,
    budget: Budget,
    par_threshold: usize,
    shards: Option<std::num::NonZeroUsize>,
    trace: Option<&'g Trace>,
}

/// Below this many vertices the engine steps nodes sequentially (thread
/// spawn overhead dominates otherwise).
const PAR_THRESHOLD: usize = 2048;

impl<'g> Engine<'g> {
    /// Engine for `graph` under `mode`, advertising the graph's true
    /// parameters, with a default round limit of `100_000`.
    pub fn new(graph: &'g Graph, mode: Mode) -> Self {
        Engine {
            graph,
            mode,
            params: GlobalParams::from_graph(graph),
            budget: Budget::rounds(100_000),
            par_threshold: PAR_THRESHOLD,
            shards: None,
            trace: None,
        }
    }

    /// Sweep with exactly `shards` vertex shards (clamped to `n`), even below
    /// the automatic parallelism threshold. Output is bit-identical across
    /// shard counts; a spec-level [`ExecSpec::with_shards`] wins over this.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards =
            Some(std::num::NonZeroUsize::new(shards).expect("shard count must be nonzero"));
        self
    }

    /// Attach a trace buffer: the run emits `run_start`, one `round` event
    /// per sweep, end-of-run histograms (messages per vertex, halt rounds),
    /// and `run_end`. Without a trace the per-sweep cost is one branch on
    /// this `Option` — no allocation, no virtual call.
    pub fn with_trace(mut self, trace: &'g Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Override the vertex count above which nodes are stepped on scoped
    /// threads. Exposed so tests can force the parallel path on small graphs;
    /// results are bit-identical either way.
    #[doc(hidden)]
    pub fn with_par_threshold(mut self, par_threshold: usize) -> Self {
        self.par_threshold = par_threshold.max(1);
        self
    }

    /// Override the advertised global parameters (Theorems 3/6/8 pretend the
    /// graph is much larger than it is).
    pub fn with_params(mut self, params: GlobalParams) -> Self {
        self.params = params;
        self
    }

    /// Override the round limit after which [`SimError::RoundLimitExceeded`]
    /// is returned. Shorthand for [`with_budget`](Self::with_budget) with a
    /// rounds-only [`Budget`].
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.budget.max_rounds = max_rounds;
        self
    }

    /// Replace the full watchdog [`Budget`] (rounds, and optionally total
    /// messages and wall-clock time). A faulty run that breaches any axis is
    /// cut, with the [`Breach`] recorded on the [`FaultyRun`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The parameters this engine advertises to nodes.
    pub fn params(&self) -> &GlobalParams {
        &self.params
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Run `protocol` as described by `spec` — the single execution path.
    ///
    /// Every node gets an [`Outcome`](crate::faults::Outcome) — `Halted`
    /// with its output, `Crashed` at its scheduled round, or `Cut` if it was
    /// still live when the budget ran out. A spec field left `None` falls
    /// back to the engine's own setting (builder methods remain for
    /// engine-lifetime configuration); the fault-free case runs the no-op
    /// plan, whose drop/delay/crash branches all constant-fold away, so the
    /// hot loop stays allocation-free at bench parity.
    ///
    /// With no fault plan (or a trivial one, [`FaultPlan::is_trivial`]) the
    /// result is observably identical to the faulty path: same outputs, halt
    /// rounds, message counts, and sweep counts (a property test enforces
    /// it). [`FaultyRun::into_run`] recovers the strict all-or-nothing
    /// [`Run`] shape.
    pub fn execute<P>(
        &self,
        spec: &ExecSpec<'_>,
        protocol: &P,
    ) -> FaultyRun<<P::Node as NodeProgram>::Output>
    where
        P: Protocol + Sync,
    {
        let no_faults;
        let faults = match spec.faults {
            Some(f) => f,
            None => {
                // `FaultPlan::none()` holds empty vectors — constructing it
                // per run allocates nothing.
                no_faults = FaultPlan::none();
                &no_faults
            }
        };
        self.execute_inner(
            protocol,
            spec.params.as_ref().unwrap_or(&self.params),
            spec.budget.as_ref().unwrap_or(&self.budget),
            faults,
            spec.trace.or(self.trace),
            spec.metrics,
            spec.shards,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_inner<P>(
        &self,
        protocol: &P,
        params: &GlobalParams,
        budget: &Budget,
        faults: &FaultPlan,
        trace: Option<&Trace>,
        metrics: Option<&MetricSet>,
        spec_shards: Option<std::num::NonZeroUsize>,
    ) -> FaultyRun<<P::Node as NodeProgram>::Output>
    where
        P: Protocol + Sync,
    {
        let g = self.graph;
        let n = g.n();
        let ids: Option<Vec<u64>> = match &self.mode {
            Mode::Deterministic { ids } => Some(ids.assign(g)),
            Mode::Randomized { .. } => None,
        };
        let seed = match &self.mode {
            Mode::Randomized { seed } => Some(*seed),
            Mode::Deterministic { .. } => None,
        };

        let mut states: Vec<P::Node> = Vec::with_capacity(n);
        let mut rngs: Vec<ChaCha8Rng> = Vec::with_capacity(if seed.is_some() { n } else { 0 });
        for v in 0..n {
            let id = ids.as_ref().map(|ids| ids[v]);
            let init = NodeInit {
                node: v,
                degree: g.degree(v),
                id,
                params,
            };
            states.push(protocol.create(&init));
            if let Some(s) = seed {
                rngs.push(ChaCha8Rng::seed_from_u64(splitmix64(
                    s ^ splitmix64(v as u64 + 1),
                )));
            }
        }
        let mut cols: NodeColumns<P::Node> = NodeColumns {
            states,
            rngs,
            done: (0..n).map(|_| None).collect(),
            sent: vec![0u64; n],
        };

        // An explicitly requested shard count (spec beats engine builder)
        // forces the sharded path even on tiny graphs — the invariance tests
        // rely on that; otherwise shard only past the parallelism threshold.
        let shards = match spec_shards.or(self.shards) {
            Some(k) => k.get().min(n.max(1)),
            None if n >= self.par_threshold => std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(n),
            None => 1,
        };
        let bounds = if shards > 1 {
            shard_bounds(g.csr_offsets(), shards)
        } else {
            Vec::new()
        };
        // Without drops or delays every shard can deliver its own inbox as
        // soon as its own stepping is done (it only takes from its own out
        // segment), exporting cross-shard messages for the serial drain.
        let eager = !faults.has_drops() && !faults.has_delays();

        let has_crashes = faults.has_crashes();
        let mut crashed: Vec<bool> = vec![false; if has_crashes { n } else { 0 }];
        // Crash schedule, flattened and sorted by (round, vertex): the sweep
        // loop consumes it with a cursor instead of re-scanning every vertex
        // each round. Same order as the old per-vertex scan.
        let crash_events: Vec<(u32, usize)> = if has_crashes {
            let mut ev: Vec<(u32, usize)> = (0..n)
                .filter_map(|v| faults.crash_round(v).map(|r| (r, v)))
                .collect();
            ev.sort_unstable();
            ev
        } else {
            Vec::new()
        };
        let mut crash_cursor = 0usize;
        let mut halted_total = 0usize;
        let mut crashed_total = 0usize;
        let mut plane: MessagePlane<'_, <P::Node as NodeProgram>::Msg> = MessagePlane::new(g);
        let mut sweep: u32 = 0;
        let mut breach: Option<Breach> = None;
        let mut dropped = 0u64;
        let mut delayed = 0u64;
        let mut live_per_round: Vec<usize> = Vec::new();
        let mut messages_per_round: Vec<u64> = Vec::new();
        let mut messages_total = 0u64;
        let started = budget.wall_clock.map(|_| std::time::Instant::now());

        if let Some(tr) = trace {
            tr.emit(EventData::RunStart {
                n: n as u64,
                m: g.m() as u64,
                mode: match &self.mode {
                    Mode::Deterministic { .. } => "det",
                    Mode::Randomized { .. } => "rand",
                }
                .to_string(),
                max_rounds: budget.max_rounds,
            });
        }

        loop {
            // Crash-stop: nodes scheduled for this sweep fall silent before
            // stepping (their earlier messages were already delivered).
            let mut crashes_now = 0u64;
            while crash_cursor < crash_events.len() && crash_events[crash_cursor].0 == sweep {
                let v = crash_events[crash_cursor].1;
                crash_cursor += 1;
                if cols.done[v].is_none() {
                    crashed[v] = true;
                    crashed_total += 1;
                    crashes_now += 1;
                }
            }
            // Halted and crashed node sets are disjoint (a node only crashes
            // while not yet done), so liveness is pure counter arithmetic —
            // no per-sweep O(n) scans.
            let live = n - halted_total - crashed_total;
            if live == 0 {
                break;
            }
            if sweep >= budget.max_rounds {
                breach = Some(Breach::Rounds);
                break;
            }
            if let (Some(limit), Some(started)) = (budget.wall_clock, started) {
                if started.elapsed() > limit {
                    breach = Some(Breach::WallClock);
                    break;
                }
            }
            live_per_round.push(live);
            let round = sweep;
            let offsets = plane.offsets;
            let ids_ref = ids.as_deref();
            let crashed_ref = &crashed[..];

            let mut delivered_eagerly = false;
            let (sweep_sent, sweep_halts) = if shards == 1 {
                step_span(
                    round,
                    0..n,
                    offsets,
                    params,
                    ids_ref,
                    crashed_ref,
                    has_crashes,
                    &mut cols.states,
                    &mut cols.rngs,
                    &mut cols.done,
                    &mut cols.sent,
                    &plane.inbox,
                    &mut plane.out,
                )
            } else {
                // Each shard steps its own vertex cut against its own column
                // and arena sub-slices; when `eager`, it then delivers its
                // own inbox (taking only from its own out segment) and
                // exports cross-shard messages. Every inbox slot has exactly
                // one writer per phase, so the result is bit-identical to the
                // serial order regardless of shard count or thread timing.
                let partner = &plane.partner[..];
                let randomized = !cols.rngs.is_empty();
                let (sent, halts, xfers) = std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(shards);
                    let mut states_rest = cols.states.as_mut_slice();
                    let mut rngs_rest = cols.rngs.as_mut_slice();
                    let mut done_rest = cols.done.as_mut_slice();
                    let mut sent_rest = cols.sent.as_mut_slice();
                    let mut out_rest = plane.out.as_mut_slice();
                    let mut inbox_rest = plane.inbox.as_mut_slice();
                    for s in 0..shards {
                        let (start, end) = (bounds[s], bounds[s + 1]);
                        let len = end - start;
                        let (states_chunk, r) = states_rest.split_at_mut(len);
                        states_rest = r;
                        let (rngs_chunk, r) =
                            rngs_rest.split_at_mut(if randomized { len } else { 0 });
                        rngs_rest = r;
                        let (done_chunk, r) = done_rest.split_at_mut(len);
                        done_rest = r;
                        let (sent_chunk, r) = sent_rest.split_at_mut(len);
                        sent_rest = r;
                        let slots_len = offsets[end] - offsets[start];
                        let (out_chunk, r) = out_rest.split_at_mut(slots_len);
                        out_rest = r;
                        let (inbox_chunk, r) = inbox_rest.split_at_mut(slots_len);
                        inbox_rest = r;
                        handles.push(scope.spawn(move || {
                            let (base, end_off) = (offsets[start], offsets[end]);
                            let (sent, halts) = step_span(
                                round,
                                start..end,
                                offsets,
                                params,
                                ids_ref,
                                crashed_ref,
                                has_crashes,
                                states_chunk,
                                rngs_chunk,
                                done_chunk,
                                sent_chunk,
                                inbox_chunk,
                                out_chunk,
                            );
                            let mut xfer: Vec<(usize, <P::Node as NodeProgram>::Msg)> = Vec::new();
                            if eager {
                                // Intra-shard delivery: this shard's out
                                // segment is final once its stepping is done,
                                // so no barrier is needed before taking from
                                // it. Foreign-partner slots get `None` now
                                // and their message (if any) in the drain.
                                for li in 0..inbox_chunk.len() {
                                    let j = partner[base + li];
                                    inbox_chunk[li] = if j >= base && j < end_off {
                                        out_chunk[j - base].take()
                                    } else {
                                        None
                                    };
                                }
                                // Whatever survives in `out` has a foreign
                                // partner (delivery is an involution): export
                                // it with its destination inbox slot.
                                for lj in 0..out_chunk.len() {
                                    if let Some(m) = out_chunk[lj].take() {
                                        xfer.push((partner[base + lj], m));
                                    }
                                }
                            }
                            (sent, halts, xfer)
                        }));
                    }
                    let mut sent = 0u64;
                    let mut halts = 0u64;
                    let mut xfers = Vec::with_capacity(shards);
                    for h in handles {
                        match h.join() {
                            Ok((s, hl, x)) => {
                                sent += s;
                                halts += hl;
                                xfers.push(x);
                            }
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                    (sent, halts, xfers)
                });
                if eager {
                    // Serial drain of cross-shard messages: each inbox slot
                    // is written at most once (its unique sender), so order
                    // does not matter and the result is deterministic.
                    for (i, m) in xfers.into_iter().flatten() {
                        plane.inbox[i] = Some(m);
                    }
                    delivered_eagerly = true;
                }
                (sent, halts)
            };

            messages_per_round.push(sweep_sent);
            messages_total += sweep_sent;
            halted_total += sweep_halts as usize;
            let still = live - sweep_halts as usize;
            sweep += 1;
            let dropped_before = dropped;
            let delayed_before = delayed;
            let mut message_breach = false;
            if still > 0 {
                if let Some(max_messages) = budget.max_messages {
                    if messages_total > max_messages {
                        breach = Some(Breach::Messages);
                        message_breach = true;
                    }
                }
                if !message_breach && !delivered_eagerly {
                    plane.deliver_faulty(faults, round, &mut dropped, &mut delayed);
                }
            }
            if let Some(tr) = trace {
                tr.emit(EventData::Round {
                    round,
                    live: live as u64,
                    messages: sweep_sent,
                    halts: sweep_halts,
                    crashes: crashes_now,
                    dropped: dropped - dropped_before,
                    delayed: delayed - delayed_before,
                    messages_total,
                });
            }
            if message_breach {
                break;
            }
        }

        let mut outcomes = Vec::with_capacity(n);
        let mut rounds = 0;
        let mut messages_sent = 0u64;
        let observed = trace.is_some() || metrics.is_some();
        let mut messages_hist = observed.then(PowHistogram::new);
        let mut halt_hist = observed.then(PowHistogram::new);
        for (v, (done, sent)) in cols.done.into_iter().zip(cols.sent).enumerate() {
            messages_sent += sent;
            if let Some(h) = messages_hist.as_mut() {
                h.record(sent);
            }
            outcomes.push(match done {
                Some((r, o)) => {
                    rounds = rounds.max(r);
                    if let Some(h) = halt_hist.as_mut() {
                        h.record(u64::from(r));
                    }
                    Outcome::Halted {
                        round: r,
                        output: o,
                    }
                }
                None if has_crashes && crashed[v] => Outcome::Crashed {
                    round: faults.crash_round(v).expect("crashed nodes are scheduled"),
                },
                None => {
                    debug_assert!(breach.is_some(), "live nodes only survive a budget cut");
                    Outcome::Cut
                }
            });
        }
        let fr = FaultyRun {
            outcomes,
            rounds,
            stats: RunStats {
                messages_sent,
                sweeps: sweep,
                live_per_round,
                messages_per_round,
            },
            dropped,
            delayed,
            breach,
        };
        if let Some(ms) = metrics {
            ms.incr(MetricId::EngineRuns);
            ms.add(MetricId::EngineRounds, u64::from(fr.rounds));
            ms.add(MetricId::EngineSweeps, u64::from(fr.stats.sweeps));
            ms.add(MetricId::EngineMessages, fr.stats.messages_sent);
            ms.add(MetricId::EngineHalted, fr.halted() as u64);
            ms.add(MetricId::EngineCrashed, fr.crashed() as u64);
            ms.add(MetricId::EngineCut, fr.cut() as u64);
            ms.add(MetricId::EngineDropped, fr.dropped);
            ms.add(MetricId::EngineDelayed, fr.delayed);
            for (hist, id) in [
                (&messages_hist, MetricId::EngineMessagesPerVertex),
                (&halt_hist, MetricId::EngineHaltRound),
            ] {
                for (bin, count) in hist.iter().flat_map(PowHistogram::nonzero) {
                    ms.observe_n(id, PowHistogram::bin_bounds(bin).0, count);
                }
            }
        }
        if let Some(tr) = trace {
            tr.emit(EventData::Histogram {
                name: "messages_per_vertex".into(),
                hist: Box::new(messages_hist.unwrap_or_default()),
            });
            tr.emit(EventData::Histogram {
                name: "halt_round".into(),
                hist: Box::new(halt_hist.unwrap_or_default()),
            });
            tr.emit(EventData::RunEnd {
                rounds: fr.rounds,
                sweeps: fr.stats.sweeps,
                messages: fr.stats.messages_sent,
                halted: fr.halted() as u64,
                crashed: fr.crashed() as u64,
                cut: fr.cut() as u64,
                breach: fr.breach.as_ref().map(|b| b.to_string()),
            });
        }
        fr
    }
}

/// Derive a fresh RNG for auxiliary (non-node) randomness from a master seed
/// and a stream tag. Exposed so algorithm crates can split seeds the same way
/// the engine does.
pub fn derived_rng(seed: u64, tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(tag.wrapping_add(0xABCD))))
}

/// Convenience: draw a uniform `u64` from a derived stream (used for ID
/// generation in RandLOCAL algorithms).
pub fn derived_u64(seed: u64, tag: u64) -> u64 {
    derived_rng(seed, tag).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::faults::FaultSpec;
    use local_graphs::gen;

    /// Chainable test sugar over the single real entry point,
    /// [`Engine::execute`]: the strict fault-free shape (what `run` was) and
    /// the faulty shape (what `run_faulty` was).
    trait Exec {
        fn exec<P: Protocol + Sync>(
            &self,
            protocol: &P,
        ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError>;
        fn exec_faulty<P: Protocol + Sync>(
            &self,
            protocol: &P,
            faults: &FaultPlan,
        ) -> FaultyRun<<P::Node as NodeProgram>::Output>;
    }

    impl Exec for Engine<'_> {
        fn exec<P: Protocol + Sync>(
            &self,
            protocol: &P,
        ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError> {
            self.execute(&ExecSpec::default(), protocol)
                .into_run(self.budget.max_rounds)
        }
        fn exec_faulty<P: Protocol + Sync>(
            &self,
            protocol: &P,
            faults: &FaultPlan,
        ) -> FaultyRun<<P::Node as NodeProgram>::Output> {
            self.execute(&ExecSpec::default().with_faults(faults), protocol)
        }
    }

    #[test]
    fn spec_overrides_engine_settings() {
        // A spec budget wins over the engine's; a spec trace attaches
        // without the builder.
        let g = gen::path(3);
        let engine = Engine::new(&g, Mode::deterministic());
        let fr = engine.execute(&ExecSpec::rounds(4), &ForeverProtocol);
        assert_eq!(fr.stats.sweeps, 4);
        assert_eq!(fr.breach, Some(Breach::Rounds));

        let trace = Trace::new(3);
        let spec = ExecSpec::default().with_trace(&trace);
        engine.execute(&spec, &FloodMinProtocol);
        let events = trace.into_events();
        assert_eq!(events.first().map(|e| e.data.tag()), Some("run_start"));
        assert_eq!(events.last().map(|e| e.data.tag()), Some("run_end"));

        // FloodMin's horizon comes from the advertised n: a claimed n of 64
        // stretches the halt to round 64 on a 3-path.
        let params = GlobalParams::from_graph(&g).with_claimed_n(64);
        let fr = engine.execute(&ExecSpec::default().with_params(params), &FloodMinProtocol);
        assert_eq!(fr.halted(), 3);
        assert_eq!(fr.rounds, 64);
    }

    /// Flood the minimum ID: halts after `horizon = n` rounds, by which
    /// point the minimum has reached every vertex.
    struct FloodMin {
        current: u64,
        horizon: u32,
    }
    impl NodeProgram for FloodMin {
        type Msg = u64;
        type Output = u64;
        fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
            if round == 0 {
                io.broadcast(self.current);
                return Action::Continue;
            }
            for (_, &m) in io.received() {
                self.current = self.current.min(m);
            }
            if round >= self.horizon {
                Action::Halt(self.current)
            } else {
                io.broadcast(self.current);
                Action::Continue
            }
        }
    }
    struct FloodMinProtocol;
    impl Protocol for FloodMinProtocol {
        type Node = FloodMin;
        fn create(&self, init: &NodeInit<'_>) -> FloodMin {
            FloodMin {
                current: init.id.expect("DetLOCAL test"),
                horizon: init
                    .params
                    .round_horizon(0)
                    .expect("test n fits the round counter"),
            }
        }
    }

    #[test]
    fn flood_min_agrees_on_minimum() {
        let g = gen::cycle(11);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&FloodMinProtocol)
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 0));
        assert_eq!(run.rounds, 11);
        assert!(run.stats.messages_sent > 0);
    }

    #[test]
    fn flood_min_with_shuffled_ids() {
        let g = gen::path(9);
        let run = Engine::new(
            &g,
            Mode::deterministic_with(IdAssignment::Shuffled { seed: 3 }),
        )
        .exec(&FloodMinProtocol)
        .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 0));
    }

    /// Zero-round protocol: output the degree immediately.
    struct Immediate;
    impl NodeProgram for Immediate {
        type Msg = ();
        type Output = usize;
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<usize> {
            Action::Halt(io.degree())
        }
    }
    struct ImmediateProtocol;
    impl Protocol for ImmediateProtocol {
        type Node = Immediate;
        fn create(&self, _init: &NodeInit<'_>) -> Immediate {
            Immediate
        }
    }

    #[test]
    fn zero_round_protocol_reports_zero_rounds() {
        let g = gen::star(6);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.rounds, 0);
        assert_eq!(run.outputs[0], 5);
        assert_eq!(run.outputs[3], 1);
        assert_eq!(run.stats.messages_sent, 0);
    }

    /// Never halts — must trip the round limit.
    struct Forever;
    impl NodeProgram for Forever {
        type Msg = ();
        type Output = ();
        fn step(&mut self, _round: u32, _io: &mut NodeIo<'_, ()>) -> Action<()> {
            Action::Continue
        }
    }
    struct ForeverProtocol;
    impl Protocol for ForeverProtocol {
        type Node = Forever;
        fn create(&self, _init: &NodeInit<'_>) -> Forever {
            Forever
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = gen::path(3);
        let err = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(10)
            .exec(&ForeverProtocol)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 10,
                live_nodes: 3,
                live_sample: vec![0, 1, 2],
            }
        );
    }

    /// Halts every node at a fixed round, to probe the limit boundary.
    struct HaltAt {
        round: u32,
    }
    impl NodeProgram for HaltAt {
        type Msg = ();
        type Output = u32;
        fn step(&mut self, round: u32, _io: &mut NodeIo<'_, ()>) -> Action<u32> {
            if round >= self.round {
                Action::Halt(round)
            } else {
                Action::Continue
            }
        }
    }
    struct HaltAtProtocol(u32);
    impl Protocol for HaltAtProtocol {
        type Node = HaltAt;
        fn create(&self, _init: &NodeInit<'_>) -> HaltAt {
            HaltAt { round: self.0 }
        }
    }

    #[test]
    fn round_limit_boundary_allows_exactly_max_rounds_sweeps() {
        // A protocol halting everyone at round `max_rounds - 1` consumes
        // exactly `max_rounds` sweeps (sweeps 0 .. max_rounds - 1): allowed.
        let g = gen::path(4);
        let run = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(5)
            .exec(&HaltAtProtocol(4))
            .unwrap();
        assert_eq!(run.stats.sweeps, 5);
        assert_eq!(run.rounds, 4);

        // One round later would need a sixth sweep: the limit must trip, and
        // never let a sweep past `max_rounds` execute.
        let err = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(5)
            .exec(&HaltAtProtocol(5))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                limit: 5,
                live_nodes: 4,
                live_sample: vec![0, 1, 2, 3],
            }
        );
    }

    /// RandLOCAL: each node outputs one random u64 with no communication.
    struct RandOut;
    impl NodeProgram for RandOut {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<u64> {
            assert!(io.id().is_none(), "RandLOCAL nodes must be anonymous");
            let x = io.rng().next_u64();
            Action::Halt(x)
        }
    }
    struct RandProtocol;
    impl Protocol for RandProtocol {
        type Node = RandOut;
        fn create(&self, init: &NodeInit<'_>) -> RandOut {
            assert!(init.id.is_none());
            RandOut
        }
    }

    #[test]
    fn randomized_mode_is_seeded_and_distinct() {
        let g = gen::cycle(16);
        let a = Engine::new(&g, Mode::randomized(42))
            .exec(&RandProtocol)
            .unwrap();
        let b = Engine::new(&g, Mode::randomized(42))
            .exec(&RandProtocol)
            .unwrap();
        let c = Engine::new(&g, Mode::randomized(43))
            .exec(&RandProtocol)
            .unwrap();
        assert_eq!(a.outputs, b.outputs, "same seed, same outputs");
        assert_ne!(a.outputs, c.outputs, "different seed, different outputs");
        let distinct: std::collections::HashSet<_> = a.outputs.iter().collect();
        assert_eq!(distinct.len(), 16, "node streams must be independent");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // A graph larger than PAR_THRESHOLD exercises the rayon path; the
        // same protocol on a small graph exercises the sequential path. Both
        // must be reproducible under the same seed.
        let g = gen::cycle(PAR_THRESHOLD + 10);
        let a = Engine::new(&g, Mode::randomized(7))
            .exec(&RandProtocol)
            .unwrap();
        let b = Engine::new(&g, Mode::randomized(7))
            .exec(&RandProtocol)
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn halt_rounds_are_per_node() {
        let g = gen::star(5);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.halt_rounds, vec![0; 5]);
    }

    #[test]
    fn claimed_params_reach_nodes() {
        struct ParamCheck;
        impl NodeProgram for ParamCheck {
            type Msg = ();
            type Output = u64;
            fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<u64> {
                Action::Halt(io.params().n)
            }
        }
        struct ParamProtocol;
        impl Protocol for ParamProtocol {
            type Node = ParamCheck;
            fn create(&self, _init: &NodeInit<'_>) -> ParamCheck {
                ParamCheck
            }
        }
        let g = gen::path(3);
        let params = GlobalParams::from_graph(&g).with_claimed_n(1 << 30);
        let run = Engine::new(&g, Mode::deterministic())
            .with_params(params)
            .exec(&ParamProtocol)
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 1 << 30));
    }

    #[test]
    fn live_per_round_traces_progress() {
        let g = gen::star(6);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.stats.live_per_round, vec![6]);
        let g = gen::cycle(5);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&FloodMinProtocol)
            .unwrap();
        assert_eq!(run.stats.live_per_round.len() as u32, run.stats.sweeps);
        assert_eq!(run.stats.live_per_round[0], 5);
        // Monotonically non-increasing.
        for w in run.stats.live_per_round.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn crashed_nodes_fall_silent_and_report_crashed() {
        // FloodMin on a path; crash the minimum-ID endpoint before it ever
        // speaks. Its 0 can then never reach the far end.
        let g = gen::path(5);
        let plan = FaultPlan::from_crash_schedule(vec![Some(0), None, None, None, None]);
        let run = Engine::new(&g, Mode::deterministic()).exec_faulty(&FloodMinProtocol, &plan);
        assert!(run.outcomes[0].is_crashed());
        assert_eq!(run.crashed(), 1);
        assert_eq!(run.halted(), 4);
        assert_eq!(run.cut(), 0);
        // Survivors agree on the minimum of the *surviving* IDs.
        for v in 1..5 {
            assert_eq!(run.outcomes[v].output(), Some(&1));
        }
        let partial = run.partial_outputs();
        assert_eq!(partial[0], None);
        assert_eq!(partial[1], Some(&1));
    }

    #[test]
    fn late_crash_preserves_earlier_messages() {
        // Crash vertex 0 at round 2: its round-0/1 broadcasts still deliver,
        // so the minimum 0 has already propagated 2 hops by then.
        let g = gen::path(3);
        let plan = FaultPlan::from_crash_schedule(vec![Some(2), None, None]);
        let run = Engine::new(&g, Mode::deterministic()).exec_faulty(&FloodMinProtocol, &plan);
        assert!(run.outcomes[0].is_crashed());
        assert_eq!(run.outcomes[1].output(), Some(&0));
        assert_eq!(run.outcomes[2].output(), Some(&0));
    }

    #[test]
    fn budget_exhaustion_cuts_instead_of_erroring() {
        let g = gen::path(3);
        let run = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(10)
            .exec_faulty(&ForeverProtocol, &FaultPlan::none());
        assert_eq!(run.cut(), 3);
        assert_eq!(run.halted(), 0);
        assert_eq!(run.stats.sweeps, 10);
        assert!(run.outcomes.iter().all(Outcome::is_cut));
    }

    #[test]
    fn budget_breach_kind_is_recorded() {
        let g = gen::path(3);
        let run = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(10)
            .exec_faulty(&ForeverProtocol, &FaultPlan::none());
        assert_eq!(run.breach, Some(Breach::Rounds));
        let run = Engine::new(&g, Mode::deterministic())
            .exec_faulty(&FloodMinProtocol, &FaultPlan::none());
        assert_eq!(run.breach, None);
    }

    #[test]
    fn message_budget_cuts_a_chatty_run() {
        // FloodMin on a cycle sends 2 messages per node per sweep; a cap of
        // 10 is breached after the first sweep (12 sent > 10).
        let g = gen::cycle(6);
        let run = Engine::new(&g, Mode::deterministic())
            .with_budget(Budget::rounds(100).with_max_messages(10))
            .exec_faulty(&FloodMinProtocol, &FaultPlan::none());
        assert_eq!(run.breach, Some(Breach::Messages));
        assert_eq!(run.cut(), 6);
        assert_eq!(run.stats.sweeps, 1);
        // A generous cap never trips.
        let run = Engine::new(&g, Mode::deterministic())
            .with_budget(Budget::rounds(100).with_max_messages(1_000_000))
            .exec_faulty(&FloodMinProtocol, &FaultPlan::none());
        assert_eq!(run.breach, None);
        assert_eq!(run.halted(), 6);
    }

    #[test]
    fn message_budget_spares_a_run_that_finishes_on_the_cap_sweep() {
        // Immediate halting sends nothing: even a zero cap cannot breach.
        let g = gen::star(4);
        let run = Engine::new(&g, Mode::deterministic())
            .with_budget(Budget::rounds(10).with_max_messages(0))
            .exec_faulty(&ImmediateProtocol, &FaultPlan::none());
        assert_eq!(run.breach, None);
        assert_eq!(run.halted(), 4);
    }

    #[test]
    fn wall_clock_budget_cuts_a_diverging_run() {
        let g = gen::path(3);
        let run = Engine::new(&g, Mode::deterministic())
            .with_budget(Budget::rounds(u32::MAX).with_wall_clock(std::time::Duration::ZERO))
            .exec_faulty(&ForeverProtocol, &FaultPlan::none());
        assert_eq!(run.breach, Some(Breach::WallClock));
        assert_eq!(run.cut(), 3);
    }

    #[test]
    fn certain_drop_blocks_all_messages() {
        // Drop probability 1 on every directed edge: FloodMin still halts at
        // its horizon but no value ever crosses an edge, so every vertex
        // keeps its own ID.
        let g = gen::cycle(6);
        let plan = FaultPlan::sample(&g, &FaultSpec::none().with_drop(1.0), 3);
        let run = Engine::new(&g, Mode::deterministic()).exec_faulty(&FloodMinProtocol, &plan);
        assert_eq!(run.halted(), 6);
        assert!(run.dropped > 0);
        for (v, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.output(), Some(&(v as u64)));
        }
    }

    #[test]
    fn certain_delay_defers_by_one_round() {
        // Echo once: vertex sends its ID at round 0 and reads at rounds ≥ 1.
        struct EchoOnce;
        impl NodeProgram for EchoOnce {
            type Msg = u64;
            type Output = (u32, u64);
            fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<(u32, u64)> {
                if round == 0 {
                    io.broadcast(io.id().expect("det"));
                    return Action::Continue;
                }
                match io.received().next().map(|(_, &m)| m) {
                    Some(m) => Action::Halt((round, m)),
                    None => Action::Continue,
                }
            }
        }
        struct EchoOnceProtocol;
        impl Protocol for EchoOnceProtocol {
            type Node = EchoOnce;
            fn create(&self, _init: &NodeInit<'_>) -> EchoOnce {
                EchoOnce
            }
        }
        let g = gen::path(2);
        let plan = FaultPlan::sample(&g, &FaultSpec::none().with_delay(1.0), 5);
        let run = Engine::new(&g, Mode::deterministic()).exec_faulty(&EchoOnceProtocol, &plan);
        assert_eq!(run.halted(), 2);
        assert_eq!(run.delayed, 2);
        // The round-0 messages arrive one round late: heard at round 2.
        assert_eq!(run.outcomes[0].output(), Some(&(2, 1)));
        assert_eq!(run.outcomes[1].output(), Some(&(2, 0)));
    }

    #[test]
    fn faulty_run_with_trivial_plan_matches_run() {
        let g = gen::cycle(9);
        let run = Engine::new(&g, Mode::randomized(5))
            .exec(&RandProtocol)
            .unwrap();
        let faulty =
            Engine::new(&g, Mode::randomized(5)).exec_faulty(&RandProtocol, &FaultPlan::none());
        assert_eq!(faulty.halted(), 9);
        assert_eq!(faulty.dropped, 0);
        assert_eq!(faulty.delayed, 0);
        let outputs: Vec<u64> = faulty
            .outcomes
            .iter()
            .map(|o| *o.output().expect("halted"))
            .collect();
        assert_eq!(outputs, run.outputs);
        assert_eq!(faulty.stats, run.stats);
    }

    #[test]
    fn messages_per_round_sums_to_messages_sent() {
        let g = gen::cycle(7);
        let run = Engine::new(&g, Mode::deterministic())
            .exec(&FloodMinProtocol)
            .unwrap();
        assert_eq!(
            run.stats.messages_per_round.len() as u32,
            run.stats.sweeps,
            "one entry per sweep"
        );
        assert_eq!(
            run.stats.messages_per_round.iter().sum::<u64>(),
            run.stats.messages_sent
        );
        // FloodMin on a cycle broadcasts on both ports every non-final sweep.
        assert_eq!(run.stats.messages_per_round[0], 14);
    }

    #[test]
    fn run_stats_decode_tolerates_records_without_messages_per_round() {
        // A record written before `messages_per_round` existed (old
        // checkpoint files) must still decode, defaulting to empty.
        let old = Value::Object(vec![
            ("messages_sent".into(), Value::U64(6)),
            ("sweeps".into(), Value::U64(2)),
            (
                "live_per_round".into(),
                Value::Array(vec![Value::U64(3), Value::U64(3)]),
            ),
        ]);
        let stats = RunStats::from_value(&old).unwrap();
        assert_eq!(stats.messages_sent, 6);
        assert_eq!(stats.sweeps, 2);
        assert_eq!(stats.messages_per_round, Vec::<u64>::new());
        // A current record round-trips with the field intact.
        let current = RunStats {
            messages_sent: 6,
            sweeps: 2,
            live_per_round: vec![3, 3],
            messages_per_round: vec![4, 2],
        };
        assert_eq!(RunStats::from_value(&current.to_value()).unwrap(), current);
    }

    #[test]
    fn trace_records_run_lifecycle() {
        let g = gen::cycle(5);
        let trace = Trace::new(7);
        let run = Engine::new(&g, Mode::deterministic())
            .with_trace(&trace)
            .exec(&FloodMinProtocol)
            .unwrap();
        let events = trace.into_events();
        assert!(events.iter().all(|e| e.trial == 7));
        assert_eq!(events.first().map(|e| e.data.tag()), Some("run_start"));
        assert_eq!(events.last().map(|e| e.data.tag()), Some("run_end"));
        let rounds = events.iter().filter(|e| e.data.tag() == "round").count();
        assert_eq!(rounds as u32, run.stats.sweeps);
        let hists: Vec<&str> = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Histogram { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(hists, ["messages_per_vertex", "halt_round"]);
        match &events[1].data {
            EventData::Round {
                round,
                live,
                messages,
                messages_total,
                ..
            } => {
                assert_eq!(*round, 0);
                assert_eq!(*live, 5);
                assert_eq!(*messages, 10);
                assert_eq!(*messages_total, 10);
            }
            other => panic!("expected round event, got {other:?}"),
        }
        match &events[events.len() - 1].data {
            EventData::RunEnd {
                halted,
                cut,
                breach,
                messages,
                ..
            } => {
                assert_eq!(*halted, 5);
                assert_eq!(*cut, 0);
                assert_eq!(*breach, None);
                assert_eq!(*messages, run.stats.messages_sent);
            }
            other => panic!("expected run_end event, got {other:?}"),
        }
    }

    #[test]
    fn trace_is_identical_across_par_thresholds() {
        // Same run, sequential vs forced-parallel stepping: the event stream
        // must match bit for bit (engine events carry no wall-clock fields).
        let g = gen::cycle(64);
        let seq = Trace::new(0);
        Engine::new(&g, Mode::deterministic())
            .with_trace(&seq)
            .exec(&FloodMinProtocol)
            .unwrap();
        let par = Trace::new(0);
        Engine::new(&g, Mode::deterministic())
            .with_par_threshold(1)
            .with_trace(&par)
            .exec(&FloodMinProtocol)
            .unwrap();
        assert_eq!(seq.into_events(), par.into_events());
    }

    #[test]
    fn trace_counts_crashes_and_budget_cuts() {
        let g = gen::path(5);
        let trace = Trace::new(0);
        let plan = FaultPlan::from_crash_schedule(vec![Some(1), None, None, None, None]);
        Engine::new(&g, Mode::deterministic())
            .with_trace(&trace)
            .exec_faulty(&FloodMinProtocol, &plan);
        let events = trace.into_events();
        let crashes: u64 = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Round { crashes, .. } => Some(*crashes),
                _ => None,
            })
            .sum();
        assert_eq!(crashes, 1);
        match &events.last().unwrap().data {
            EventData::RunEnd {
                crashed, halted, ..
            } => {
                assert_eq!(*crashed, 1);
                assert_eq!(*halted, 4);
            }
            other => panic!("expected run_end, got {other:?}"),
        }

        let trace = Trace::new(0);
        Engine::new(&g, Mode::deterministic())
            .with_max_rounds(3)
            .with_trace(&trace)
            .exec_faulty(&ForeverProtocol, &FaultPlan::none());
        let events = trace.into_events();
        match &events.last().unwrap().data {
            EventData::RunEnd { cut, breach, .. } => {
                assert_eq!(*cut, 5);
                assert_eq!(breach.as_deref(), Some("round budget"));
            }
            other => panic!("expected run_end, got {other:?}"),
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let g = gen::cycle(30);
        let base = Engine::new(&g, Mode::deterministic())
            .exec(&FloodMinProtocol)
            .unwrap();
        for k in [1usize, 2, 3, 8, 64] {
            let run = Engine::new(&g, Mode::deterministic())
                .execute(&ExecSpec::default().with_shards(k), &FloodMinProtocol)
                .into_run(100_000)
                .unwrap();
            assert_eq!(run.outputs, base.outputs, "shards = {k}");
            assert_eq!(run.halt_rounds, base.halt_rounds, "shards = {k}");
            assert_eq!(run.stats, base.stats, "shards = {k}");
        }
    }

    #[test]
    fn sharded_randomized_run_matches_serial() {
        // Per-node RNG streams are pre-seeded, so sharding must not perturb
        // a RandLOCAL run either.
        let g = gen::cycle(33);
        let base = Engine::new(&g, Mode::randomized(9))
            .exec(&RandProtocol)
            .unwrap();
        for k in [2usize, 5, 8] {
            let run = Engine::new(&g, Mode::randomized(9))
                .execute(&ExecSpec::default().with_shards(k), &RandProtocol)
                .into_run(100_000)
                .unwrap();
            assert_eq!(run.outputs, base.outputs, "shards = {k}");
            assert_eq!(run.stats, base.stats, "shards = {k}");
        }
    }

    #[test]
    fn engine_level_shards_builder_matches_serial() {
        let g = gen::star(17);
        let base = Engine::new(&g, Mode::deterministic())
            .exec(&FloodMinProtocol)
            .unwrap();
        let run = Engine::new(&g, Mode::deterministic())
            .with_shards(4)
            .exec(&FloodMinProtocol)
            .unwrap();
        assert_eq!(run.outputs, base.outputs);
        assert_eq!(run.stats, base.stats);
    }

    #[test]
    fn sharded_faulty_run_matches_serial() {
        // Crashes keep the eager path; drops/delays force the serial
        // fault-delivery path under sharded stepping. Both must agree with
        // the fully serial engine in every observable.
        let g = gen::cycle(20);
        let mut crash = vec![None; 20];
        crash[3] = Some(0);
        crash[11] = Some(2);
        let crash_plan = FaultPlan::from_crash_schedule(crash);
        let lossy_plan =
            FaultPlan::sample(&g, &FaultSpec::none().with_drop(0.3).with_delay(0.3), 77);
        for plan in [&crash_plan, &lossy_plan] {
            let base = Engine::new(&g, Mode::deterministic()).exec_faulty(&FloodMinProtocol, plan);
            for k in [2usize, 7] {
                let run = Engine::new(&g, Mode::deterministic()).execute(
                    &ExecSpec::default().with_faults(plan).with_shards(k),
                    &FloodMinProtocol,
                );
                assert_eq!(run.rounds, base.rounds, "shards = {k}");
                assert_eq!(run.stats, base.stats, "shards = {k}");
                assert_eq!(run.dropped, base.dropped, "shards = {k}");
                assert_eq!(run.delayed, base.delayed, "shards = {k}");
                assert_eq!(run.breach, base.breach, "shards = {k}");
                assert_eq!(run.halted(), base.halted(), "shards = {k}");
                assert_eq!(run.crashed(), base.crashed(), "shards = {k}");
                assert_eq!(
                    run.partial_outputs(),
                    base.partial_outputs(),
                    "shards = {k}"
                );
            }
        }
    }

    #[test]
    fn sharded_message_budget_breach_matches_serial() {
        let g = gen::cycle(6);
        let spec = ExecSpec::default().with_budget(Budget::rounds(100).with_max_messages(10));
        let base = Engine::new(&g, Mode::deterministic())
            .execute(&spec, &FloodMinProtocol)
            .into_run(100)
            .unwrap_err();
        let sharded = Engine::new(&g, Mode::deterministic())
            .execute(&spec.with_shards(3), &FloodMinProtocol)
            .into_run(100)
            .unwrap_err();
        assert_eq!(base, sharded);
    }

    #[test]
    fn trace_is_identical_across_shard_counts() {
        let seq = Trace::new(0);
        let g = gen::cycle(40);
        Engine::new(&g, Mode::deterministic())
            .with_trace(&seq)
            .exec(&FloodMinProtocol)
            .unwrap();
        let sharded = Trace::new(0);
        Engine::new(&g, Mode::deterministic())
            .with_shards(6)
            .with_trace(&sharded)
            .exec(&FloodMinProtocol)
            .unwrap();
        assert_eq!(seq.into_events(), sharded.into_events());
    }

    #[test]
    fn shard_bounds_are_monotone_and_cover() {
        let g = gen::star(9); // skewed degrees: hub has 8 slots
        for k in [1usize, 2, 3, 8, 9] {
            let b = shard_bounds(g.csr_offsets(), k);
            assert_eq!(b.len(), k + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[k], 9);
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn derived_rng_streams_differ() {
        let a = derived_u64(1, 0);
        let b = derived_u64(1, 1);
        let c = derived_u64(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derived_u64(1, 0), a);
    }
}
