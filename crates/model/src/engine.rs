//! The synchronous round engine.

use crate::error::SimError;
use crate::ids::IdAssignment;
use crate::node::{Action, NodeInit, NodeIo, NodeProgram, Protocol};
use crate::params::GlobalParams;
use local_graphs::Graph;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which of the paper's two models a run executes under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// DetLOCAL: unique IDs, no randomness.
    Deterministic {
        /// How the unique IDs are assigned.
        ids: IdAssignment,
    },
    /// RandLOCAL: anonymous vertices, private per-node randomness derived
    /// from the seed.
    Randomized {
        /// Master seed; per-node streams are split from it.
        seed: u64,
    },
}

impl Mode {
    /// DetLOCAL with sequential IDs.
    pub fn deterministic() -> Self {
        Mode::Deterministic {
            ids: IdAssignment::Sequential,
        }
    }

    /// DetLOCAL with the given ID assignment.
    pub fn deterministic_with(ids: IdAssignment) -> Self {
        Mode::Deterministic { ids }
    }

    /// RandLOCAL with the given master seed.
    pub fn randomized(seed: u64) -> Self {
        Mode::Randomized { seed }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total messages sent across all rounds.
    pub messages_sent: u64,
    /// Number of engine sweeps executed (≥ `rounds`).
    pub sweeps: u32,
    /// How many nodes were still live *entering* each sweep — the progress
    /// curve of the protocol (length = `sweeps`).
    pub live_per_round: Vec<usize>,
}

/// The result of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct Run<O> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<O>,
    /// Round complexity: the maximum number of communication rounds any
    /// vertex consumed before halting.
    pub rounds: u32,
    /// Per-vertex halting rounds.
    pub halt_rounds: Vec<u32>,
    /// Message and sweep counters.
    pub stats: RunStats,
}

/// SplitMix64 finalizer — used to derive independent per-node seeds from the
/// master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Slot<N, M, O> {
    state: N,
    rng: Option<ChaCha8Rng>,
    id: Option<u64>,
    out: Vec<Option<M>>,
    done: Option<(u32, O)>,
    sent: u64,
}

/// Runs a [`Protocol`] on a graph under a [`Mode`], counting rounds.
///
/// Node steps within a sweep are independent (they read only the previous
/// exchange's messages), so the engine executes them in parallel with rayon
/// on large graphs; results are bit-identical to sequential execution because
/// every node's randomness comes from its own pre-seeded stream.
#[derive(Debug)]
pub struct Engine<'g> {
    graph: &'g Graph,
    mode: Mode,
    params: GlobalParams,
    max_rounds: u32,
}

/// Below this many vertices the engine steps nodes sequentially (rayon
/// overhead dominates otherwise).
const PAR_THRESHOLD: usize = 2048;

impl<'g> Engine<'g> {
    /// Engine for `graph` under `mode`, advertising the graph's true
    /// parameters, with a default round limit of `100_000`.
    pub fn new(graph: &'g Graph, mode: Mode) -> Self {
        Engine {
            graph,
            mode,
            params: GlobalParams::from_graph(graph),
            max_rounds: 100_000,
        }
    }

    /// Override the advertised global parameters (Theorems 3/6/8 pretend the
    /// graph is much larger than it is).
    pub fn with_params(mut self, params: GlobalParams) -> Self {
        self.params = params;
        self
    }

    /// Override the round limit after which [`SimError::RoundLimitExceeded`]
    /// is returned.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The parameters this engine advertises to nodes.
    pub fn params(&self) -> &GlobalParams {
        &self.params
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Run `protocol` to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if some node never halts.
    pub fn run<P>(&self, protocol: &P) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError>
    where
        P: Protocol + Sync,
    {
        let g = self.graph;
        let n = g.n();
        let ids: Option<Vec<u64>> = match &self.mode {
            Mode::Deterministic { ids } => Some(ids.assign(g)),
            Mode::Randomized { .. } => None,
        };
        let seed = match &self.mode {
            Mode::Randomized { seed } => Some(*seed),
            Mode::Deterministic { .. } => None,
        };

        type NodeSlot<P> = Slot<
            <P as Protocol>::Node,
            <<P as Protocol>::Node as NodeProgram>::Msg,
            <<P as Protocol>::Node as NodeProgram>::Output,
        >;
        let mut slots: Vec<NodeSlot<P>> = (0..n)
                .map(|v| {
                    let id = ids.as_ref().map(|ids| ids[v]);
                    let init = NodeInit {
                        node: v,
                        degree: g.degree(v),
                        id,
                        params: &self.params,
                    };
                    Slot {
                        state: protocol.create(&init),
                        rng: seed.map(|s| {
                            ChaCha8Rng::seed_from_u64(splitmix64(
                                s ^ splitmix64(v as u64 + 1),
                            ))
                        }),
                        id,
                        out: Vec::new(),
                        done: None,
                        sent: 0,
                    }
                })
                .collect();

        let total_sent = AtomicU64::new(0);
        let mut live = n;
        let mut sweep: u32 = 0;
        let mut live_per_round: Vec<usize> = Vec::new();
        let mut prev_out: Vec<Vec<Option<<P::Node as NodeProgram>::Msg>>> = Vec::new();

        while live > 0 {
            if sweep > self.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.max_rounds,
                    live_nodes: live,
                });
            }
            // Detach the previous outboxes so nodes can read them while being
            // stepped mutably.
            prev_out.clear();
            prev_out.extend(slots.iter_mut().map(|s| std::mem::take(&mut s.out)));
            let prev = &prev_out;
            let params = &self.params;
            let round = sweep;

            let step_one = |(v, slot): (usize, &mut Slot<P::Node, _, _>)| {
                if slot.done.is_some() {
                    return;
                }
                let deg = g.degree(v);
                let inbox: Vec<Option<<P::Node as NodeProgram>::Msg>> = if round == 0 {
                    vec![None; deg]
                } else {
                    g.neighbors(v)
                        .iter()
                        .map(|nb| {
                            prev.get(nb.node)
                                .and_then(|o| o.get(nb.back_port))
                                .cloned()
                                .flatten()
                        })
                        .collect()
                };
                let mut out: Vec<Option<<P::Node as NodeProgram>::Msg>> = vec![None; deg];
                let action = {
                    let mut io = NodeIo {
                        degree: deg,
                        id: slot.id,
                        params,
                        inbox: &inbox,
                        outbox: &mut out,
                        rng: slot.rng.as_mut(),
                    };
                    slot.state.step(round, &mut io)
                };
                slot.sent += out.iter().filter(|m| m.is_some()).count() as u64;
                slot.out = out;
                if let Action::Halt(o) = action {
                    slot.done = Some((round, o));
                }
            };

            live_per_round.push(live);
            if n >= PAR_THRESHOLD {
                slots.par_iter_mut().enumerate().for_each(step_one);
            } else {
                slots.iter_mut().enumerate().for_each(step_one);
            }

            live = slots.iter().filter(|s| s.done.is_none()).count();
            sweep += 1;
        }

        let mut outputs = Vec::with_capacity(n);
        let mut halt_rounds = Vec::with_capacity(n);
        let mut rounds = 0;
        for slot in slots {
            total_sent.fetch_add(slot.sent, Ordering::Relaxed);
            let (r, o) = slot.done.expect("loop exits only when all halted");
            rounds = rounds.max(r);
            halt_rounds.push(r);
            outputs.push(o);
        }
        Ok(Run {
            outputs,
            rounds,
            halt_rounds,
            stats: RunStats {
                messages_sent: total_sent.into_inner(),
                sweeps: sweep,
                live_per_round,
            },
        })
    }
}

/// Derive a fresh RNG for auxiliary (non-node) randomness from a master seed
/// and a stream tag. Exposed so algorithm crates can split seeds the same way
/// the engine does.
pub fn derived_rng(seed: u64, tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(tag.wrapping_add(0xABCD))))
}

/// Convenience: draw a uniform `u64` from a derived stream (used for ID
/// generation in RandLOCAL algorithms).
pub fn derived_u64(seed: u64, tag: u64) -> u64 {
    derived_rng(seed, tag).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    /// Flood the minimum ID: halts after `diameter` rounds.
    struct FloodMin {
        current: u64,
        quiet_for: u32,
        horizon: u32,
    }
    impl NodeProgram for FloodMin {
        type Msg = u64;
        type Output = u64;
        fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
            if round == 0 {
                io.broadcast(self.current);
                return Action::Continue;
            }
            let before = self.current;
            for (_, &m) in io.received() {
                self.current = self.current.min(m);
            }
            if self.current == before {
                self.quiet_for += 1;
            } else {
                self.quiet_for = 0;
            }
            // n rounds without change guarantees convergence everywhere.
            if round >= self.horizon {
                Action::Halt(self.current)
            } else {
                io.broadcast(self.current);
                Action::Continue
            }
        }
    }
    struct FloodMinProtocol;
    impl Protocol for FloodMinProtocol {
        type Node = FloodMin;
        fn create(&self, init: &NodeInit<'_>) -> FloodMin {
            FloodMin {
                current: init.id.expect("DetLOCAL test"),
                quiet_for: 0,
                horizon: init.params.n as u32,
            }
        }
    }

    #[test]
    fn flood_min_agrees_on_minimum() {
        let g = gen::cycle(11);
        let run = Engine::new(&g, Mode::deterministic())
            .run(&FloodMinProtocol)
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 0));
        assert_eq!(run.rounds, 11);
        assert!(run.stats.messages_sent > 0);
    }

    #[test]
    fn flood_min_with_shuffled_ids() {
        let g = gen::path(9);
        let run = Engine::new(
            &g,
            Mode::deterministic_with(IdAssignment::Shuffled { seed: 3 }),
        )
        .run(&FloodMinProtocol)
        .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 0));
    }

    /// Zero-round protocol: output the degree immediately.
    struct Immediate;
    impl NodeProgram for Immediate {
        type Msg = ();
        type Output = usize;
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<usize> {
            Action::Halt(io.degree())
        }
    }
    struct ImmediateProtocol;
    impl Protocol for ImmediateProtocol {
        type Node = Immediate;
        fn create(&self, _init: &NodeInit<'_>) -> Immediate {
            Immediate
        }
    }

    #[test]
    fn zero_round_protocol_reports_zero_rounds() {
        let g = gen::star(6);
        let run = Engine::new(&g, Mode::deterministic())
            .run(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.rounds, 0);
        assert_eq!(run.outputs[0], 5);
        assert_eq!(run.outputs[3], 1);
        assert_eq!(run.stats.messages_sent, 0);
    }

    /// Never halts — must trip the round limit.
    struct Forever;
    impl NodeProgram for Forever {
        type Msg = ();
        type Output = ();
        fn step(&mut self, _round: u32, _io: &mut NodeIo<'_, ()>) -> Action<()> {
            Action::Continue
        }
    }
    struct ForeverProtocol;
    impl Protocol for ForeverProtocol {
        type Node = Forever;
        fn create(&self, _init: &NodeInit<'_>) -> Forever {
            Forever
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = gen::path(3);
        let err = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(10)
            .run(&ForeverProtocol)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::RoundLimitExceeded {
                limit: 10,
                live_nodes: 3
            }
        ));
    }

    /// RandLOCAL: each node outputs one random u64 with no communication.
    struct RandOut;
    impl NodeProgram for RandOut {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<u64> {
            assert!(io.id().is_none(), "RandLOCAL nodes must be anonymous");
            let x = io.rng().next_u64();
            Action::Halt(x)
        }
    }
    struct RandProtocol;
    impl Protocol for RandProtocol {
        type Node = RandOut;
        fn create(&self, init: &NodeInit<'_>) -> RandOut {
            assert!(init.id.is_none());
            RandOut
        }
    }

    #[test]
    fn randomized_mode_is_seeded_and_distinct() {
        let g = gen::cycle(16);
        let a = Engine::new(&g, Mode::randomized(42)).run(&RandProtocol).unwrap();
        let b = Engine::new(&g, Mode::randomized(42)).run(&RandProtocol).unwrap();
        let c = Engine::new(&g, Mode::randomized(43)).run(&RandProtocol).unwrap();
        assert_eq!(a.outputs, b.outputs, "same seed, same outputs");
        assert_ne!(a.outputs, c.outputs, "different seed, different outputs");
        let distinct: std::collections::HashSet<_> = a.outputs.iter().collect();
        assert_eq!(distinct.len(), 16, "node streams must be independent");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // A graph larger than PAR_THRESHOLD exercises the rayon path; the
        // same protocol on a small graph exercises the sequential path. Both
        // must be reproducible under the same seed.
        let g = gen::cycle(PAR_THRESHOLD + 10);
        let a = Engine::new(&g, Mode::randomized(7)).run(&RandProtocol).unwrap();
        let b = Engine::new(&g, Mode::randomized(7)).run(&RandProtocol).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn halt_rounds_are_per_node() {
        let g = gen::star(5);
        let run = Engine::new(&g, Mode::deterministic())
            .run(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.halt_rounds, vec![0; 5]);
    }

    #[test]
    fn claimed_params_reach_nodes() {
        struct ParamCheck;
        impl NodeProgram for ParamCheck {
            type Msg = ();
            type Output = u64;
            fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<u64> {
                Action::Halt(io.params().n)
            }
        }
        struct ParamProtocol;
        impl Protocol for ParamProtocol {
            type Node = ParamCheck;
            fn create(&self, _init: &NodeInit<'_>) -> ParamCheck {
                ParamCheck
            }
        }
        let g = gen::path(3);
        let params = GlobalParams::from_graph(&g).with_claimed_n(1 << 30);
        let run = Engine::new(&g, Mode::deterministic())
            .with_params(params)
            .run(&ParamProtocol)
            .unwrap();
        assert!(run.outputs.iter().all(|&o| o == 1 << 30));
    }

    #[test]
    fn live_per_round_traces_progress() {
        let g = gen::star(6);
        let run = Engine::new(&g, Mode::deterministic())
            .run(&ImmediateProtocol)
            .unwrap();
        assert_eq!(run.stats.live_per_round, vec![6]);
        let g = gen::cycle(5);
        let run = Engine::new(&g, Mode::deterministic())
            .run(&FloodMinProtocol)
            .unwrap();
        assert_eq!(run.stats.live_per_round.len() as u32, run.stats.sweeps);
        assert_eq!(run.stats.live_per_round[0], 5);
        // Monotonically non-increasing.
        for w in run.stats.live_per_round.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn derived_rng_streams_differ() {
        let a = derived_u64(1, 0);
        let b = derived_u64(1, 1);
        let c = derived_u64(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(derived_u64(1, 0), a);
    }
}
