//! Unique-ID assignments for DetLOCAL runs.
//!
//! The DetLOCAL model endows every vertex with a unique `Θ(log n)`-bit ID.
//! How adversarially those IDs are placed matters for deterministic
//! algorithms, so the engine supports several assignments.

use local_graphs::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// `⌈log₂ n⌉` (and 0 for `n ≤ 1`): bits needed to write IDs in `0..n`.
pub fn id_bits(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Strategy for assigning the unique IDs a DetLOCAL run hands to vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[derive(Default)]
pub enum IdAssignment {
    /// `ID(v) = v`: the friendliest possible assignment.
    #[default]
    Sequential,
    /// A uniformly random permutation of `0..n`, derived from the seed.
    Shuffled {
        /// RNG seed for the permutation.
        seed: u64,
    },
    /// Distinct random IDs drawn from `0..2^bits` (standard `c·log n`-bit
    /// IDs with `c > 1`), derived from the seed.
    RandomBits {
        /// RNG seed for the draws.
        seed: u64,
        /// ID width in bits (must satisfy `2^bits ≥ n`).
        bits: u32,
    },
    /// Caller-provided IDs; must be distinct.
    Custom(Vec<u64>),
}

impl IdAssignment {
    /// Materialize the per-vertex IDs for `g`.
    ///
    /// # Panics
    ///
    /// Panics if a [`IdAssignment::Custom`] vector has the wrong length or
    /// duplicate entries, or if [`IdAssignment::RandomBits`] has
    /// `2^bits < n`.
    pub fn assign(&self, g: &Graph) -> Vec<u64> {
        let n = g.n();
        match self {
            IdAssignment::Sequential => (0..n as u64).collect(),
            IdAssignment::Shuffled { seed } => {
                let mut ids: Vec<u64> = (0..n as u64).collect();
                ids.shuffle(&mut StdRng::seed_from_u64(*seed));
                ids
            }
            IdAssignment::RandomBits { seed, bits } => {
                assert!(
                    *bits >= id_bits(n as u64),
                    "2^{bits} ID space cannot hold {n} distinct IDs"
                );
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut used = std::collections::HashSet::with_capacity(n);
                let mut ids = Vec::with_capacity(n);
                let space: u128 = 1u128 << bits;
                while ids.len() < n {
                    let candidate = (rng.gen::<u128>() % space) as u64;
                    if used.insert(candidate) {
                        ids.push(candidate);
                    }
                }
                ids
            }
            IdAssignment::Custom(ids) => {
                assert_eq!(ids.len(), n, "custom ID vector has wrong length");
                let distinct: std::collections::HashSet<_> = ids.iter().collect();
                assert_eq!(distinct.len(), n, "custom IDs must be distinct");
                ids.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(0), 0);
        assert_eq!(id_bits(1), 0);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 2);
        assert_eq!(id_bits(5), 3);
        assert_eq!(id_bits(1 << 20), 20);
    }

    #[test]
    fn sequential_ids() {
        let g = gen::path(4);
        assert_eq!(IdAssignment::Sequential.assign(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffled_is_permutation_and_reproducible() {
        let g = gen::path(10);
        let a = IdAssignment::Shuffled { seed: 9 }.assign(&g);
        let b = IdAssignment::Shuffled { seed: 9 }.assign(&g);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn random_bits_are_distinct() {
        let g = gen::cycle(20);
        let ids = IdAssignment::RandomBits { seed: 4, bits: 16 }.assign(&g);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(ids.iter().all(|&id| id < (1 << 16)));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn random_bits_too_narrow() {
        let g = gen::cycle(20);
        let _ = IdAssignment::RandomBits { seed: 4, bits: 2 }.assign(&g);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn custom_rejects_duplicates() {
        let g = gen::path(3);
        let _ = IdAssignment::Custom(vec![1, 1, 2]).assign(&g);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn custom_rejects_wrong_length() {
        let g = gen::path(3);
        let _ = IdAssignment::Custom(vec![1, 2]).assign(&g);
    }
}
