//! The per-vertex programming interface.

use crate::params::GlobalParams;
use local_graphs::{NodeId, PortId};
use rand::RngCore;
use rand_chacha::ChaCha8Rng;

/// What a node decides at the end of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<O> {
    /// Keep running; the engine will deliver this round's messages.
    Continue,
    /// Halt with an output. A halted node sends no further messages.
    Halt(O),
}

/// The algorithm run by every vertex, as a state machine stepped once per
/// round.
///
/// `step(0, …)` is called before any communication (the inbox is empty);
/// `step(k, …)` for `k ≥ 1` sees the messages sent in step `k − 1`. A node
/// that halts at step `k` has therefore used exactly `k` communication
/// rounds — the engine reports the maximum over all nodes as the run's round
/// complexity.
pub trait NodeProgram {
    /// Message type (unbounded size, per the LOCAL model).
    type Msg: Clone + Send + Sync;
    /// Final output of a node (the label in an LCL solution).
    type Output: Clone + Send;

    /// Execute one round: read the inbox, update state, write the outbox,
    /// decide whether to halt.
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, Self::Msg>) -> Action<Self::Output>;
}

/// Factory creating the per-vertex state for a protocol.
///
/// The same algorithm runs at every vertex; `create` may use
/// [`NodeInit::node`] only to look up *local input* (e.g. the colors of
/// incident edges in an input edge coloring) — never to derive an identity.
/// Identity is available exclusively through [`NodeInit::id`] /
/// [`NodeIo::id`], which the engine populates only in DetLOCAL mode.
pub trait Protocol {
    /// Node state machine type.
    type Node: NodeProgram + Send;

    /// Build the initial state for one vertex.
    fn create(&self, init: &NodeInit<'_>) -> Self::Node;
}

/// Everything a vertex legitimately knows at time zero.
#[derive(Debug, Clone, Copy)]
pub struct NodeInit<'a> {
    /// Simulator-internal vertex index — for *input lookup only* (see
    /// [`Protocol::create`]).
    pub node: NodeId,
    /// Degree of the vertex.
    pub degree: usize,
    /// The vertex's unique ID in DetLOCAL mode; `None` in RandLOCAL mode.
    pub id: Option<u64>,
    /// Global parameters (`n`, `Δ`).
    pub params: &'a GlobalParams,
}

/// Per-round I/O handle: the inbox from the previous exchange, the outbox for
/// this one, and the model capabilities (ID / randomness).
#[derive(Debug)]
pub struct NodeIo<'a, M> {
    pub(crate) degree: usize,
    pub(crate) id: Option<u64>,
    pub(crate) params: &'a GlobalParams,
    pub(crate) inbox: &'a [Option<M>],
    pub(crate) outbox: &'a mut [Option<M>],
    pub(crate) rng: Option<&'a mut ChaCha8Rng>,
}

impl<'a, M: Clone> NodeIo<'a, M> {
    /// Degree of this vertex (number of ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Global parameters known to every vertex.
    ///
    /// The returned reference outlives the `NodeIo` borrow (it points at the
    /// engine's parameters), so it can be captured while `self` is later
    /// borrowed mutably.
    pub fn params(&self) -> &'a GlobalParams {
        self.params
    }

    /// This vertex's unique ID — `Some` exactly in DetLOCAL mode.
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// The message received on port `p` in the last exchange, if any.
    ///
    /// # Panics
    ///
    /// Panics if `p >= degree`.
    pub fn recv(&self, p: PortId) -> Option<&M> {
        self.inbox[p].as_ref()
    }

    /// Iterate over `(port, message)` for all ports that received a message.
    pub fn received(&self) -> impl Iterator<Item = (PortId, &M)> {
        self.inbox
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p, m)))
    }

    /// Send `msg` on port `p` this round (overwrites an earlier send on the
    /// same port).
    ///
    /// # Panics
    ///
    /// Panics if `p >= degree`.
    pub fn send(&mut self, p: PortId, msg: M) {
        self.outbox[p] = Some(msg);
    }

    /// Send a copy of `msg` on every port.
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.degree {
            self.outbox[p] = Some(msg.clone());
        }
    }

    /// The vertex's private random generator — RandLOCAL mode only.
    ///
    /// # Panics
    ///
    /// Panics in DetLOCAL mode: deterministic algorithms have no random
    /// bits, and an attempt to use them is a model violation, not a
    /// recoverable condition.
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
            .as_deref_mut()
            .expect("model violation: NodeIo::rng() called in a DetLOCAL run")
    }

    /// Whether this run provides randomness (i.e. is a RandLOCAL run).
    pub fn is_randomized(&self) -> bool {
        self.rng.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_send_recv_roundtrip() {
        let params = GlobalParams { n: 3, delta: 2 };
        let inbox = vec![Some(7u32), None];
        let mut outbox = vec![None, None];
        let mut io = NodeIo {
            degree: 2,
            id: Some(5),
            params: &params,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: None,
        };
        assert_eq!(io.degree(), 2);
        assert_eq!(io.id(), Some(5));
        assert_eq!(io.recv(0), Some(&7));
        assert_eq!(io.recv(1), None);
        assert_eq!(io.received().collect::<Vec<_>>(), vec![(0, &7)]);
        io.send(1, 9);
        io.broadcast(3);
        assert!(!io.is_randomized());
        let _ = io;
        assert_eq!(outbox, vec![Some(3), Some(3)]);
    }

    #[test]
    #[should_panic(expected = "model violation")]
    fn rng_in_det_mode_panics() {
        let params = GlobalParams { n: 1, delta: 0 };
        let inbox: Vec<Option<u32>> = vec![];
        let mut outbox: Vec<Option<u32>> = vec![];
        let mut io = NodeIo {
            degree: 0,
            id: Some(0),
            params: &params,
            inbox: &inbox,
            outbox: &mut outbox,
            rng: None,
        };
        let _ = io.rng();
    }
}
