//! Recovery primitives: run budgets and residual-subgraph extraction.
//!
//! A faulty run ends with a *partial* labeling — some vertices `Halted` with
//! outputs, the rest `Crashed` or `Cut`. The paper's graph-shattering
//! structure (Theorem 10) already contains the cure: a randomized phase
//! solves most vertices and a deterministic finisher cleans up the small
//! residual components. This module provides the model-level half of that
//! recovery story:
//!
//! * [`Budget`] — a watchdog contract (`max_rounds`, optional `max_messages`
//!   and `wall_clock`) enforced by [`Engine::run_faulty`](crate::Engine); a
//!   breached run degrades to [`Outcome::Cut`](crate::Outcome) entries with
//!   the [`Breach`] recorded on the [`FaultyRun`](crate::FaultyRun), instead
//!   of hanging.
//! * [`Residue`] — the induced subgraph of a *core* vertex set (typically the
//!   non-`Halted` vertices, see [`faulty_core`]) dilated by a boundary
//!   radius, with local↔global index maps so a finisher's labels can be
//!   spliced back into the full graph.
//! * [`RecoveryError`] — the typed failure surface of an escalating recovery
//!   driver (radius 1 → 2 → 3, then give up loudly).
//!
//! The problem-specific finishers and the escalation driver itself live in
//! the algorithms crate (`local_algorithms::repair`), which consumes these
//! types.

use crate::faults::{FaultyRun, Outcome};
use local_graphs::{Graph, GraphBuilder, NodeId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// A per-run resource budget enforced by the engine's watchdog.
///
/// `max_rounds` is always enforced (it subsumes the engine's historical round
/// limit); `max_messages` and `wall_clock` are opt-in. A breached run is cut,
/// never aborted: still-live nodes report [`Outcome::Cut`](crate::Outcome)
/// and the breach kind is recorded on the run.
///
/// Note that wall-clock budgets are inherently nondeterministic — two runs of
/// the same seed may cut at different sweeps. Leave `wall_clock` at `None`
/// anywhere byte-identical replay matters (the experiment sweeps do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of engine sweeps before the run is cut.
    pub max_rounds: u32,
    /// Optional cap on total messages sent across all nodes and rounds.
    pub max_messages: Option<u64>,
    /// Optional cap on elapsed wall-clock time (checked between sweeps).
    pub wall_clock: Option<Duration>,
}

// Hand-written: `wall_clock` is a `Duration`, which the vendored serde has
// no impl for — it serializes as fractional seconds (or null).
impl serde::Serialize for Budget {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("max_rounds".to_string(), self.max_rounds.to_value()),
            ("max_messages".to_string(), self.max_messages.to_value()),
            (
                "wall_clock_secs".to_string(),
                self.wall_clock.map(|d| d.as_secs_f64()).to_value(),
            ),
        ])
    }
}

impl Budget {
    /// A budget limiting only the number of rounds.
    pub fn rounds(max_rounds: u32) -> Self {
        Budget {
            max_rounds,
            max_messages: None,
            wall_clock: None,
        }
    }

    /// Add a cap on total messages sent.
    pub fn with_max_messages(mut self, max_messages: u64) -> Self {
        self.max_messages = Some(max_messages);
        self
    }

    /// Add a wall-clock cap (checked between sweeps, so one slow sweep can
    /// overshoot it; see the type-level note on determinism).
    pub fn with_wall_clock(mut self, wall_clock: Duration) -> Self {
        self.wall_clock = Some(wall_clock);
        self
    }
}

/// Which budget axis a cut run breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Breach {
    /// The sweep count reached [`Budget::max_rounds`].
    Rounds,
    /// Total messages sent exceeded [`Budget::max_messages`].
    Messages,
    /// Elapsed time exceeded [`Budget::wall_clock`].
    WallClock,
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Breach::Rounds => write!(f, "round budget"),
            Breach::Messages => write!(f, "message budget"),
            Breach::WallClock => write!(f, "wall-clock budget"),
        }
    }
}

// Hand-written: the derive macro does not cover unit-variant enums; a breach
// serializes as its snake_case name.
impl serde::Serialize for Breach {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(
            match self {
                Breach::Rounds => "rounds",
                Breach::Messages => "messages",
                Breach::WallClock => "wall_clock",
            }
            .to_string(),
        )
    }
}

/// One rung of the recovery escalation ladder, as recorded by the driver.
///
/// The trail is the shared currency of the degradation plane: a failed
/// recovery carries it on [`RecoveryError::Exhausted`], and the graceful
/// `DegradedRun` report (in the algorithms crate) embeds the same records —
/// one struct, two consumers, so the two views can never drift apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The 1-based attempt number (attempt `k` dilates to radius `k`).
    pub attempt: u32,
    /// The boundary radius this attempt dilated the core by.
    pub radius: u32,
    /// Core vertices the residue was grown from (grows as failed splices
    /// absorb their violations).
    pub core_size: usize,
    /// Residue members relabeled by this attempt.
    pub residue_size: usize,
    /// Violations remaining after this attempt's splice (0 if the attempt
    /// never reached the splice).
    pub violations: usize,
    /// The budget axis this attempt breached, if any.
    pub breach: Option<Breach>,
    /// Why the finisher refused at this radius, if it did.
    pub infeasible: Option<String>,
}

// Hand-written because `Breach` is.
impl serde::Serialize for AttemptRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("attempt".to_string(), self.attempt.to_value()),
            ("radius".to_string(), self.radius.to_value()),
            ("core_size".to_string(), self.core_size.to_value()),
            ("residue_size".to_string(), self.residue_size.to_value()),
            ("violations".to_string(), self.violations.to_value()),
            ("breach".to_string(), self.breach.to_value()),
            ("infeasible".to_string(), self.infeasible.to_value()),
        ])
    }
}

/// Why a recovery attempt (or the whole escalation ladder) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// Every escalation radius was tried and the spliced labeling still
    /// failed `check_complete`.
    Exhausted {
        /// How many attempts ran (one per radius).
        attempts: u32,
        /// The largest boundary radius tried.
        max_radius: u32,
        /// Violations remaining after the last attempt's splice.
        violations: usize,
        /// The per-attempt history (one [`AttemptRecord`] per radius tried),
        /// shared verbatim with the graceful `DegradedRun` report.
        trail: Vec<AttemptRecord>,
    },
    /// A finisher attempt breached its [`Budget`].
    Budget {
        /// The attempt (1-based) that breached.
        attempt: u32,
        /// Which budget axis was breached.
        breach: Breach,
    },
    /// The residue admits no valid completion at this radius (e.g. a frozen
    /// boundary starves the palette, or a tree component cannot host an
    /// out-edge). Escalation may still succeed at a larger radius.
    Infeasible {
        /// The attempt (1-based) that was infeasible.
        attempt: u32,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Exhausted {
                attempts,
                max_radius,
                violations,
                ..
            } => write!(
                f,
                "recovery exhausted after {attempts} attempt(s) up to radius \
                 {max_radius} ({violations} violation(s) remained)"
            ),
            RecoveryError::Budget { attempt, breach } => {
                write!(f, "recovery attempt {attempt} breached its {breach}")
            }
            RecoveryError::Infeasible { attempt, reason } => {
                write!(f, "recovery attempt {attempt} infeasible: {reason}")
            }
        }
    }
}

impl Error for RecoveryError {}

// Hand-written (data-carrying enum): a `kind`-tagged flat object. The
// `Exhausted` trail is deliberately omitted — the `DegradedRun` report that
// embeds this error serializes the shared trail exactly once, at top level.
impl serde::Serialize for RecoveryError {
    fn to_value(&self) -> serde::Value {
        let kind = |k: &str| ("kind".to_string(), serde::Value::String(k.to_string()));
        match self {
            RecoveryError::Exhausted {
                attempts,
                max_radius,
                violations,
                ..
            } => serde::Value::Object(vec![
                kind("exhausted"),
                ("attempts".to_string(), attempts.to_value()),
                ("max_radius".to_string(), max_radius.to_value()),
                ("violations".to_string(), violations.to_value()),
            ]),
            RecoveryError::Budget { attempt, breach } => serde::Value::Object(vec![
                kind("budget"),
                ("attempt".to_string(), attempt.to_value()),
                ("breach".to_string(), breach.to_value()),
            ]),
            RecoveryError::Infeasible { attempt, reason } => serde::Value::Object(vec![
                kind("infeasible"),
                ("attempt".to_string(), attempt.to_value()),
                ("reason".to_string(), reason.to_value()),
            ]),
        }
    }
}

/// Mark the vertices a recovery must relabel: `true` for every non-`Halted`
/// vertex of a faulty run. (Recovery drivers typically also add vertices
/// whose halted outputs *violate* the problem — a dropped message can leave
/// two halted neighbors mutually inconsistent.)
pub fn faulty_core<O>(run: &FaultyRun<O>) -> Vec<bool> {
    run.outcomes
        .iter()
        .map(|o| !matches!(o, Outcome::Halted { .. }))
        .collect()
}

/// The residual subgraph a finisher runs on: a core vertex set dilated by
/// `radius` hops, with the induced subgraph and local↔global index maps.
///
/// Members are listed in ascending global vertex order, and the induced
/// subgraph's vertices use that local order — everything here is a pure
/// function of `(graph, core, radius)`, so recovery is deterministic.
#[derive(Debug, Clone)]
pub struct Residue {
    members: Vec<NodeId>,
    to_local: Vec<Option<usize>>,
    graph: Graph,
    radius: u32,
    core_size: usize,
}

impl Residue {
    /// Extract the residue of `core` (a per-vertex mask) dilated by `radius`
    /// hops in `g`.
    ///
    /// # Panics
    ///
    /// Panics if `core.len() != g.n()`.
    pub fn extract(g: &Graph, core: &[bool], radius: u32) -> Residue {
        assert_eq!(core.len(), g.n(), "core mask must cover every vertex");
        let mut dist: Vec<Option<u32>> = vec![None; g.n()];
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for (v, &in_core) in core.iter().enumerate() {
            if in_core {
                dist[v] = Some(0);
                queue.push_back(v);
            }
        }
        let core_size = queue.len();
        while let Some(v) = queue.pop_front() {
            let d = dist[v].expect("queued vertices have distances");
            if d >= radius {
                continue;
            }
            for nb in g.neighbors(v) {
                if dist[nb.node].is_none() {
                    dist[nb.node] = Some(d + 1);
                    queue.push_back(nb.node);
                }
            }
        }
        let members: Vec<NodeId> = (0..g.n()).filter(|&v| dist[v].is_some()).collect();
        let mut to_local: Vec<Option<usize>> = vec![None; g.n()];
        for (i, &v) in members.iter().enumerate() {
            to_local[v] = Some(i);
        }
        let mut builder = GraphBuilder::new(members.len());
        for &(u, v) in g.edges() {
            if let (Some(lu), Some(lv)) = (to_local[u], to_local[v]) {
                builder
                    .add_edge(lu, lv)
                    .expect("induced subgraph of a simple graph is simple");
            }
        }
        Residue {
            members,
            to_local,
            graph: builder.build(),
            radius,
            core_size,
        }
    }

    /// The induced subgraph on the members (local vertex `i` is global vertex
    /// `self.global(i)`). Port numbering is the induced graph's own.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The member vertices, in ascending global order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the residue is empty (an empty core stays empty at any
    /// radius).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of core (radius-0) vertices the residue was grown from.
    pub fn core_size(&self) -> usize {
        self.core_size
    }

    /// The dilation radius this residue was extracted with.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Whether global vertex `v` is a member.
    pub fn contains(&self, v: NodeId) -> bool {
        self.to_local.get(v).is_some_and(Option::is_some)
    }

    /// The local index of global vertex `v`, if it is a member.
    pub fn local(&self, v: NodeId) -> Option<usize> {
        self.to_local.get(v).copied().flatten()
    }

    /// The global vertex behind local index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn global(&self, i: usize) -> NodeId {
        self.members[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Outcome;
    use crate::RunStats;
    use local_graphs::gen;

    #[test]
    fn budget_builders_compose() {
        let b = Budget::rounds(10)
            .with_max_messages(100)
            .with_wall_clock(Duration::from_millis(5));
        assert_eq!(b.max_rounds, 10);
        assert_eq!(b.max_messages, Some(100));
        assert_eq!(b.wall_clock, Some(Duration::from_millis(5)));
        assert_eq!(Budget::rounds(3).max_messages, None);
    }

    #[test]
    fn breach_and_error_display() {
        assert_eq!(Breach::Rounds.to_string(), "round budget");
        let e = RecoveryError::Exhausted {
            attempts: 3,
            max_radius: 3,
            violations: 2,
            trail: Vec::new(),
        };
        assert!(e.to_string().contains("3 attempt"));
        assert!(e.to_string().contains("radius"));
        let e = RecoveryError::Budget {
            attempt: 2,
            breach: Breach::Messages,
        };
        assert!(e.to_string().contains("message budget"));
        let e = RecoveryError::Infeasible {
            attempt: 1,
            reason: "no free color".into(),
        };
        assert!(e.to_string().contains("no free color"));
    }

    #[test]
    fn attempt_record_serializes_flat() {
        let rec = AttemptRecord {
            attempt: 2,
            radius: 2,
            core_size: 5,
            residue_size: 12,
            violations: 1,
            breach: None,
            infeasible: Some("no free color".to_string()),
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(
            json,
            "{\"attempt\":2,\"radius\":2,\"core_size\":5,\"residue_size\":12,\
             \"violations\":1,\"breach\":null,\"infeasible\":\"no free color\"}"
        );
        let breached = AttemptRecord {
            breach: Some(Breach::WallClock),
            infeasible: None,
            ..rec
        };
        assert!(serde_json::to_string(&breached)
            .unwrap()
            .contains("\"breach\":\"wall_clock\""));
    }

    #[test]
    fn faulty_core_marks_non_halted() {
        let run: FaultyRun<u32> = FaultyRun {
            outcomes: vec![
                Outcome::Halted {
                    round: 1,
                    output: 9,
                },
                Outcome::Crashed { round: 0 },
                Outcome::Cut,
            ],
            rounds: 1,
            stats: RunStats {
                messages_sent: 0,
                sweeps: 2,
                live_per_round: vec![3, 1],
                messages_per_round: vec![0, 0],
            },
            dropped: 0,
            delayed: 0,
            breach: None,
        };
        assert_eq!(faulty_core(&run), vec![false, true, true]);
    }

    #[test]
    fn residue_of_path_center_grows_with_radius() {
        // Path 0-1-2-3-4, core = {2}.
        let g = gen::path(5);
        let core = [false, false, true, false, false];
        let r1 = Residue::extract(&g, &core, 1);
        assert_eq!(r1.members(), &[1, 2, 3]);
        assert_eq!(r1.core_size(), 1);
        assert_eq!(r1.len(), 3);
        assert_eq!(r1.graph().n(), 3);
        assert_eq!(r1.graph().m(), 2);
        assert!(r1.contains(2) && !r1.contains(0));
        assert_eq!(r1.local(1), Some(0));
        assert_eq!(r1.local(4), None);
        assert_eq!(r1.global(2), 3);

        let r2 = Residue::extract(&g, &core, 2);
        assert_eq!(r2.members(), &[0, 1, 2, 3, 4]);
        assert_eq!(r2.graph().m(), 4);
        assert_eq!(r2.radius(), 2);
    }

    #[test]
    fn residue_radius_zero_is_the_core_itself() {
        let g = gen::cycle(6);
        let core = [true, false, false, true, true, false];
        let r = Residue::extract(&g, &core, 0);
        assert_eq!(r.members(), &[0, 3, 4]);
        // 3-4 is the only induced edge.
        assert_eq!(r.graph().m(), 1);
    }

    #[test]
    fn empty_core_yields_empty_residue() {
        let g = gen::cycle(4);
        let r = Residue::extract(&g, &[false; 4], 3);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.core_size(), 0);
    }

    #[test]
    fn residue_keeps_induced_edges_only() {
        // Star with hub 0: core = two leaves. Radius 0 gives an edgeless
        // residue; radius 1 pulls in the hub and the two spokes.
        let g = gen::star(5);
        let mut core = vec![false; 5];
        core[1] = true;
        core[2] = true;
        let r0 = Residue::extract(&g, &core, 0);
        assert_eq!(r0.graph().m(), 0);
        let r1 = Residue::extract(&g, &core, 1);
        assert_eq!(r1.members(), &[0, 1, 2]);
        assert_eq!(r1.graph().m(), 2);
    }
}
