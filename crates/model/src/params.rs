//! Global parameters known to every vertex.

use serde::{Deserialize, Serialize};

/// The global graph parameters every vertex knows at time zero.
///
/// `n` is a `u64` rather than `usize` because the paper's transforms run
/// algorithms with *pretended* sizes much larger than the actual graph:
/// Theorem 3 simulates with parameter `N = 2^(n²)` and Theorem 6 with
/// `2^(ℓ')`. [`GlobalParams::with_claimed_n`] supports exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalParams {
    /// The (claimed) number of vertices.
    pub n: u64,
    /// The (claimed) maximum degree Δ.
    pub delta: usize,
}

impl GlobalParams {
    /// Parameters advertising the graph's true `n` and `Δ`.
    pub fn from_graph(g: &local_graphs::Graph) -> Self {
        GlobalParams {
            n: g.n() as u64,
            delta: g.max_degree(),
        }
    }

    /// The same parameters but claiming a different vertex count — the
    /// "implicitly assume the graph size is `2^(ℓ')`" device of Theorems 3,
    /// 6, and 8.
    pub fn with_claimed_n(self, n: u64) -> Self {
        GlobalParams { n, ..self }
    }

    /// `⌈log₂ n⌉`, the number of bits needed to index a vertex.
    pub fn log2_n(&self) -> u32 {
        crate::ids::id_bits(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn from_graph_reads_true_values() {
        let g = gen::star(7);
        let p = GlobalParams::from_graph(&g);
        assert_eq!(p.n, 7);
        assert_eq!(p.delta, 6);
    }

    #[test]
    fn claimed_n_overrides() {
        let g = gen::path(4);
        let p = GlobalParams::from_graph(&g).with_claimed_n(1 << 40);
        assert_eq!(p.n, 1 << 40);
        assert_eq!(p.delta, 2);
    }

    #[test]
    fn log2_n() {
        let p = GlobalParams { n: 1, delta: 0 };
        assert_eq!(p.log2_n(), 0);
        let p = GlobalParams { n: 8, delta: 0 };
        assert_eq!(p.log2_n(), 3);
        let p = GlobalParams { n: 9, delta: 0 };
        assert_eq!(p.log2_n(), 4);
    }
}
