//! Global parameters known to every vertex.

use serde::{Deserialize, Serialize};

/// The global graph parameters every vertex knows at time zero.
///
/// `n` is a `u64` rather than `usize` because the paper's transforms run
/// algorithms with *pretended* sizes much larger than the actual graph:
/// Theorem 3 simulates with parameter `N = 2^(n²)` and Theorem 6 with
/// `2^(ℓ')`. [`GlobalParams::with_claimed_n`] supports exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalParams {
    /// The (claimed) number of vertices.
    pub n: u64,
    /// The (claimed) maximum degree Δ.
    pub delta: usize,
}

impl GlobalParams {
    /// Parameters advertising the graph's true `n` and `Δ`.
    pub fn from_graph(g: &local_graphs::Graph) -> Self {
        GlobalParams {
            n: g.n() as u64,
            delta: g.max_degree(),
        }
    }

    /// The same parameters but claiming a different vertex count — the
    /// "implicitly assume the graph size is `2^(ℓ')`" device of Theorems 3,
    /// 6, and 8.
    pub fn with_claimed_n(self, n: u64) -> Self {
        GlobalParams { n, ..self }
    }

    /// `⌈log₂ n⌉`, the number of bits needed to index a vertex.
    pub fn log2_n(&self) -> u32 {
        crate::ids::id_bits(self.n)
    }

    /// The advertised `n` plus `slack` as a `u32` round horizon — the shape
    /// `O(n)`-round protocols feed to a round budget.
    ///
    /// The engine counts rounds in `u32`; a claimed `n` of 5 billion used to
    /// truncate silently through `as u32` and wrap the horizon to a small
    /// number. This is the loud replacement.
    ///
    /// # Errors
    ///
    /// [`HorizonOverflow`] if `n + slack` exceeds `u32::MAX`.
    pub fn round_horizon(&self, slack: u32) -> Result<u32, HorizonOverflow> {
        u32::try_from(self.n)
            .ok()
            .and_then(|n| n.checked_add(slack))
            .ok_or(HorizonOverflow { n: self.n, slack })
    }
}

/// An advertised vertex count does not fit the engine's `u32` round counter.
///
/// Returned by [`GlobalParams::round_horizon`] when a protocol whose round
/// budget scales with `n` is pointed at a claimed `n` (plus slack) above
/// `u32::MAX` — the spec is rejected up front instead of silently truncating
/// the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizonOverflow {
    /// The advertised vertex count.
    pub n: u64,
    /// The additive round slack requested on top of `n`.
    pub slack: u32,
}

impl std::fmt::Display for HorizonOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "round horizon n + slack = {} + {} exceeds the u32 round counter",
            self.n, self.slack
        )
    }
}

impl std::error::Error for HorizonOverflow {}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn from_graph_reads_true_values() {
        let g = gen::star(7);
        let p = GlobalParams::from_graph(&g);
        assert_eq!(p.n, 7);
        assert_eq!(p.delta, 6);
    }

    #[test]
    fn claimed_n_overrides() {
        let g = gen::path(4);
        let p = GlobalParams::from_graph(&g).with_claimed_n(1 << 40);
        assert_eq!(p.n, 1 << 40);
        assert_eq!(p.delta, 2);
    }

    #[test]
    fn log2_n() {
        let p = GlobalParams { n: 1, delta: 0 };
        assert_eq!(p.log2_n(), 0);
        let p = GlobalParams { n: 8, delta: 0 };
        assert_eq!(p.log2_n(), 3);
        let p = GlobalParams { n: 9, delta: 0 };
        assert_eq!(p.log2_n(), 4);
    }

    #[test]
    fn round_horizon_fits_small_n() {
        let p = GlobalParams { n: 1000, delta: 3 };
        assert_eq!(p.round_horizon(8), Ok(1008));
        assert_eq!(p.round_horizon(0), Ok(1000));
    }

    #[test]
    fn round_horizon_rejects_a_5b_vertex_spec() {
        // The regression this pins: `5_000_000_000 as u32` silently wraps to
        // 705_032_704; the typed path must fail loudly instead.
        let p = GlobalParams {
            n: 5_000_000_000,
            delta: 3,
        };
        let err = p.round_horizon(8).unwrap_err();
        assert_eq!(
            err,
            HorizonOverflow {
                n: 5_000_000_000,
                slack: 8
            }
        );
        assert!(err.to_string().contains("5000000000"));

        // Overflow via the slack on an n that itself fits.
        let p = GlobalParams {
            n: u64::from(u32::MAX),
            delta: 3,
        };
        assert!(p.round_horizon(1).is_err());
    }
}
