//! Radius-`t` views and the indistinguishability principle.
//!
//! In the LOCAL model, a `t`-round algorithm's output at `v` is a function of
//! the information reachable in `t` exchanges: the port-numbered topology of
//! `N^t(v)` (minus edges between two vertices at distance exactly `t`), plus
//! any vertex/edge input labels in that ball — and, in DetLOCAL, the IDs.
//!
//! [`encode`] computes a canonical encoding of that view. Two vertices with
//! equal encodings are **indistinguishable** to every `t`-round algorithm, so
//! any such algorithm must output the same label at both. This is the engine
//! behind Linial's lower-bound argument (step (i) of the proof sketched in
//! the paper's introduction: "in `o(log_Δ n)` time, a vertex cannot always
//! distinguish whether the input graph is a tree or a graph of girth
//! `Ω(log_Δ n)`"), which experiment E4 demonstrates concretely.

use local_graphs::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Canonical encoding of a radius-`t` port-numbered view.
///
/// Equality of encodings implies indistinguishability to `t`-round
/// algorithms (with the supplied labels as the only symmetry-breaking
/// input).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BallEncoding(Vec<u64>);

impl BallEncoding {
    /// The raw token stream (for tests and hashing).
    pub fn tokens(&self) -> &[u64] {
        &self.0
    }
}

/// Sentinel token for "edge leads outside the known ball".
const UNKNOWN: u64 = u64::MAX;

/// Compute the canonical radius-`t` view of `v`.
///
/// * `vertex_labels`: per-vertex input labels (IDs in DetLOCAL; an input
///   coloring; …). Pass `None` for anonymous vertices.
/// * `edge_labels`: per-edge input labels (e.g. the proper Δ-edge-coloring
///   that sinkless coloring/orientation take as input). Pass `None` if
///   absent.
///
/// Encoding scheme: BFS from `v` exploring ports in order; vertices are named
/// by discovery index. For each discovered vertex at distance `< t` we emit
/// `(label, degree, [per-port: discovery index of the other endpoint and edge
/// label])`; for vertices at distance exactly `t` we emit `(label, degree)`
/// only — a `t`-round algorithm knows their labels and degrees (messages from
/// round `t` arrive) but not their other edges.
///
/// # Panics
///
/// Panics if `v >= g.n()` or a label slice has the wrong length.
pub fn encode(
    g: &Graph,
    v: NodeId,
    t: usize,
    vertex_labels: Option<&[u64]>,
    edge_labels: Option<&[u64]>,
) -> BallEncoding {
    if let Some(l) = vertex_labels {
        assert_eq!(l.len(), g.n(), "vertex label slice length");
    }
    if let Some(l) = edge_labels {
        assert_eq!(l.len(), g.m(), "edge label slice length");
    }
    let mut index = vec![usize::MAX; g.n()];
    let mut dist = vec![usize::MAX; g.n()];
    let mut order: Vec<NodeId> = Vec::new();
    index[v] = 0;
    dist[v] = 0;
    order.push(v);
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        if dist[u] == t {
            continue;
        }
        for nb in g.neighbors(u) {
            if index[nb.node] == usize::MAX {
                index[nb.node] = order.len();
                dist[nb.node] = dist[u] + 1;
                order.push(nb.node);
                queue.push_back(nb.node);
            }
        }
    }
    let mut tokens: Vec<u64> = Vec::new();
    tokens.push(t as u64);
    for &u in &order {
        tokens.push(vertex_labels.map_or(0, |l| l[u]));
        tokens.push(g.degree(u) as u64);
        if dist[u] < t {
            for nb in g.neighbors(u) {
                let idx = index[nb.node];
                tokens.push(if idx == usize::MAX {
                    UNKNOWN
                } else {
                    idx as u64
                });
                tokens.push(edge_labels.map_or(0, |l| l[nb.edge]));
            }
        }
    }
    BallEncoding(tokens)
}

/// Canonical encoding of a radius-`t` view **up to port renumbering**, for
/// balls that are trees (always the case when `2t + 1 <` girth).
///
/// The ordered [`encode`] captures the exact port-numbered view — two
/// vertices with different parent-port positions are genuinely
/// distinguishable by a port-aware algorithm. Lower-bound arguments,
/// however, let the adversary pick the port numbering, so they work with
/// views *modulo* local port permutations. This AHU-style canonical form
/// (children sorted by their own encodings) realizes that equivalence:
/// `encode_unordered(u) == encode_unordered(v)` iff some port renumbering
/// makes the two tree-balls identical.
///
/// Returns `None` if the ball contains a cycle (the canonical form is
/// defined for tree balls; beyond half the girth use [`encode`]).
pub fn encode_unordered(
    g: &Graph,
    v: NodeId,
    t: usize,
    vertex_labels: Option<&[u64]>,
) -> Option<BallEncoding> {
    if let Some(l) = vertex_labels {
        assert_eq!(l.len(), g.n(), "vertex label slice length");
    }
    // BFS to depth t, recording parents; bail out on any non-tree edge
    // between two ball vertices (other than child → parent).
    let mut dist = vec![usize::MAX; g.n()];
    let mut parent = vec![usize::MAX; g.n()];
    let mut order: Vec<NodeId> = vec![v];
    dist[v] = 0;
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        if dist[u] == t {
            continue;
        }
        for nb in g.neighbors(u) {
            if dist[nb.node] == usize::MAX {
                dist[nb.node] = dist[u] + 1;
                parent[nb.node] = u;
                order.push(nb.node);
                queue.push_back(nb.node);
            } else if nb.node != parent[u] && parent[nb.node] != u {
                return None; // cycle within the ball
            }
        }
    }
    // AHU from the deepest vertices up: enc(u) = (label, deg, sorted children).
    fn enc(
        g: &Graph,
        u: NodeId,
        t: usize,
        dist: &[usize],
        parent: &[usize],
        labels: Option<&[u64]>,
    ) -> Vec<u64> {
        let mut tokens = vec![labels.map_or(0, |l| l[u]), g.degree(u) as u64];
        if dist[u] < t {
            let mut children: Vec<Vec<u64>> = g
                .neighbors(u)
                .iter()
                .filter(|nb| parent[nb.node] == u && dist[nb.node] == dist[u] + 1)
                .map(|nb| enc(g, nb.node, t, dist, parent, labels))
                .collect();
            children.sort();
            tokens.push(children.len() as u64);
            for c in children {
                tokens.push(u64::MAX); // open bracket
                tokens.extend(c);
            }
        }
        tokens
    }
    let mut tokens = vec![t as u64];
    tokens.extend(enc(g, v, t, &dist, &parent, vertex_labels));
    Some(BallEncoding(tokens))
}

/// Encode the view of *every* vertex at radius `t`.
pub fn encode_all(
    g: &Graph,
    t: usize,
    vertex_labels: Option<&[u64]>,
    edge_labels: Option<&[u64]>,
) -> Vec<BallEncoding> {
    g.vertices()
        .map(|v| encode(g, v, t, vertex_labels, edge_labels))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn anonymous_cycle_vertices_are_indistinguishable() {
        // Port numbering is part of the input: vertices 1..n−1 of gen::cycle
        // see (port 0 → predecessor, port 1 → successor), while vertex 0's
        // ports are flipped — a legitimate distinguishing mark for any vertex
        // whose radius-3 ball contains vertex 0. Vertices 4..8 of C_12 have
        // 0-free balls and must be mutually indistinguishable.
        let g = gen::cycle(12);
        let views = encode_all(&g, 3, None, None);
        for w in 5..=8 {
            assert_eq!(views[4], views[w], "vertex {w} must look like vertex 4");
        }
        // And the mark is real: vertex 1 (ball contains 0) differs.
        assert_ne!(views[1], views[4]);
    }

    #[test]
    fn ids_break_symmetry() {
        let g = gen::cycle(6);
        let ids: Vec<u64> = (0..6).collect();
        let views = encode_all(&g, 1, Some(&ids), None);
        let distinct: std::collections::HashSet<_> = views.iter().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn radius_zero_sees_only_label_and_degree() {
        let g = gen::star(5);
        let views = encode_all(&g, 0, None, None);
        // All leaves identical, hub different (degree 4 vs 1).
        assert_ne!(views[0], views[1]);
        for w in 2..5 {
            assert_eq!(views[1], views[w]);
        }
    }

    #[test]
    fn tree_interior_matches_high_girth_graph() {
        // The indistinguishability principle: interior vertices of a complete
        // (Δ−1)-ary tree look exactly like vertices of a Δ-regular graph of
        // girth > 2t+1, for radius t (up to port numbering, which BFS-order
        // canonicalization normalizes identically for degree-regular trees).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let tree = gen::complete_dary_tree(400, 3);
        let mut rng = StdRng::seed_from_u64(424242);
        let t = 2; // need girth > 2t + 1 = 5
        let g = gen::high_girth_regular(150, 3, 6, &mut rng).unwrap();
        // Interior tree vertex: everything in its t-ball has degree 3.
        let interior = tree
            .vertices()
            .find(|&v| {
                let dist = local_graphs::analysis::bfs_distances(&tree, v);
                tree.vertices()
                    .filter(|&u| dist[u] <= t)
                    .all(|u| tree.degree(u) == 3)
            })
            .expect("interior vertex exists");
        let tv = encode(&tree, interior, t, None, None);
        let gv = encode(&g, 0, t, None, None);
        assert_eq!(
            tv, gv,
            "t-round algorithms cannot tell tree interiors from high-girth graphs"
        );
    }

    #[test]
    fn unordered_views_collapse_port_wirings() {
        // On a cycle, ordered views distinguish vertex 0 (flipped ports) from
        // the rest; unordered views do not.
        let g = gen::cycle(12);
        let a = encode_unordered(&g, 0, 3, None).expect("ball is a path");
        for v in 1..12 {
            let b = encode_unordered(&g, v, 3, None).expect("ball is a path");
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn unordered_detects_cycles_in_ball() {
        let g = gen::cycle(6);
        assert!(
            encode_unordered(&g, 0, 3, None).is_none(),
            "radius 3 wraps C6"
        );
        assert!(encode_unordered(&g, 0, 2, None).is_some());
    }

    #[test]
    fn unordered_separates_different_structures() {
        let path = gen::path(9);
        let star = gen::star(9);
        let a = encode_unordered(&path, 4, 2, None).unwrap();
        let b = encode_unordered(&star, 0, 2, None).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn unordered_respects_labels() {
        let g = gen::path(5);
        let l0 = vec![0u64; 5];
        let l1 = vec![0, 1, 0, 0, 0];
        let a = encode_unordered(&g, 2, 1, Some(&l0)).unwrap();
        let b = encode_unordered(&g, 2, 1, Some(&l1)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn edge_labels_affect_views() {
        let g = gen::cycle(6);
        let e0: Vec<u64> = vec![0; 6];
        let e1: Vec<u64> = (0..6).map(|i| (i % 2) as u64).collect();
        let a = encode(&g, 0, 1, None, Some(&e0));
        let b = encode(&g, 0, 1, None, Some(&e1));
        assert_ne!(a, b);
    }

    #[test]
    fn larger_radius_refines_views() {
        // On a path, radius 1 cannot separate the two middle vertices of
        // P_6 (both see degree-2 neighbors on both sides), but a large
        // enough radius sees the ends.
        let g = gen::path(6);
        let r1 = encode_all(&g, 1, None, None);
        assert_eq!(r1[2], r1[3]);
        let r3 = encode_all(&g, 3, None, None);
        assert_ne!(r3[2], r3[3]);
    }

    #[test]
    #[should_panic(expected = "vertex label slice")]
    fn wrong_label_length_panics() {
        let g = gen::path(3);
        let labels = vec![0u64; 2];
        let _ = encode(&g, 0, 1, Some(&labels), None);
    }
}
