//! The LOCAL model round engine.
//!
//! This crate implements Linial's LOCAL model as bifurcated by the paper into
//! **DetLOCAL** and **RandLOCAL**:
//!
//! * The graph `G = (V, E)` is the communication topology; each vertex hosts a
//!   processor running the *same* algorithm.
//! * Computation proceeds in synchronized rounds. In a round each processor
//!   performs arbitrary local computation and sends one (unbounded) message
//!   along each incident port; messages are delivered before the next round.
//! * Every vertex initially knows its degree and the global parameters
//!   (`n`, `Δ`, …).
//! * **DetLOCAL** ([`Mode::Deterministic`]): vertices additionally hold unique
//!   `Θ(log n)`-bit IDs; the per-vertex program is deterministic — calling
//!   [`NodeIo::rng`] panics.
//! * **RandLOCAL** ([`Mode::Randomized`]): vertices are anonymous
//!   ([`NodeIo::id`] returns `None`) but may draw unbounded private random
//!   bits.
//!
//! The only complexity measure is the number of rounds, which the engine
//! counts exactly: a protocol where every node halts after consuming messages
//! from `t` exchanges has complexity `t`.
//!
//! # Example: every node learns its neighbors' degrees in 1 round
//!
//! ```
//! use local_graphs::gen;
//! use local_model::{Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol};
//!
//! struct DegreeNode;
//! impl NodeProgram for DegreeNode {
//!     type Msg = usize;
//!     type Output = usize;
//!     fn step(&mut self, round: u32, io: &mut NodeIo<'_, usize>) -> Action<usize> {
//!         if round == 0 {
//!             io.broadcast(io.degree());
//!             Action::Continue
//!         } else {
//!             let max_nb = (0..io.degree()).filter_map(|p| io.recv(p).copied()).max();
//!             Action::Halt(max_nb.unwrap_or(0))
//!         }
//!     }
//! }
//!
//! struct DegreeProtocol;
//! impl Protocol for DegreeProtocol {
//!     type Node = DegreeNode;
//!     fn create(&self, _init: &NodeInit<'_>) -> DegreeNode { DegreeNode }
//! }
//!
//! let g = gen::star(5);
//! let engine = Engine::new(&g, Mode::deterministic());
//! let run = engine.execute(&ExecSpec::default(), &DegreeProtocol).into_run(100_000)?;
//! assert_eq!(run.rounds, 1);
//! assert_eq!(run.outputs[1], 4); // a leaf sees the hub's degree
//! # Ok::<(), local_model::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ball;
mod engine;
mod error;
mod faults;
mod ids;
mod node;
mod params;
pub mod recover;
pub mod reference;
mod spec;

pub use engine::{derived_rng, derived_u64, Engine, Mode, Run, RunStats};
pub use error::SimError;
pub use faults::{FaultMove, FaultPlan, FaultSpec, FaultyRun, Outcome};
pub use ids::{id_bits, IdAssignment};
pub use node::{Action, NodeInit, NodeIo, NodeProgram, Protocol};
pub use params::{GlobalParams, HorizonOverflow};
pub use recover::{faulty_core, AttemptRecord, Breach, Budget, RecoveryError, Residue};
pub use spec::ExecSpec;
