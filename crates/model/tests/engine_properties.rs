//! Property tests of the round engine's core guarantees.

use local_graphs::{gen, Graph};
use local_model::{
    Action, Engine, ExecSpec, GlobalParams, IdAssignment, Mode, NodeInit, NodeIo, NodeProgram,
    Protocol, Run, SimError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chainable sugar over the single entry point, `Engine::execute`: the
/// strict fault-free shape the pre-refactor `Engine::run` returned.
trait Exec {
    fn exec<P: Protocol + Sync>(
        &self,
        protocol: &P,
    ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError>;
}

impl Exec for Engine<'_> {
    fn exec<P: Protocol + Sync>(
        &self,
        protocol: &P,
    ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError> {
        // 100_000 is the engine's default round budget; only the error
        // message reads it.
        self.execute(&ExecSpec::default(), protocol)
            .into_run(100_000)
    }
}

/// A protocol mixing randomness, state, and staggered halting: each node
/// accumulates a hash of everything it hears and halts after `id-or-random`
/// dependent rounds.
struct Mixer {
    horizon: u32,
    acc: u64,
}

impl NodeProgram for Mixer {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        for (p, &m) in io.received() {
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_add(m)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(p as u64);
        }
        if io.is_randomized() {
            self.acc ^= io.rng().next_u64() & 0xFF;
        }
        if round >= self.horizon {
            Action::Halt(self.acc)
        } else {
            io.broadcast(self.acc);
            Action::Continue
        }
    }
}

struct MixerProtocol;
impl Protocol for MixerProtocol {
    type Node = Mixer;
    fn create(&self, init: &NodeInit<'_>) -> Mixer {
        Mixer {
            horizon: 2 + (init.degree as u32 % 4),
            acc: init.id.unwrap_or(0x5EED),
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, 0u64..500, 5u32..40).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn randomized_runs_are_seed_deterministic(g in arb_graph(), seed in 0u64..100) {
        let a = Engine::new(&g, Mode::randomized(seed)).exec(&MixerProtocol).unwrap();
        let b = Engine::new(&g, Mode::randomized(seed)).exec(&MixerProtocol).unwrap();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn deterministic_runs_are_plain_deterministic(g in arb_graph()) {
        let a = Engine::new(&g, Mode::deterministic()).exec(&MixerProtocol).unwrap();
        let b = Engine::new(&g, Mode::deterministic()).exec(&MixerProtocol).unwrap();
        prop_assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn halt_rounds_bounded_by_rounds(g in arb_graph(), seed in 0u64..50) {
        let run = Engine::new(&g, Mode::randomized(seed)).exec(&MixerProtocol).unwrap();
        let max = run.halt_rounds.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(max, run.rounds);
        prop_assert!(run.stats.sweeps >= run.rounds);
        // The live curve starts with all nodes and never increases.
        prop_assert_eq!(run.stats.live_per_round.first().copied(), Some(g.n()).filter(|&n| n > 0));
        for w in run.stats.live_per_round.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Fault-free runs must account for every message: the per-round message
    /// curve sums to the aggregate counter, with one entry per sweep.
    #[test]
    fn fault_free_messages_per_round_sums_to_messages_sent(g in arb_graph(), seed in 0u64..50) {
        for mode in [Mode::deterministic(), Mode::randomized(seed)] {
            let run = Engine::new(&g, mode).exec(&MixerProtocol).unwrap();
            prop_assert_eq!(run.stats.messages_per_round.len() as u32, run.stats.sweeps);
            prop_assert_eq!(
                run.stats.messages_per_round.iter().sum::<u64>(),
                run.stats.messages_sent
            );
        }
    }

    #[test]
    fn id_assignments_are_permutations(g in arb_graph(), seed in 0u64..50) {
        let ids = IdAssignment::Shuffled { seed }.assign(&g);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.n() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn claimed_params_do_not_change_topology_results(g in arb_graph()) {
        // Advertising a larger n must not alter a protocol that ignores n.
        let a = Engine::new(&g, Mode::deterministic()).exec(&MixerProtocol).unwrap();
        let b = Engine::new(&g, Mode::deterministic())
            .with_params(GlobalParams::from_graph(&g).with_claimed_n(1 << 40))
            .exec(&MixerProtocol)
            .unwrap();
        prop_assert_eq!(a.outputs, b.outputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arena engine must be observably equivalent to the simple
    /// reference implementation — same outputs, rounds, halt schedule,
    /// message count, and sweep count — in both models, on arbitrary graphs,
    /// under a protocol that exercises broadcasting, state, randomness, and
    /// staggered halting.
    #[test]
    fn arena_engine_matches_reference(g in arb_graph(), seed in 0u64..50) {
        let params = GlobalParams::from_graph(&g);
        for mode in [Mode::deterministic(), Mode::randomized(seed)] {
            let fast = Engine::new(&g, mode.clone()).exec(&MixerProtocol).unwrap();
            let slow = local_model::reference::run_reference(
                &g, &mode, &MixerProtocol, &params, 100_000,
            )
            .unwrap();
            prop_assert_eq!(&fast.outputs, &slow.outputs);
            prop_assert_eq!(fast.rounds, slow.rounds);
            prop_assert_eq!(&fast.halt_rounds, &slow.halt_rounds);
            prop_assert_eq!(fast.stats.messages_sent, slow.stats.messages_sent);
            prop_assert_eq!(fast.stats.sweeps, slow.stats.sweeps);
            prop_assert_eq!(&fast.stats.live_per_round, &slow.stats.live_per_round);
            prop_assert_eq!(&fast.stats.messages_per_round, &slow.stats.messages_per_round);
        }
    }
}

/// Per-node randomness must be independent: two nodes never share a stream.
#[test]
fn node_streams_are_pairwise_distinct() {
    struct Draw;
    impl NodeProgram for Draw {
        type Msg = ();
        type Output = (u64, u64);
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<(u64, u64)> {
            let rng = io.rng();
            Action::Halt((rng.next_u64(), rng.next_u64()))
        }
    }
    struct DrawProtocol;
    impl Protocol for DrawProtocol {
        type Node = Draw;
        fn create(&self, _init: &NodeInit<'_>) -> Draw {
            Draw
        }
    }
    let g = gen::cycle(64);
    let run = Engine::new(&g, Mode::randomized(5))
        .exec(&DrawProtocol)
        .unwrap();
    let set: std::collections::HashSet<_> = run.outputs.iter().collect();
    assert_eq!(set.len(), 64);
}

/// The engine must deliver messages along the correct ports (pairing each
/// edge's two directions), even on multigraph-like dense ports.
#[test]
fn port_delivery_is_exact() {
    struct Echo;
    impl NodeProgram for Echo {
        type Msg = (u64, usize);
        type Output = bool;
        fn step(&mut self, round: u32, io: &mut NodeIo<'_, (u64, usize)>) -> Action<bool> {
            match round {
                0 => {
                    let me = io.id().expect("det");
                    for p in 0..io.degree() {
                        io.send(p, (me, p));
                    }
                    Action::Continue
                }
                _ => {
                    // Every received message must carry the neighbor's port,
                    // and echoing it back through our port must match what
                    // the graph says.
                    Action::Halt(io.received().count() == io.degree())
                }
            }
        }
    }
    struct EchoProtocol;
    impl Protocol for EchoProtocol {
        type Node = Echo;
        fn create(&self, _init: &NodeInit<'_>) -> Echo {
            Echo
        }
    }
    let mut rng = StdRng::seed_from_u64(77);
    let g = gen::gnp(30, 0.3, &mut rng);
    let run = Engine::new(&g, Mode::deterministic())
        .exec(&EchoProtocol)
        .unwrap();
    for (v, &ok) in run.outputs.iter().enumerate() {
        assert!(ok || g.degree(v) == 0, "vertex {v} missed a message");
    }
}
