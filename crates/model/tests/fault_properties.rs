//! Property tests of the deterministic fault plane.
//!
//! Two guarantees the whole resilience experiment (E12) leans on:
//!
//! 1. A trivial [`FaultPlan`] is *observably identical* to the fault-free
//!    engine — outputs, rounds, halt schedule, message counts, sweeps — in
//!    both models (differential against both `Engine::run` and the simple
//!    reference engine).
//! 2. A fixed `fault_seed` replays the identical crash/drop/delay trace no
//!    matter how the nodes are stepped: the sequential path and the
//!    scoped-thread parallel path must produce bit-identical faulty runs.

use local_graphs::{gen, Graph};
use local_model::{
    Action, Engine, ExecSpec, FaultPlan, FaultSpec, FaultyRun, GlobalParams, Mode, NodeInit,
    NodeIo, NodeProgram, Protocol, Run, SimError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chainable sugar over the single entry point, `Engine::execute`, matching
/// the pre-refactor `run`/`run_faulty` shapes.
trait Exec {
    fn exec<P: Protocol + Sync>(
        &self,
        protocol: &P,
    ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError>;
    fn exec_faulty<P: Protocol + Sync>(
        &self,
        protocol: &P,
        faults: &FaultPlan,
    ) -> FaultyRun<<P::Node as NodeProgram>::Output>;
}

impl Exec for Engine<'_> {
    fn exec<P: Protocol + Sync>(
        &self,
        protocol: &P,
    ) -> Result<Run<<P::Node as NodeProgram>::Output>, SimError> {
        self.execute(&ExecSpec::default(), protocol)
            .into_run(100_000)
    }
    fn exec_faulty<P: Protocol + Sync>(
        &self,
        protocol: &P,
        faults: &FaultPlan,
    ) -> FaultyRun<<P::Node as NodeProgram>::Output> {
        self.execute(&ExecSpec::default().with_faults(faults), protocol)
    }
}

/// A fault-tolerant protocol mixing randomness, state, and staggered
/// halting: accumulates a hash of everything heard, halts at a
/// degree-dependent horizon whether or not messages arrive.
struct Mixer {
    horizon: u32,
    acc: u64,
}

impl NodeProgram for Mixer {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        for (p, &m) in io.received() {
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_add(m)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(p as u64);
        }
        if io.is_randomized() {
            self.acc ^= io.rng().next_u64() & 0xFF;
        }
        if round >= self.horizon {
            Action::Halt(self.acc)
        } else {
            io.broadcast(self.acc);
            Action::Continue
        }
    }
}

struct MixerProtocol;
impl Protocol for MixerProtocol {
    type Node = Mixer;
    fn create(&self, init: &NodeInit<'_>) -> Mixer {
        Mixer {
            horizon: 2 + (init.degree as u32 % 4),
            acc: init.id.unwrap_or(0x5EED),
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, 0u64..500, 5u32..40).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trivial-plan differential: `run_faulty(FaultPlan::none())` must be
    /// bit-identical to `run` in both models (which the existing arena-vs-
    /// reference proptest in turn pins to the baseline engine).
    #[test]
    fn trivial_plan_is_observably_fault_free(g in arb_graph(), seed in 0u64..50) {
        let trivial = FaultPlan::sample(&g, &FaultSpec::none(), seed);
        prop_assert!(trivial.is_trivial());
        for mode in [Mode::deterministic(), Mode::randomized(seed)] {
            let clean = Engine::new(&g, mode.clone()).exec(&MixerProtocol).unwrap();
            let faulty = Engine::new(&g, mode.clone()).exec_faulty(&MixerProtocol, &trivial);
            prop_assert_eq!(faulty.halted(), g.n());
            prop_assert_eq!(faulty.crashed(), 0);
            prop_assert_eq!(faulty.cut(), 0);
            prop_assert_eq!(faulty.dropped, 0);
            prop_assert_eq!(faulty.delayed, 0);
            prop_assert_eq!(faulty.rounds, clean.rounds);
            prop_assert_eq!(&faulty.stats, &clean.stats);
            let (outputs, halt_rounds): (Vec<u64>, Vec<u32>) = faulty
                .outcomes
                .iter()
                .map(|o| match o {
                    local_model::Outcome::Halted { round, output } => (*output, *round),
                    other => panic!("unexpected outcome {other:?}"),
                })
                .unzip();
            prop_assert_eq!(outputs, clean.outputs);
            prop_assert_eq!(halt_rounds, clean.halt_rounds);
        }
    }

    /// Replay: the same `(graph, mode, fault_seed)` triple must produce the
    /// identical fault trace — outcomes, drop/delay counters, and stats —
    /// whether nodes step sequentially or on the scoped-thread parallel
    /// path.
    #[test]
    fn fault_trace_replays_across_stepping_paths(
        g in arb_graph(),
        seed in 0u64..50,
        fault_seed in 0u64..1000,
    ) {
        let spec = FaultSpec {
            drop_p: 0.2,
            delay_p: 0.1,
            crash_p: 0.2,
            crash_window: 6,
        };
        let plan = FaultPlan::sample(&g, &spec, fault_seed);
        for mode in [Mode::deterministic(), Mode::randomized(seed)] {
            let sequential = Engine::new(&g, mode.clone())
                .with_max_rounds(50)
                .exec_faulty(&MixerProtocol, &plan);
            let parallel = Engine::new(&g, mode.clone())
                .with_max_rounds(50)
                .with_par_threshold(1)
                .exec_faulty(&MixerProtocol, &plan);
            prop_assert_eq!(&sequential.outcomes, &parallel.outcomes);
            prop_assert_eq!(sequential.dropped, parallel.dropped);
            prop_assert_eq!(sequential.delayed, parallel.delayed);
            prop_assert_eq!(&sequential.stats, &parallel.stats);
            prop_assert_eq!(sequential.rounds, parallel.rounds);

            // And the trace is a pure function of the seed: rerunning
            // reproduces it exactly.
            let again = Engine::new(&g, mode.clone())
                .with_max_rounds(50)
                .exec_faulty(&MixerProtocol, &plan);
            prop_assert_eq!(&sequential.outcomes, &again.outcomes);
        }
    }

    /// Crash schedules actually bite: every node scheduled to crash before
    /// its horizon ends up `Crashed`, everyone else halts.
    #[test]
    fn crash_schedule_is_honored(g in arb_graph(), fault_seed in 0u64..500) {
        let spec = FaultSpec::none().with_crash(0.5, 2);
        let plan = FaultPlan::sample(&g, &spec, fault_seed);
        let run = Engine::new(&g, Mode::deterministic())
            .with_max_rounds(50)
            .exec_faulty(&MixerProtocol, &plan);
        for (v, outcome) in run.outcomes.iter().enumerate() {
            match plan.crash_schedule()[v] {
                // Window 2 ⇒ crash rounds 0/1, always before the ≥2 horizon.
                Some(r) => prop_assert_eq!(outcome, &local_model::Outcome::Crashed { round: r }),
                None => prop_assert!(outcome.is_halted()),
            }
        }
    }
}

/// The engine advertises the same parameters to nodes under faults.
#[test]
fn faulty_runs_see_claimed_params() {
    struct ParamCheck;
    impl NodeProgram for ParamCheck {
        type Msg = ();
        type Output = u64;
        fn step(&mut self, _round: u32, io: &mut NodeIo<'_, ()>) -> Action<u64> {
            Action::Halt(io.params().n)
        }
    }
    struct ParamProtocol;
    impl Protocol for ParamProtocol {
        type Node = ParamCheck;
        fn create(&self, _init: &NodeInit<'_>) -> ParamCheck {
            ParamCheck
        }
    }
    let g = gen::path(3);
    let params = GlobalParams::from_graph(&g).with_claimed_n(1 << 20);
    let run = Engine::new(&g, Mode::deterministic())
        .with_params(params)
        .exec_faulty(&ParamProtocol, &FaultPlan::none());
    assert!(run
        .outcomes
        .iter()
        .all(|o| o.output() == Some(&(1u64 << 20))));
}
