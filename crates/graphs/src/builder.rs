//! Incremental construction of [`Graph`] values with validation.

use crate::error::GraphError;
use crate::graph::{assemble_csr, EdgeId, Graph, NodeId};
use std::collections::HashSet;

/// Builder for [`Graph`]: collects edges, rejects self-loops and duplicates,
/// and assigns ports in insertion order.
///
/// # Example
///
/// ```
/// use local_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.add_edge(u, v)?;
/// }
/// let g = b.build();
/// assert!(g.is_regular(2));
/// # Ok::<(), local_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start building a graph on vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Add the undirected edge `{u, v}` and return its [`EdgeId`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if `u >= n` or `v >= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::DuplicateEdge`] if `{u, v}` was already added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push(key);
        Ok(self.edges.len() - 1)
    }

    /// Whether `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Finish construction. Ports are numbered in edge-insertion order at
    /// each endpoint.
    pub fn build(self) -> Graph {
        let (offsets, adj, max_degree) = assemble_csr(self.n, || self.edges.iter().copied());
        Graph::from_csr(offsets, adj, self.edges, max_degree)
    }

    /// Build from an explicit edge list over `0..n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`] for any listed edge.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Build straight from a pre-validated, endpoint-normalized edge list
    /// (`u < v`, no duplicates, all `< n`) without re-checking it — the fast
    /// path for generators whose own invariants already guarantee validity
    /// (e.g. the switch-chain sampler, whose edge set is maintained exactly).
    ///
    /// Port numbering is identical to [`GraphBuilder::from_edges`] on the
    /// same list. Invalid input is only caught by debug assertions.
    pub(crate) fn from_edges_unchecked(n: usize, edges: Vec<(NodeId, NodeId)>) -> Graph {
        debug_assert!(edges.iter().all(|&(u, v)| u < v && v < n));
        let (offsets, adj, max_degree) = assemble_csr(n, || edges.iter().copied());
        Graph::from_csr(offsets, adj, edges, max_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn rejects_duplicate_both_orders() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        ));
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn has_edge_during_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
    }

    #[test]
    fn edge_ids_are_sequential() {
        let mut b = GraphBuilder::new(4);
        assert_eq!(b.add_edge(0, 1).unwrap(), 0);
        assert_eq!(b.add_edge(1, 2).unwrap(), 1);
        assert_eq!(b.add_edge(2, 3).unwrap(), 2);
    }
}
