//! Incremental construction of [`Graph`] values with validation.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, Neighbor, NodeId};
use std::collections::HashSet;

/// Builder for [`Graph`]: collects edges, rejects self-loops and duplicates,
/// and assigns ports in insertion order.
///
/// # Example
///
/// ```
/// use local_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.add_edge(u, v)?;
/// }
/// let g = b.build();
/// assert!(g.is_regular(2));
/// # Ok::<(), local_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start building a graph on vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Add the undirected edge `{u, v}` and return its [`EdgeId`].
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if `u >= n` or `v >= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::DuplicateEdge`] if `{u, v}` was already added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push(key);
        Ok(self.edges.len() - 1)
    }

    /// Whether `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Finish construction. Ports are numbered in edge-insertion order at
    /// each endpoint.
    pub fn build(self) -> Graph {
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); self.n];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let pu = adj[u].len();
            let pv = adj[v].len();
            adj[u].push(Neighbor {
                node: v,
                back_port: pv,
                edge: e,
            });
            adj[v].push(Neighbor {
                node: u,
                back_port: pu,
                edge: e,
            });
        }
        Graph::from_parts(adj, self.edges)
    }

    /// Build from an explicit edge list over `0..n`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`] for any listed edge.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn rejects_duplicate_both_orders() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert!(matches!(
            b.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        ));
    }

    #[test]
    fn from_edges_roundtrip() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn has_edge_during_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
    }

    #[test]
    fn edge_ids_are_sequential() {
        let mut b = GraphBuilder::new(4);
        assert_eq!(b.add_edge(0, 1).unwrap(), 0);
        assert_eq!(b.add_edge(1, 2).unwrap(), 1);
        assert_eq!(b.add_edge(2, 3).unwrap(), 2);
    }
}
