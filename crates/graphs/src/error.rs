//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors arising while building or generating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An edge `{v, v}` was requested.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        vertex: usize,
    },
    /// The edge `{u, v}` was added twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// A generator was called with parameters admitting no graph
    /// (e.g. `n·d` odd for a `d`-regular graph).
    InfeasibleParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget.
    RetriesExhausted {
        /// What was being attempted.
        what: String,
        /// How many attempts were made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph on {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::InfeasibleParameters { reason } => {
                write!(f, "infeasible generator parameters: {reason}")
            }
            GraphError::RetriesExhausted { what, attempts } => {
                write!(f, "gave up on {what} after {attempts} attempts")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::SelfLoop { vertex: 3 };
        assert_eq!(e.to_string(), "self-loop at vertex 3");
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("{1, 2}"));
        let e = GraphError::InfeasibleParameters {
            reason: "n*d odd".into(),
        };
        assert!(e.to_string().contains("n*d odd"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
