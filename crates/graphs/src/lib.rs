//! Graph substrate for the LOCAL-model laboratory.
//!
//! This crate provides everything the simulator and the algorithm crates need
//! from graphs:
//!
//! * [`Graph`] — an immutable simple undirected graph with *port numbering*:
//!   each vertex sees its incident edges through ports `0..deg(v)`, which is
//!   exactly the local view a processor has in Linial's LOCAL model.
//! * [`GraphBuilder`] — incremental construction with validation.
//! * [`gen`] — generators for every graph family used by the paper's
//!   experiments: trees (uniform random, degree-capped, complete Δ-ary),
//!   rings/paths/grids, G(n, p), random Δ-regular graphs, random bipartite
//!   Δ-regular graphs, and a high-girth local-search construction.
//! * [`analysis`] — BFS, connected components, diameter, exact girth,
//!   bipartition detection, and power graphs `G^k`.
//! * [`edge_coloring`] — proper edge colorings: exact Δ-edge-coloring of
//!   Δ-regular bipartite graphs (König, via Hopcroft–Karp matching peeling)
//!   and Misra–Gries (Δ+1)-edge-coloring for general graphs. The paper's
//!   sinkless-coloring and sinkless-orientation problems take a proper
//!   Δ-edge-coloring as input.
//!
//! # Example
//!
//! ```
//! use local_graphs::gen;
//! use local_graphs::analysis;
//!
//! let g = gen::cycle(8);
//! assert_eq!(g.n(), 8);
//! assert_eq!(g.max_degree(), 2);
//! assert_eq!(analysis::girth(&g), Some(8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
pub mod edge_coloring;
mod error;
pub mod gen;
mod graph;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, Neighbor, NodeId, PortId};
