//! The immutable port-numbered graph type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a vertex, in `0..n`.
///
/// Note: this is a *simulator-internal* index. In the `RandLOCAL` model
/// vertices are anonymous; the simulator uses `NodeId` for bookkeeping but
/// never exposes it to a randomized node program as an identifier.
pub type NodeId = usize;

/// Index of an undirected edge, in `0..m`.
pub type EdgeId = usize;

/// A port number at a vertex, in `0..deg(v)`.
///
/// Port numbering is the standard formalization of "each edge supports
/// communication in both directions" in the LOCAL model: a processor can
/// distinguish its incident edges (by port) but initially knows nothing about
/// who is on the other side.
pub type PortId = usize;

/// One entry of a vertex's adjacency list: the neighbor on a given port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Neighbor {
    /// The vertex on the other end of this port's edge.
    pub node: NodeId,
    /// The port at `node` whose edge leads back here.
    pub back_port: PortId,
    /// The global edge index of this edge.
    pub edge: EdgeId,
}

/// An immutable simple undirected graph with port numbering.
///
/// Construct one with [`crate::GraphBuilder`] or a generator from
/// [`crate::gen`]. Self-loops and parallel edges are rejected at build time,
/// matching the paper's setting (simple graphs).
///
/// # Example
///
/// ```
/// use local_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1).len(), 2);
/// # Ok::<(), local_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<Neighbor>>,
    edges: Vec<(NodeId, NodeId)>,
    max_degree: usize,
}

impl Graph {
    pub(crate) fn from_parts(adj: Vec<Vec<Neighbor>>, edges: Vec<(NodeId, NodeId)>) -> Self {
        let max_degree = adj.iter().map(Vec::len).max().unwrap_or(0);
        Graph {
            adj,
            edges,
            max_degree,
        }
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The neighbors of `v`, indexed by port: `neighbors(v)[p]` is the
    /// endpoint of `v`'s port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.adj[v]
    }

    /// The neighbor of `v` on port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `p >= deg(v)`.
    pub fn neighbor(&self, v: NodeId, p: PortId) -> Neighbor {
        self.adj[v][p]
    }

    /// Endpoints `(u, v)` with `u < v` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// All edges as `(u, v)` pairs with `u < v`, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Iterator over vertex indices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Whether `u` and `v` are adjacent. Runs in `O(min(deg u, deg v))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].iter().any(|nb| nb.node == b)
    }

    /// The port at `u` whose edge leads to `v`, if any.
    pub fn port_to(&self, u: NodeId, v: NodeId) -> Option<PortId> {
        self.adj[u].iter().position(|nb| nb.node == v)
    }

    /// Whether the graph is `d`-regular (every vertex has degree exactly `d`).
    pub fn is_regular(&self, d: usize) -> bool {
        self.adj.iter().all(|a| a.len() == d)
    }

    /// Total degree check: the handshake identity `Σ deg(v) = 2m`.
    ///
    /// Always true for graphs built through [`crate::GraphBuilder`]; exposed
    /// for property tests.
    pub fn handshake_holds(&self) -> bool {
        self.adj.iter().map(Vec::len).sum::<usize>() == 2 * self.m()
    }

    /// The same graph with every vertex's ports independently permuted at
    /// random — the *adversarial port numbering* device: a correct LOCAL
    /// algorithm may read port numbers but must stay correct under any
    /// assignment of them, which robustness tests check by comparing runs
    /// on `g` and `g.shuffle_ports(seed)`.
    pub fn shuffle_ports(&self, seed: u64) -> Graph {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // port_perm[v][old_port] = new_port.
        let port_perm: Vec<Vec<usize>> = self
            .adj
            .iter()
            .map(|nbs| {
                let mut p: Vec<usize> = (0..nbs.len()).collect();
                p.shuffle(&mut rng);
                p
            })
            .collect();
        let mut adj: Vec<Vec<Neighbor>> = self
            .adj
            .iter()
            .map(|nbs| {
                vec![
                    Neighbor {
                        node: 0,
                        back_port: 0,
                        edge: 0
                    };
                    nbs.len()
                ]
            })
            .collect();
        for v in 0..self.n() {
            for (old_p, nb) in self.adj[v].iter().enumerate() {
                let new_p = port_perm[v][old_p];
                adj[v][new_p] = Neighbor {
                    node: nb.node,
                    back_port: port_perm[nb.node][nb.back_port],
                    edge: nb.edge,
                };
            }
        }
        Graph::from_parts(adj, self.edges.clone())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={})",
            self.n(),
            self.m(),
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn triangle_basics() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_regular(2));
        assert!(g.handshake_holds());
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn ports_are_consistent() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                let back = g.neighbor(nb.node, nb.back_port);
                assert_eq!(back.node, v, "back edge must return to origin");
                assert_eq!(back.back_port, p, "back port must be the origin port");
                assert_eq!(back.edge, nb.edge, "edge ids must agree on both sides");
            }
        }
    }

    #[test]
    fn endpoints_sorted() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        let g = b.build();
        assert_eq!(g.endpoints(0), (1, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn port_to_finds_ports() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.port_to(0, 1), Some(0));
        assert_eq!(g.port_to(0, 2), Some(1));
        assert_eq!(g.port_to(1, 0), Some(0));
        assert_eq!(g.port_to(1, 2), None);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn display_is_informative() {
        let g = GraphBuilder::new(2).build();
        let s = format!("{g}");
        assert!(s.contains("n=2"));
    }
}

#[cfg(test)]
mod shuffle_tests {
    use crate::{gen, GraphBuilder};

    #[test]
    fn shuffled_ports_stay_consistent() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let g = gen::gnp(30, 0.2, &mut rng);
        let s = g.shuffle_ports(7);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
        for v in s.vertices() {
            assert_eq!(s.degree(v), g.degree(v));
            for (p, nb) in s.neighbors(v).iter().enumerate() {
                let back = s.neighbor(nb.node, nb.back_port);
                assert_eq!(back.node, v, "shuffled back edge returns");
                assert_eq!(back.back_port, p, "shuffled back port matches");
                assert_eq!(back.edge, nb.edge);
            }
        }
        // Same edge set.
        assert_eq!(s.edges(), g.edges());
    }

    #[test]
    fn shuffle_actually_permutes_something() {
        let g = gen::star(20);
        let s = g.shuffle_ports(3);
        // The hub's neighbor order should differ with overwhelming probability.
        let orig: Vec<usize> = g.neighbors(0).iter().map(|nb| nb.node).collect();
        let perm: Vec<usize> = s.neighbors(0).iter().map(|nb| nb.node).collect();
        assert_ne!(orig, perm);
    }

    #[test]
    fn shuffle_is_seeded() {
        let g = gen::cycle(12);
        assert_eq!(g.shuffle_ports(5), g.shuffle_ports(5));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.shuffle_ports(1).n(), 0);
        let g = gen::path(2);
        let s = g.shuffle_ports(1);
        assert_eq!(s.m(), 1);
    }
}
